//! Conventional mesh fabric: state-of-the-art 2-cycle-per-hop routers
//! (1 cycle switch allocation + traversal inside the router, 1 cycle on the
//! link), XY dimension-ordered routing, per-output round-robin arbitration
//! and credit-style backpressure.
//!
//! This is the `LOCO + Conventional NoC` baseline of Figures 12 and 13 and
//! the hop-by-hop reference against which SMART's single-cycle multi-hop
//! traversals are compared (Section 2 of the paper: 14 hops take 28 cycles
//! in the best case on this fabric).

use crate::config::NocConfig;
use crate::message::VirtualNetwork;
use crate::router::{
    dir_link, ActiveSet, Arrival, Buffered, FabricEngine, FlightInfo, InputBuffers, LinkOccupancy,
    RoundRobin,
};
use crate::stats::FabricCounters;
use crate::topology::{Direction, Mesh, NodeId};

const PORTS: usize = 5;

/// Lanes per router: 5 input ports x 5 virtual networks.
const LANES: usize = PORTS * VirtualNetwork::ALL.len();

/// One switch-allocation winner of the current cycle: the head of lane
/// (`port`, `vn`) at `node` moves out through `out` to `next`.
#[derive(Debug, Clone, Copy)]
struct Move {
    node: NodeId,
    port: usize,
    vn: VirtualNetwork,
    out: Direction,
    next: NodeId,
}

/// The conventional-router fabric engine.
#[derive(Debug)]
pub struct ConventionalFabric {
    cfg: NocConfig,
    mesh: Mesh,
    buffers: Vec<InputBuffers>,
    /// Routers currently holding at least one buffered packet.
    active: ActiveSet,
    arbiters: Vec<RoundRobin>,
    links: LinkOccupancy,
    in_flight: usize,
    counters: FabricCounters,
    // Persistent per-tick scratch (steady state must not allocate).
    move_scratch: Vec<Move>,
    /// Downstream buffer slots reserved by earlier winners this cycle,
    /// indexed by `(node, port, vn)`; only the dirtied entries are reset.
    reserved_scratch: Vec<u8>,
    reserved_dirty: Vec<usize>,
    cand_scratch: [[usize; LANES]; 4],
    meta_scratch: [(usize, VirtualNetwork); LANES],
}

impl ConventionalFabric {
    /// Builds the fabric for the given configuration.
    pub fn new(cfg: NocConfig) -> Self {
        let mesh = cfg.mesh;
        let nodes = mesh.len();
        ConventionalFabric {
            cfg,
            mesh,
            buffers: (0..nodes)
                .map(|_| InputBuffers::new(PORTS, cfg.vn_buffer_capacity()))
                .collect(),
            active: ActiveSet::new(nodes),
            arbiters: (0..nodes * PORTS).map(|_| RoundRobin::new()).collect(),
            links: LinkOccupancy::new(nodes, PORTS),
            in_flight: 0,
            counters: FabricCounters::default(),
            move_scratch: Vec::new(),
            reserved_scratch: vec![0; nodes * PORTS * VirtualNetwork::ALL.len()],
            reserved_dirty: Vec::new(),
            cand_scratch: [[0; LANES]; 4],
            meta_scratch: [(0, VirtualNetwork::Request); LANES],
        }
    }

    fn output_for(&self, at: NodeId, flight: &FlightInfo) -> Option<Direction> {
        self.mesh.xy_next_dir(at, flight.dest)
    }
}

impl FabricEngine for ConventionalFabric {
    fn can_accept(&self, node: NodeId, vn: VirtualNetwork) -> bool {
        self.buffers[node.index()].has_space(Direction::Local.index(), vn)
    }

    fn inject(&mut self, flight: FlightInfo, now: u64) {
        self.buffers[flight.src.index()].push(
            Direction::Local.index(),
            flight.vn,
            Buffered {
                flight,
                ready_at: now + 1,
            },
        );
        self.active.set(flight.src.index());
        self.in_flight += 1;
        self.counters.buffer_writes += 1;
    }

    fn tick(&mut self, now: u64, arrivals: &mut Vec<Arrival>) {
        // All fabric packets live in router buffers between ticks; an empty
        // fabric has nothing to arbitrate and nothing to move.
        if self.in_flight == 0 {
            return;
        }

        // Switch allocation: for every router and output direction, pick one
        // ready head packet among the input lanes requesting that output,
        // check link and downstream buffer availability, then move it.
        //
        // Moves are computed first and applied afterwards so that a packet
        // moved this cycle cannot be moved again within the same cycle. A
        // single pass over each active router's occupied lanes buckets the
        // candidates per output direction (a head's route does not depend on
        // the direction being arbitrated); bucket order equals lane order,
        // so round-robin outcomes match the naive one-scan-per-direction
        // formulation bit for bit.
        let mut moves = std::mem::take(&mut self.move_scratch);
        debug_assert!(moves.is_empty() && self.reserved_dirty.is_empty());
        let reserve_idx = |node: NodeId, port: usize, vn: VirtualNetwork| {
            (node.index() * PORTS + port) * VirtualNetwork::ALL.len() + vn.index()
        };

        for node_idx in self.active.iter() {
            let node = NodeId(node_idx as u16);
            let bufs = &self.buffers[node_idx];
            debug_assert!(!bufs.is_empty(), "active set out of sync");
            let mut cand_len = [0usize; 4];
            for (lane_idx, port, vn) in bufs.occupied_lanes() {
                let head = bufs.head(port, vn).expect("occupied lane has a head");
                if head.ready_at > now {
                    continue;
                }
                let Some(out) = self.output_for(node, &head.flight) else {
                    continue;
                };
                if !self.links.is_free(node, dir_link(out), now) {
                    continue;
                }
                let Some(next) = self.mesh.neighbor(node, out) else {
                    continue;
                };
                // Check downstream buffer space at the opposite input port
                // of the neighbour, including space already reserved this
                // cycle.
                let dport = out.opposite().index();
                let occ = self.buffers[next.index()].occupancy(dport, vn)
                    + self.reserved_scratch[reserve_idx(next, dport, vn)] as usize;
                if occ >= self.cfg.vn_buffer_capacity() {
                    continue;
                }
                let d = out.index();
                self.cand_scratch[d][cand_len[d]] = lane_idx;
                cand_len[d] += 1;
                self.meta_scratch[lane_idx] = (port, vn);
            }
            for out in Direction::CARDINAL {
                let d = out.index();
                if cand_len[d] == 0 {
                    continue;
                }
                let arb = &mut self.arbiters[node_idx * PORTS + dir_link(out)];
                if let Some(winner) = arb.pick(&self.cand_scratch[d][..cand_len[d]], LANES) {
                    let (port, vn) = self.meta_scratch[winner];
                    let next = self.mesh.neighbor(node, out).expect("candidate had a neighbor");
                    let dport = out.opposite().index();
                    let ridx = reserve_idx(next, dport, vn);
                    self.reserved_scratch[ridx] += 1;
                    self.reserved_dirty.push(ridx);
                    moves.push(Move {
                        node,
                        port,
                        vn,
                        out,
                        next,
                    });
                }
            }
        }

        for mv in moves.drain(..) {
            let buffered = self.buffers[mv.node.index()]
                .pop(mv.port, mv.vn)
                .expect("winner packet present");
            if self.buffers[mv.node.index()].is_empty() {
                self.active.clear(mv.node.index());
            }
            let flight = buffered.flight;
            let flits = flight.flits as u64;
            // Event accounting: one buffer read + one crossbar pass at the
            // winning router, one link crossed flit by flit, one latch at
            // the downstream router.
            self.counters.buffer_reads += 1;
            self.counters.crossbar_traversals += 1;
            self.counters.link_flit_hops += flits;
            self.counters.stop_hops += 1;
            // The output link is held for the full packet length.
            self.links
                .occupy(mv.node, dir_link(mv.out), now + flits);
            // 1 cycle in the router (already spent winning SA this cycle) +
            // 1 cycle link traversal + serialization of the tail flits.
            let arrival_cycle = now + 1 + (flits - 1);
            if mv.next == flight.dest {
                let mut f = flight;
                f.stops += 1;
                self.in_flight -= 1;
                arrivals.push(Arrival {
                    flight: f,
                    at: mv.next,
                    now: arrival_cycle + 1,
                });
            } else {
                let mut f = flight;
                f.stops += 1;
                self.counters.buffer_writes += 1;
                self.buffers[mv.next.index()].push(
                    mv.out.opposite().index(),
                    mv.vn,
                    Buffered {
                        flight: f,
                        ready_at: arrival_cycle + 1,
                    },
                );
                self.active.set(mv.next.index());
            }
        }
        self.move_scratch = moves;
        while let Some(ridx) = self.reserved_dirty.pop() {
            self.reserved_scratch[ridx] = 0;
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // A head packet can move no earlier than when it is switch-eligible
        // AND its requested output link is free; everything else (downstream
        // space, arbitration) can only *delay* it further, and a tick at
        // which no candidate exists changes no state, so the minimum over
        // all heads is a safe wake-up cycle.
        let mut next: Option<u64> = None;
        for node_idx in self.active.iter() {
            let node = NodeId(node_idx as u16);
            let bufs = &self.buffers[node_idx];
            for (_, port, vn) in bufs.occupied_lanes() {
                let head = bufs.head(port, vn).expect("occupied lane has a head");
                let Some(out) = self.output_for(node, &head.flight) else {
                    continue;
                };
                let e = head
                    .ready_at
                    .max(self.links.free_at(node, dir_link(out)))
                    .max(now);
                if e == now {
                    return Some(now);
                }
                next = Some(next.map_or(e, |n| n.min(e)));
            }
        }
        next
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn counters(&self) -> &FabricCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::PacketId;

    fn flight(id: u64, src: u16, dest: u16, flits: u32, injected: u64) -> FlightInfo {
        FlightInfo {
            id: PacketId(id),
            src: NodeId(src),
            dest: NodeId(dest),
            vn: VirtualNetwork::Request,
            flits,
            injected_at: injected,
            stops: 0,
        }
    }

    fn run_until_arrival(fab: &mut ConventionalFabric, start: u64, limit: u64) -> Vec<Arrival> {
        let mut arrivals = Vec::new();
        let mut now = start;
        while arrivals.is_empty() && now < start + limit {
            fab.tick(now, &mut arrivals);
            now += 1;
        }
        arrivals
    }

    #[test]
    fn two_cycles_per_hop_best_case() {
        let cfg = NocConfig::conventional_mesh(8, 8);
        let mut fab = ConventionalFabric::new(cfg);
        // 0 -> 7 is 7 hops along the bottom row.
        fab.inject(flight(1, 0, 7, 1, 0), 0);
        let arr = run_until_arrival(&mut fab, 0, 100);
        assert_eq!(arr.len(), 1);
        // ~2 cycles per hop plus injection overhead.
        let latency = arr[0].now - arr[0].flight.injected_at;
        assert!(latency >= 14, "latency {latency} too small");
        assert!(latency <= 17, "latency {latency} too large");
    }

    #[test]
    fn corner_to_corner_is_about_28_cycles() {
        // Section 2: 14 hops on a conventional NoC take 28 cycles best case.
        let cfg = NocConfig::conventional_mesh(8, 8);
        let mut fab = ConventionalFabric::new(cfg);
        fab.inject(flight(1, 0, 63, 1, 0), 0);
        let arr = run_until_arrival(&mut fab, 0, 100);
        let latency = arr[0].now - arr[0].flight.injected_at;
        assert!((28..=31).contains(&latency), "latency {latency}");
    }

    #[test]
    fn multi_flit_packets_add_serialization_delay() {
        let cfg = NocConfig::conventional_mesh(4, 4);
        let mut fab = ConventionalFabric::new(cfg);
        fab.inject(flight(1, 0, 3, 3, 0), 0);
        let arr = run_until_arrival(&mut fab, 0, 100);
        let lat3 = arr[0].now;

        let mut fab1 = ConventionalFabric::new(cfg);
        fab1.inject(flight(2, 0, 3, 1, 0), 0);
        let arr1 = run_until_arrival(&mut fab1, 0, 100);
        let lat1 = arr1[0].now;
        assert!(lat3 > lat1, "3-flit {lat3} should exceed 1-flit {lat1}");
    }

    #[test]
    fn contention_serializes_packets_on_shared_link() {
        let cfg = NocConfig::conventional_mesh(4, 1);
        let mut fab = ConventionalFabric::new(cfg);
        // Two packets from node 0 to node 3 compete for the same links.
        fab.inject(flight(1, 0, 3, 4, 0), 0);
        fab.inject(flight(2, 0, 3, 4, 0), 0);
        let mut arrivals = Vec::new();
        for now in 0..200 {
            fab.tick(now, &mut arrivals);
        }
        assert_eq!(arrivals.len(), 2);
        let mut times: Vec<u64> = arrivals.iter().map(|a| a.now).collect();
        times.sort_unstable();
        // Second packet must wait for the first to release each link.
        assert!(times[1] >= times[0] + 4, "times {times:?}");
    }

    #[test]
    fn next_event_bounds_every_state_change_from_below() {
        let cfg = NocConfig::conventional_mesh(8, 8);
        let mut fab = ConventionalFabric::new(cfg);
        assert_eq!(fab.next_event(0), None, "empty fabric has no events");
        fab.inject(flight(1, 0, 7, 1, 0), 0);
        // The injected head becomes switch-eligible at cycle 1.
        assert_eq!(fab.next_event(0), Some(1));
        // Walk to completion, asserting no tick before the probe's bound
        // ever changes state and every tick at the bound is reached.
        let mut arrivals = Vec::new();
        let mut now = 0;
        while fab.in_flight() > 0 {
            let e = fab.next_event(now).expect("packets in flight");
            assert!(e >= now, "bound must not regress");
            // Ticking strictly before the bound must be a no-op; the fabric
            // asserts internally (active set, counters) and the packet must
            // not arrive early.
            for t in now..e {
                fab.tick(t, &mut arrivals);
                assert!(arrivals.is_empty(), "state changed before the bound");
            }
            fab.tick(e, &mut arrivals);
            now = e + 1;
            assert!(now < 100, "packet never arrived");
        }
        assert_eq!(arrivals.len(), 1);
        assert_eq!(fab.next_event(now), None, "drained fabric is quiescent");
        // ~2 cycles per hop over 7 hops, same as the naive per-cycle walk.
        let latency = arrivals[0].now - arrivals[0].flight.injected_at;
        assert!((14..=17).contains(&latency), "latency {latency}");
    }

    #[test]
    fn next_event_opens_a_skip_window_under_partial_occupancy() {
        // Two 4-flit packets race for the same links: after the first wins
        // switch allocation, the fabric still holds both packets yet the
        // probe must name a *future* horizon (the loser waits for the link,
        // the winner serializes), and every tick before it is a no-op. This
        // is the property the system scheduler leans on since PR 5 — the old
        // drain-only probe treated any occupancy as "step every cycle".
        let cfg = NocConfig::conventional_mesh(4, 1);
        let mut fab = ConventionalFabric::new(cfg);
        fab.inject(flight(1, 0, 3, 4, 0), 0);
        fab.inject(flight(2, 0, 3, 4, 0), 0);
        let mut arrivals = Vec::new();
        fab.tick(0, &mut arrivals);
        fab.tick(1, &mut arrivals); // first packet wins SA, holds the link
        assert!(arrivals.is_empty());
        assert_eq!(fab.in_flight(), 2, "both packets still inside the fabric");
        let e = fab.next_event(2).expect("packets in flight");
        assert!(e > 2, "partial occupancy must yield a future horizon, got {e}");
        let before = *fab.counters();
        for t in 2..e {
            fab.tick(t, &mut arrivals);
            assert!(arrivals.is_empty(), "state changed before the bound");
            assert_eq!(*fab.counters(), before, "counters moved in a dead cycle");
        }
        // Run to completion: both packets must still arrive.
        let mut now = e;
        while fab.in_flight() > 0 {
            fab.tick(now, &mut arrivals);
            now += 1;
            assert!(now < 200, "packets never arrived");
        }
        assert_eq!(arrivals.len(), 2);
    }

    #[test]
    fn event_counters_match_the_hop_count() {
        let cfg = NocConfig::conventional_mesh(8, 8);
        let mut fab = ConventionalFabric::new(cfg);
        // 0 -> 7: 7 hops, single flit, no contention.
        fab.inject(flight(1, 0, 7, 1, 0), 0);
        let mut arrivals = Vec::new();
        for now in 0..100 {
            fab.tick(now, &mut arrivals);
        }
        assert_eq!(arrivals.len(), 1);
        let c = *fab.counters();
        assert_eq!(c.buffer_reads, 7, "one read per hop");
        assert_eq!(c.crossbar_traversals, 7);
        assert_eq!(c.link_flit_hops, 7);
        assert_eq!(c.stop_hops, 7);
        // Injection plus 6 intermediate latchings (the destination ejects).
        assert_eq!(c.buffer_writes, 7);
        assert_eq!(fab.buffer_writes(), 7);
        assert_eq!(c.ssr_broadcasts, 0, "no SSRs on a conventional fabric");
        assert_eq!(c.pipeline_passes, 0);
    }

    #[test]
    fn in_flight_count_tracks_packets() {
        let cfg = NocConfig::conventional_mesh(4, 4);
        let mut fab = ConventionalFabric::new(cfg);
        assert_eq!(fab.in_flight(), 0);
        fab.inject(flight(1, 0, 5, 1, 0), 0);
        assert_eq!(fab.in_flight(), 1);
        let mut arrivals = Vec::new();
        for now in 0..50 {
            fab.tick(now, &mut arrivals);
        }
        assert_eq!(fab.in_flight(), 0);
        assert_eq!(arrivals.len(), 1);
    }
}
