//! SMART fabric: Single-cycle Multi-hop Asynchronous Repeated Traversal.
//!
//! Every cycle, switch-allocation winners at each router broadcast a SMART
//! Setup Request (SSR) up to `HPCmax` hops along their output dimension.
//! Each router on the path arbitrates among the SSRs it receives, giving
//! priority to *nearer* flits; the winner's multi-hop bypass path is pre-set
//! and the flit traverses it in a single cycle (ST+LT), being latched only at
//! the router where it stops. Losers are prematurely buffered at the router
//! where they lost and retry from there.
//!
//! The implementation follows the SMART-1D design used by the paper: flits
//! never bypass a turn — an X+Y route costs at least two SMART-hops — and
//! the best-case latency is 2 cycles per SMART-hop (SSR, then ST+LT).

use crate::config::NocConfig;
use crate::message::VirtualNetwork;
use crate::router::{
    dir_link, ActiveSet, Arrival, Buffered, FabricEngine, FlightInfo, InputBuffers, LinkOccupancy,
    RoundRobin,
};
use crate::stats::FabricCounters;
use crate::topology::{Direction, Mesh, NodeId};

const PORTS: usize = 5;

/// A granted SMART Setup Request: `flight` intends to leave `start` in
/// direction `dir` and travel `want_hops` hops this cycle.
#[derive(Debug, Clone, Copy)]
struct Ssr {
    flight: FlightInfo,
    start: NodeId,
    port: usize,
    dir: Direction,
    want_hops: u16,
}

/// Lanes per router: 5 input ports x 5 virtual networks.
const LANES: usize = PORTS * VirtualNetwork::ALL.len();

/// The SMART-NoC fabric engine.
#[derive(Debug)]
pub struct SmartFabric {
    cfg: NocConfig,
    mesh: Mesh,
    buffers: Vec<InputBuffers>,
    /// Routers currently holding at least one buffered packet.
    active: ActiveSet,
    arbiters: Vec<RoundRobin>,
    links: LinkOccupancy,
    in_flight: usize,
    counters: FabricCounters,
    // Persistent per-tick scratch (the per-cycle tick is the simulator's
    // hottest loop; steady state must not allocate).
    ssr_scratch: Vec<Ssr>,
    claimed_scratch: Vec<bool>,
    claimed_dirty: Vec<usize>,
    travel_scratch: Vec<u16>,
    active_scratch: Vec<bool>,
    /// Per-direction switch-allocation candidates (lane indices) of the
    /// router currently being scanned; only `cand_len` entries are live, so
    /// the buffer needs no per-router re-initialization.
    cand_scratch: [[usize; LANES]; 4],
    /// Lane metadata of the router currently being scanned, valid only for
    /// lanes listed in `cand_scratch`.
    meta_scratch: [(usize, VirtualNetwork, u16); LANES],
}

impl SmartFabric {
    /// Builds the fabric for the given configuration.
    pub fn new(cfg: NocConfig) -> Self {
        let mesh = cfg.mesh;
        let nodes = mesh.len();
        SmartFabric {
            cfg,
            mesh,
            buffers: (0..nodes)
                .map(|_| InputBuffers::new(PORTS, cfg.vn_buffer_capacity()))
                .collect(),
            active: ActiveSet::new(nodes),
            arbiters: (0..nodes * PORTS).map(|_| RoundRobin::new()).collect(),
            links: LinkOccupancy::new(nodes, PORTS),
            in_flight: 0,
            counters: FabricCounters::default(),
            ssr_scratch: Vec::new(),
            claimed_scratch: vec![false; nodes * 4],
            claimed_dirty: Vec::new(),
            travel_scratch: Vec::new(),
            active_scratch: Vec::new(),
            cand_scratch: [[0; LANES]; 4],
            meta_scratch: [(0, VirtualNetwork::Request, 0); LANES],
        }
    }

    /// Number of times a flit was stopped before completing its intended
    /// SMART-hop because it lost SSR arbitration to a nearer flit.
    pub fn premature_stops(&self) -> u64 {
        self.counters.premature_stops
    }

    /// Desired output direction and hop count for `flight` sitting at `at`:
    /// the remaining distance in the current XY dimension, clamped to
    /// `HPCmax` (SMART-1D stops at the turn router).
    fn desired(&self, at: NodeId, flight: &FlightInfo) -> Option<(Direction, u16)> {
        let dir = self.mesh.xy_next_dir(at, flight.dest)?;
        let here = self.mesh.coord(at);
        let there = self.mesh.coord(flight.dest);
        let remaining = if dir.is_horizontal() {
            here.x.abs_diff(there.x)
        } else {
            here.y.abs_diff(there.y)
        };
        Some((dir, remaining.min(self.cfg.hpc_max)))
    }
}

impl FabricEngine for SmartFabric {
    fn can_accept(&self, node: NodeId, vn: VirtualNetwork) -> bool {
        self.buffers[node.index()].has_space(Direction::Local.index(), vn)
    }

    fn inject(&mut self, flight: FlightInfo, now: u64) {
        self.buffers[flight.src.index()].push(
            Direction::Local.index(),
            flight.vn,
            Buffered {
                flight,
                ready_at: now + 1,
            },
        );
        self.active.set(flight.src.index());
        self.in_flight += 1;
        self.counters.buffer_writes += 1;
    }

    fn tick(&mut self, now: u64, arrivals: &mut Vec<Arrival>) {
        // All fabric packets live in router buffers between ticks; an empty
        // fabric has nothing to arbitrate and nothing to move.
        if self.in_flight == 0 {
            return;
        }

        // Phase 1 — local switch allocation + SSR generation.
        //
        // At each router, for each output direction, at most one ready head
        // packet wins the switch and broadcasts an SSR of length
        // min(remaining-in-dimension, HPCmax). A single pass over the lanes
        // buckets candidates per output direction (the route of a head is a
        // function of the head alone, not of the direction being arbitrated);
        // bucket order equals `lanes()` order, so round-robin outcomes are
        // identical to scanning the lanes once per direction.
        let mut ssrs: Vec<Ssr> = std::mem::take(&mut self.ssr_scratch);
        debug_assert!(ssrs.is_empty());
        for node_idx in self.active.iter() {
            let node = NodeId(node_idx as u16);
            let bufs = &self.buffers[node_idx];
            debug_assert!(!bufs.is_empty(), "active set out of sync");
            let mut cand_len = [0usize; 4];
            for (lane_idx, port, vn) in bufs.occupied_lanes() {
                let head = bufs.head(port, vn).expect("occupied lane has a head");
                if head.ready_at > now {
                    continue;
                }
                let Some((dir, hops)) = self.desired(node, &head.flight) else {
                    continue;
                };
                if hops == 0 || !self.links.is_free(node, dir_link(dir), now) {
                    continue;
                }
                let d = dir.index();
                self.cand_scratch[d][cand_len[d]] = lane_idx;
                cand_len[d] += 1;
                self.meta_scratch[lane_idx] = (port, vn, hops);
            }
            for out in Direction::CARDINAL {
                let d = out.index();
                if cand_len[d] == 0 {
                    continue;
                }
                let arb = &mut self.arbiters[node.index() * PORTS + dir_link(out)];
                if let Some(winner) = arb.pick(&self.cand_scratch[d][..cand_len[d]], LANES) {
                    let (port, vn, hops) = self.meta_scratch[winner];
                    let head = self.buffers[node.index()]
                        .head(port, vn)
                        .expect("head exists");
                    // Each granted winner drives its dedicated SSR wires
                    // `hops` routers far this cycle, whatever phase 2 then
                    // truncates the traversal to.
                    self.counters.ssr_broadcasts += 1;
                    self.counters.ssr_hops += u64::from(hops);
                    ssrs.push(Ssr {
                        flight: head.flight,
                        start: node,
                        port,
                        dir: out,
                        want_hops: hops,
                    });
                }
            }
        }

        // Phase 2 — SSR arbitration with nearer-flit priority.
        //
        // Links are claimed in rounds of increasing distance from each SSR's
        // start router: a flit claiming the link out of its own router
        // (round 1) always beats a flit trying to bypass through that router
        // (round >= 2), which is exactly the "prioritize local/nearer flits"
        // rule of the SMART paper. An SSR whose claim fails is truncated and
        // its flit stops (is prematurely buffered) at the router before the
        // contended link.
        // claimed[node * 4 + dir'] = true if the link leaving `node` in a
        // cardinal direction has been claimed this cycle. The buffer lives
        // in the struct and only the entries dirtied this tick are reset.
        let mut claimed = std::mem::take(&mut self.claimed_scratch);
        let mut claimed_dirty = std::mem::take(&mut self.claimed_dirty);
        debug_assert!(claimed.iter().all(|c| !c) && claimed_dirty.is_empty());
        let claim_idx = |node: NodeId, dir: Direction| node.index() * 4 + dir_link(dir);
        // travel[i] = hops SSR i actually gets to traverse this cycle.
        let mut travel = std::mem::take(&mut self.travel_scratch);
        travel.clear();
        travel.resize(ssrs.len(), 0);
        let mut active = std::mem::take(&mut self.active_scratch);
        active.clear();
        active.extend(ssrs.iter().map(|s| s.want_hops > 0));
        let max_hops = self.cfg.hpc_max.max(1);
        for round in 0..max_hops {
            for (i, ssr) in ssrs.iter().enumerate() {
                if !active[i] || round >= ssr.want_hops {
                    active[i] = false;
                    continue;
                }
                // Router the flit sits at after `round` hops.
                let at = self.mesh.advance(ssr.start, ssr.dir, round);
                let idx = claim_idx(at, ssr.dir);
                if claimed[idx] {
                    // Lost to a nearer flit: stop here.
                    active[i] = false;
                    if travel[i] < ssr.want_hops && travel[i] > 0 {
                        self.counters.premature_stops += 1;
                    }
                } else {
                    claimed[idx] = true;
                    claimed_dirty.push(idx);
                    travel[i] += 1;
                }
            }
        }
        for (i, ssr) in ssrs.iter().enumerate() {
            if travel[i] > 0 && travel[i] < ssr.want_hops {
                // Count flits truncated in the final round as premature too.
                self.counters.premature_stops += u64::from(active[i]);
            }
        }
        for idx in claimed_dirty.drain(..) {
            claimed[idx] = false;
        }
        self.claimed_scratch = claimed;
        self.claimed_dirty = claimed_dirty;
        self.active_scratch = active;

        // Phase 3 — single-cycle multi-hop traversal (ST + LT) of the
        // granted paths. The flit is latched at the stop router at the end of
        // the next cycle; every claimed link is held for the packet length.
        for (i, ssr) in ssrs.iter().enumerate() {
            let hops = travel[i];
            if hops == 0 {
                continue;
            }
            let buffered = self.buffers[ssr.start.index()]
                .pop(ssr.port, ssr.flight.vn)
                .expect("ssr packet present");
            if self.buffers[ssr.start.index()].is_empty() {
                self.active.clear(ssr.start.index());
            }
            let mut flight = buffered.flight;
            let flits = flight.flits as u64;
            // Event accounting: one buffer read at the start router, then
            // the pre-set path crosses the crossbar of every router it
            // leaves (start + bypassed intermediates) and `hops` links; only
            // the stop router latches the flit.
            self.counters.buffer_reads += 1;
            self.counters.crossbar_traversals += u64::from(hops);
            self.counters.link_flit_hops += u64::from(hops) * flits;
            self.counters.bypass_hops += u64::from(hops) - 1;
            self.counters.stop_hops += 1;
            for h in 0..hops {
                let link_node = self.mesh.advance(ssr.start, ssr.dir, h);
                self.links
                    .occupy(link_node, dir_link(ssr.dir), now + flits);
            }
            let stop = self.mesh.advance(ssr.start, ssr.dir, hops);
            let arrival_cycle = now + 1 + (flits - 1);
            flight.stops += 1;
            if stop == flight.dest {
                self.in_flight -= 1;
                arrivals.push(Arrival {
                    flight,
                    at: stop,
                    now: arrival_cycle,
                });
            } else {
                self.counters.buffer_writes += 1;
                self.buffers[stop.index()].push(
                    ssr.dir.opposite().index(),
                    flight.vn,
                    Buffered {
                        flight,
                        ready_at: arrival_cycle + 1,
                    },
                );
                self.active.set(stop.index());
            }
        }
        ssrs.clear();
        self.ssr_scratch = ssrs;
        self.travel_scratch = travel;
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // An SSR can only be generated for a ready head whose first output
        // link is free (phase 1); SSR arbitration (phase 2) happens within
        // the same cycle and cannot create earlier work. The minimum over
        // all heads of that eligibility cycle is therefore a safe wake-up.
        let mut next: Option<u64> = None;
        for node_idx in self.active.iter() {
            let node = NodeId(node_idx as u16);
            let bufs = &self.buffers[node_idx];
            for (_, port, vn) in bufs.occupied_lanes() {
                let head = bufs.head(port, vn).expect("occupied lane has a head");
                let Some((dir, hops)) = self.desired(node, &head.flight) else {
                    continue;
                };
                if hops == 0 {
                    continue;
                }
                let e = head
                    .ready_at
                    .max(self.links.free_at(node, dir_link(dir)))
                    .max(now);
                if e == now {
                    return Some(now);
                }
                next = Some(next.map_or(e, |n| n.min(e)));
            }
        }
        next
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn counters(&self) -> &FabricCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::PacketId;

    fn flight(id: u64, src: u16, dest: u16, flits: u32) -> FlightInfo {
        FlightInfo {
            id: PacketId(id),
            src: NodeId(src),
            dest: NodeId(dest),
            vn: VirtualNetwork::Request,
            flits,
            injected_at: 0,
            stops: 0,
        }
    }

    fn drain(fab: &mut SmartFabric, cycles: u64) -> Vec<Arrival> {
        let mut arrivals = Vec::new();
        for now in 0..cycles {
            fab.tick(now, &mut arrivals);
        }
        arrivals
    }

    #[test]
    fn single_smart_hop_covers_hpcmax_hops() {
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        let mut fab = SmartFabric::new(cfg);
        // 4 hops east: one SMART-hop, ~2-3 cycles total.
        fab.inject(flight(1, 0, 4, 1), 0);
        let arr = drain(&mut fab, 20);
        assert_eq!(arr.len(), 1);
        let latency = arr[0].now - arr[0].flight.injected_at;
        assert!(latency <= 3, "latency {latency}");
        assert_eq!(arr[0].flight.stops, 1);
    }

    #[test]
    fn corner_to_corner_is_about_8_cycles() {
        // Section 2: 14 hops on 8x8 with HPCmax=4 is 4 SMART-hops = 8 cycles
        // best case.
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        let mut fab = SmartFabric::new(cfg);
        fab.inject(flight(1, 0, 63, 1), 0);
        let arr = drain(&mut fab, 40);
        assert_eq!(arr.len(), 1);
        let latency = arr[0].now - arr[0].flight.injected_at;
        assert!((8..=10).contains(&latency), "latency {latency}");
        assert_eq!(arr[0].flight.stops, 4);
    }

    #[test]
    fn smart_beats_conventional_on_long_paths() {
        use crate::conventional::ConventionalFabric;
        let smart_cfg = NocConfig::smart_mesh(8, 8, 4);
        let conv_cfg = NocConfig::conventional_mesh(8, 8);
        let mut smart = SmartFabric::new(smart_cfg);
        let mut conv = ConventionalFabric::new(conv_cfg);
        smart.inject(flight(1, 0, 63, 1), 0);
        conv.inject(flight(1, 0, 63, 1), 0);
        let s = drain(&mut smart, 100)[0].now;
        let mut arrivals = Vec::new();
        for now in 0..100 {
            conv.tick(now, &mut arrivals);
        }
        let c = arrivals[0].now;
        assert!(s * 2 <= c, "smart {s} vs conventional {c}");
    }

    #[test]
    fn turning_flit_takes_two_smart_hops() {
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        let mut fab = SmartFabric::new(cfg);
        // 3 hops east + 3 hops north: SMART-1D forces a stop at the turn.
        let dest = 8 * 3 + 3;
        fab.inject(flight(1, 0, dest, 1), 0);
        let arr = drain(&mut fab, 20);
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].flight.stops, 2);
        let latency = arr[0].now;
        assert!((4..=6).contains(&latency), "latency {latency}");
    }

    #[test]
    fn nearer_flit_wins_and_farther_flit_stops_prematurely() {
        // Recreates Figure 2c: flit A from router 0 going east 3+ hops,
        // flit B injected at router 1 also going east. B is "nearer" to
        // router 1's output link, so A must stop prematurely at router 1.
        let cfg = NocConfig::smart_mesh(8, 1, 4);
        let mut fab = SmartFabric::new(cfg);
        fab.inject(flight(1, 0, 6, 1), 0); // A: wants 0 -> 4 in one SMART-hop
        fab.inject(flight(2, 1, 6, 1), 0); // B: local at router 1
        let arr = drain(&mut fab, 40);
        assert_eq!(arr.len(), 2);
        let a = arr.iter().find(|a| a.flight.id == PacketId(1)).unwrap();
        let b = arr.iter().find(|a| a.flight.id == PacketId(2)).unwrap();
        // A is delayed relative to running alone (which would be ~4 cycles).
        assert!(a.now > b.now || a.flight.stops > 2, "a {a:?} b {b:?}");
        assert!(fab.premature_stops() >= 1);
    }

    #[test]
    fn next_event_bounds_every_state_change_from_below() {
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        let mut fab = SmartFabric::new(cfg);
        assert_eq!(fab.next_event(0), None, "empty fabric has no events");
        // Corner to corner: 4 SMART-hops with stops at intermediate routers.
        fab.inject(flight(1, 0, 63, 1), 0);
        assert_eq!(fab.next_event(0), Some(1));
        let mut arrivals = Vec::new();
        let mut now = 0;
        while fab.in_flight() > 0 {
            let e = fab.next_event(now).expect("packet in flight");
            assert!(e >= now, "bound must not regress");
            for t in now..e {
                fab.tick(t, &mut arrivals);
                assert!(arrivals.is_empty(), "state changed before the bound");
            }
            fab.tick(e, &mut arrivals);
            now = e + 1;
            assert!(now < 100, "packet never arrived");
        }
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].flight.stops, 4);
        assert_eq!(fab.next_event(now), None, "drained fabric is quiescent");
    }

    #[test]
    fn next_event_opens_a_skip_window_under_partial_occupancy() {
        // Two 4-flit packets from the same router: the SSR winner holds the
        // claimed links for the full packet length, so the loser's head sees
        // a future (ready, link-free) cycle. The fabric is occupied the
        // whole time, yet the probe must report a skippable window and every
        // tick inside it must be a no-op (counters included).
        let cfg = NocConfig::smart_mesh(8, 1, 4);
        let mut fab = SmartFabric::new(cfg);
        fab.inject(flight(1, 0, 7, 4), 0);
        fab.inject(flight(2, 0, 7, 4), 0);
        let mut arrivals = Vec::new();
        fab.tick(0, &mut arrivals);
        fab.tick(1, &mut arrivals); // winner launches its SMART-hop
        assert_eq!(fab.in_flight(), 2, "both packets still inside the fabric");
        let e = fab.next_event(2).expect("packets in flight");
        assert!(e > 2, "partial occupancy must yield a future horizon, got {e}");
        let before = *fab.counters();
        for t in 2..e {
            fab.tick(t, &mut arrivals);
            assert!(arrivals.is_empty(), "state changed before the bound");
            assert_eq!(*fab.counters(), before, "counters moved in a dead cycle");
        }
        let mut now = e;
        while fab.in_flight() > 0 {
            fab.tick(now, &mut arrivals);
            now += 1;
            assert!(now < 200, "packets never arrived");
        }
        assert_eq!(arrivals.len(), 2);
    }

    #[test]
    fn event_counters_split_bypass_and_stop_hops() {
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        let mut fab = SmartFabric::new(cfg);
        // 4 hops east in one SMART-hop: 3 routers bypassed, 1 latch at the
        // destination.
        fab.inject(flight(1, 0, 4, 1), 0);
        drain(&mut fab, 20);
        let c = *fab.counters();
        assert_eq!(c.ssr_broadcasts, 1);
        assert_eq!(c.ssr_hops, 4);
        assert_eq!(c.bypass_hops, 3);
        assert_eq!(c.stop_hops, 1);
        assert_eq!(c.crossbar_traversals, 4, "every router on the path is crossed");
        assert_eq!(c.link_flit_hops, 4);
        assert_eq!(c.buffer_reads, 1);
        assert_eq!(c.buffer_writes, 1, "injection only; the bypass never latches");
        assert_eq!(c.premature_stops, 0);
        assert_eq!(c.express_traversals, 0, "no express links on SMART");
    }

    #[test]
    fn buffer_writes_counted_only_at_stops() {
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        let mut fab = SmartFabric::new(cfg);
        fab.inject(flight(1, 0, 4, 1), 0);
        drain(&mut fab, 20);
        // One injection write, no intermediate stop writes (the single
        // SMART-hop goes straight to the destination).
        assert_eq!(fab.buffer_writes(), 1);
    }
}
