//! The per-core L1 data-cache controller (MSI).
//!
//! The L1 only ever talks to its home L2 (Section 4.1: "L1 cache is allowed
//! to communicate only with L2 caches"): misses and upgrades are sent to the
//! home node selected by the organization's address map, invalidations from
//! the home node are acknowledged, and dirty evictions are written back to
//! the victim line's home node.

use crate::address::{Address, LineAddr};
use crate::array::{CacheArray, CacheGeometry, Eviction};
use crate::line::MsiState;
use crate::msg::{Agent, MsgKind, Outgoing, ProtocolMsg, ResponseSource};
use crate::organization::Organization;
use crate::stats::CacheStats;
use loco_noc::NodeId;

/// Result of a core-side L1 access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Access {
    /// The access hit in the L1; the core may proceed after the L1 latency.
    Hit,
    /// The access missed; a request was sent to the home L2 and the core must
    /// stall until [`L1Fill`] is returned for the line.
    Miss,
    /// The L1 already has an outstanding miss (single-MSHR, in-order core);
    /// the caller must retry after the outstanding miss completes.
    Busy,
}

/// Notification that an outstanding L1 miss completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Fill {
    /// The line that was filled.
    pub addr: LineAddr,
    /// Whether the original access was a store.
    pub was_write: bool,
    /// Cycle the miss was issued.
    pub issued_at: u64,
    /// Cycle the data arrived back at the L1.
    pub completed_at: u64,
    /// Where the data came from.
    pub source: ResponseSource,
}

/// The MSI L1 data-cache controller of one tile.
#[derive(Debug)]
pub struct L1Controller {
    node: NodeId,
    org: Organization,
    array: CacheArray<MsiState>,
    /// The single outstanding miss (the paper models 2-way in-order cores,
    /// which block on a demand miss).
    mshr: Option<Mshr>,
    stats: CacheStats,
}

#[derive(Debug, Clone, Copy)]
struct Mshr {
    addr: LineAddr,
    is_write: bool,
    issued_at: u64,
}

impl L1Controller {
    /// Creates the L1 controller for `node`.
    pub fn new(node: NodeId, geometry: CacheGeometry, org: Organization) -> Self {
        L1Controller {
            node,
            org,
            array: CacheArray::new(geometry),
            mshr: None,
            stats: CacheStats::default(),
        }
    }

    /// The tile this controller belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether an L1 miss is outstanding.
    pub fn is_blocked(&self) -> bool {
        self.mshr.is_some()
    }

    /// Statistics collected by this controller.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_of(&self, line: LineAddr) -> usize {
        line.set_index(0, self.array.num_sets())
    }

    /// A core-side load or store to `addr` at cycle `now`.
    ///
    /// On a miss, the request message to the home L2 is appended to `out`
    /// and the core must stall until the matching [`L1Fill`] is produced by
    /// [`L1Controller::handle`].
    pub fn access(
        &mut self,
        addr: Address,
        is_write: bool,
        now: u64,
        out: &mut Vec<Outgoing>,
    ) -> L1Access {
        if self.mshr.is_some() {
            return L1Access::Busy;
        }
        let line = addr.line(self.array.geometry().line_bytes);
        let set = self.set_of(line);
        self.stats.l1_accesses += 1;
        self.stats.l1_tag_probes += 1;
        let hit = match self.array.lookup_mut(set, line, now) {
            Some(entry) if !is_write && entry.meta.can_read() => true,
            Some(entry) if is_write && entry.meta.can_write() => true,
            _ => false,
        };
        if hit {
            self.stats.l1_hits += 1;
            if is_write {
                self.stats.l1_data_writes += 1;
            } else {
                self.stats.l1_data_reads += 1;
            }
            return L1Access::Hit;
        }
        self.stats.l1_misses += 1;
        let home = self.org.home_node(self.node, line);
        let kind = if is_write { MsgKind::GetM } else { MsgKind::GetS };
        self.mshr = Some(Mshr {
            addr: line,
            is_write,
            issued_at: now,
        });
        out.push(Outgoing::after(
            self.array.geometry().latency,
            ProtocolMsg {
                addr: line,
                kind,
                src: Agent::l1(self.node),
                dst: Agent::l2(home),
                requester: self.node,
                issued_at: now,
            },
        ));
        L1Access::Miss
    }

    /// Handles a protocol message addressed to this L1.
    ///
    /// Returns the fill notification if the message completed the
    /// outstanding miss.
    pub fn handle(&mut self, msg: ProtocolMsg, now: u64, out: &mut Vec<Outgoing>) -> Option<L1Fill> {
        match msg.kind {
            MsgKind::DataS(source) | MsgKind::DataM(source) => {
                let exclusive = matches!(msg.kind, MsgKind::DataM(_));
                let state = if exclusive { MsiState::M } else { MsiState::S };
                let set = self.set_of(msg.addr);
                self.stats.l1_data_writes += 1;
                match self.array.insert(set, msg.addr, state, now) {
                    Eviction::Victim(victim) if victim.meta == MsiState::M => {
                        // The dirty victim is read out of the array for the
                        // writeback.
                        self.stats.l1_data_reads += 1;
                        let victim_home = self.org.home_node(self.node, victim.addr);
                        out.push(Outgoing::after(
                            1,
                            ProtocolMsg {
                                addr: victim.addr,
                                kind: MsgKind::WbL1,
                                src: Agent::l1(self.node),
                                dst: Agent::l2(victim_home),
                                requester: self.node,
                                issued_at: now,
                            },
                        ));
                    }
                    _ => {}
                }
                let mshr = self
                    .mshr
                    .take()
                    .expect("L1 data grant without an outstanding miss");
                debug_assert_eq!(mshr.addr, msg.addr, "data grant for a different line");
                Some(L1Fill {
                    addr: msg.addr,
                    was_write: mshr.is_write,
                    issued_at: mshr.issued_at,
                    completed_at: now,
                    source,
                })
            }
            MsgKind::InvL1 => {
                let set = self.set_of(msg.addr);
                self.stats.l1_tag_probes += 1;
                let dirty = match self.array.invalidate(set, msg.addr) {
                    Some(entry) => entry.meta == MsiState::M,
                    None => false,
                };
                if dirty {
                    // Modified data is read out to travel with the ack.
                    self.stats.l1_data_reads += 1;
                }
                out.push(Outgoing::after(
                    1,
                    ProtocolMsg::derived(
                        &msg,
                        MsgKind::InvAckL1 { dirty },
                        Agent::l1(self.node),
                        msg.src,
                    ),
                ));
                None
            }
            other => panic!("L1 controller received unexpected message kind {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_noc::Mesh;

    fn l1() -> L1Controller {
        let org = Organization::shared(Mesh::new(8, 8));
        L1Controller::new(NodeId(9), CacheGeometry::asplos_l1(), org)
    }

    fn fill(ctrl: &mut L1Controller, addr: LineAddr, exclusive: bool, now: u64) -> Option<L1Fill> {
        let kind = if exclusive {
            MsgKind::DataM(ResponseSource::Home)
        } else {
            MsgKind::DataS(ResponseSource::Home)
        };
        let msg = ProtocolMsg {
            addr,
            kind,
            src: Agent::l2(NodeId(0)),
            dst: Agent::l1(NodeId(9)),
            requester: NodeId(9),
            issued_at: 0,
        };
        let mut out = Vec::new();
        ctrl.handle(msg, now, &mut out)
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = l1();
        let mut out = Vec::new();
        assert_eq!(c.access(Address(0x1000), false, 0, &mut out), L1Access::Miss);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.kind, MsgKind::GetS);
        assert!(c.is_blocked());
        let f = fill(&mut c, Address(0x1000).line(32), false, 10).unwrap();
        assert_eq!(f.issued_at, 0);
        assert_eq!(f.completed_at, 10);
        assert!(!c.is_blocked());
        // Second access to the same line hits.
        let mut out = Vec::new();
        assert_eq!(c.access(Address(0x1010), false, 11, &mut out), L1Access::Hit);
        assert!(out.is_empty());
        assert_eq!(c.stats().l1_hits, 1);
        assert_eq!(c.stats().l1_misses, 1);
    }

    #[test]
    fn write_to_shared_line_upgrades() {
        let mut c = l1();
        let mut out = Vec::new();
        c.access(Address(0x2000), false, 0, &mut out);
        fill(&mut c, Address(0x2000).line(32), false, 5);
        // A store to the S line is a miss (upgrade).
        let mut out = Vec::new();
        assert_eq!(c.access(Address(0x2000), true, 6, &mut out), L1Access::Miss);
        assert_eq!(out[0].msg.kind, MsgKind::GetM);
        fill(&mut c, Address(0x2000).line(32), true, 20);
        // Now stores hit.
        let mut out = Vec::new();
        assert_eq!(c.access(Address(0x2000), true, 21, &mut out), L1Access::Hit);
    }

    #[test]
    fn busy_while_miss_outstanding() {
        let mut c = l1();
        let mut out = Vec::new();
        assert_eq!(c.access(Address(0x1), false, 0, &mut out), L1Access::Miss);
        assert_eq!(c.access(Address(0x9000), false, 1, &mut out), L1Access::Busy);
    }

    #[test]
    fn invalidation_returns_ack_and_reports_dirty() {
        let mut c = l1();
        let mut out = Vec::new();
        c.access(Address(0x3000), true, 0, &mut out);
        fill(&mut c, Address(0x3000).line(32), true, 5);
        let inv = ProtocolMsg {
            addr: Address(0x3000).line(32),
            kind: MsgKind::InvL1,
            src: Agent::l2(NodeId(0)),
            dst: Agent::l1(NodeId(9)),
            requester: NodeId(1),
            issued_at: 6,
        };
        let mut out = Vec::new();
        assert!(c.handle(inv, 8, &mut out).is_none());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.kind, MsgKind::InvAckL1 { dirty: true });
        // The line is gone: the next read misses.
        let mut out = Vec::new();
        assert_eq!(c.access(Address(0x3000), false, 9, &mut out), L1Access::Miss);
    }

    #[test]
    fn invalidation_of_absent_line_still_acks_clean() {
        let mut c = l1();
        let inv = ProtocolMsg {
            addr: LineAddr(0x77),
            kind: MsgKind::InvL1,
            src: Agent::l2(NodeId(0)),
            dst: Agent::l1(NodeId(9)),
            requester: NodeId(1),
            issued_at: 0,
        };
        let mut out = Vec::new();
        c.handle(inv, 1, &mut out);
        assert_eq!(out[0].msg.kind, MsgKind::InvAckL1 { dirty: false });
    }

    #[test]
    fn dirty_eviction_writes_back_to_victim_home() {
        // Fill an entire set with modified lines, then one more to force a
        // dirty eviction.
        let mut c = l1();
        let sets = 128u64; // 16KB, 4-way, 32B lines
        let mut fills = 0u64;
        for i in 0..5u64 {
            let addr = Address((i * sets) * 32); // same set 0
            let mut out = Vec::new();
            if c.access(addr, true, i * 10, &mut out) == L1Access::Miss {
                let f = fill(&mut c, addr.line(32), true, i * 10 + 5);
                assert!(f.is_some());
                fills += 1;
            }
        }
        assert_eq!(fills, 5);
        // The 5th fill must have produced a WbL1 for the LRU victim.
        // (We cannot observe `out` from inside `fill`, so re-check via stats:
        // the L1 still holds 4 lines of that set.)
        assert_eq!(c.array.occupancy(), 4);
    }
}
