//! Experiment runners reproducing every table and figure of the paper's
//! evaluation (Section 4).
//!
//! The central type is [`Runner`]: it memoizes simulation runs keyed by
//! (benchmark, organization, router, cluster, full-system), so composing
//! several figures over the same configuration matrix never re-simulates.
//! Every `figNN_*` method returns a [`Figure`] whose series labels match the
//! paper's legends; `EXPERIMENTS.md` records the paper-reported numbers next
//! to the reproduced ones.

use crate::report::{Figure, Series};
use loco_cache::{ClusterShape, OrganizationKind};
use loco_noc::{FxHashMap, RouterKind};
use loco_sim::{CmpSystem, SimResults, SystemConfig};
use loco_workloads::{Benchmark, MultiProgramWorkload, TraceGenerator};

/// Scale parameters of an experiment campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExperimentParams {
    /// Mesh width in tiles.
    pub mesh_width: u16,
    /// Mesh height in tiles.
    pub mesh_height: u16,
    /// Default LOCO cluster shape.
    pub cluster: ClusterShape,
    /// Memory operations generated per core.
    pub mem_ops_per_core: u64,
    /// Trace-generation seed.
    pub seed: u64,
    /// Simulation cycle budget per run.
    pub max_cycles: u64,
    /// Divisor applied to both the cache capacities (L1 / L2 slice) and the
    /// benchmarks' working sets. The paper runs billions of instructions
    /// against the Table-1 caches; our traces are orders of magnitude
    /// shorter, so scaling caches and working sets together keeps the
    /// capacity-pressure *regime* identical while runs stay tractable
    /// (see DESIGN.md §3). Set to 1 for unscaled Table-1 capacities.
    pub working_set_scale: u64,
}

impl ExperimentParams {
    /// The paper's 64-core CMP (8x8 mesh, 4x4 clusters).
    pub fn paper_64() -> Self {
        ExperimentParams {
            mesh_width: 8,
            mesh_height: 8,
            cluster: ClusterShape::new(4, 4),
            mem_ops_per_core: 2_000,
            seed: 42,
            max_cycles: 50_000_000,
            working_set_scale: 8,
        }
    }

    /// The paper's 256-core CMP (16x16 mesh, 4x4 clusters). The per-core
    /// trace is shorter, mirroring the paper's own 2-billion-instruction cap
    /// on trace-driven runs.
    pub fn paper_256() -> Self {
        ExperimentParams {
            mesh_width: 16,
            mesh_height: 16,
            mem_ops_per_core: 700,
            ..Self::paper_64()
        }
    }

    /// A reduced 16-core configuration for unit tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentParams {
            mesh_width: 4,
            mesh_height: 4,
            cluster: ClusterShape::new(2, 2),
            mem_ops_per_core: 200,
            seed: 42,
            max_cycles: 5_000_000,
            working_set_scale: 8,
        }
    }

    /// Scales the trace length (e.g. `with_mem_ops(500)` for faster runs).
    pub fn with_mem_ops(mut self, mem_ops: u64) -> Self {
        self.mem_ops_per_core = mem_ops;
        self
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.mesh_width as usize * self.mesh_height as usize
    }

    /// A short label ("64-core", "256-core", ...).
    pub fn label(&self) -> String {
        format!("{}-core", self.num_cores())
    }

    fn system(&self, org: OrganizationKind, router: RouterKind, cluster: ClusterShape, fs: bool) -> SystemConfig {
        let mut cfg = SystemConfig::asplos_64(org)
            .with_router(router)
            .with_cluster(cluster)
            .with_full_system(fs);
        cfg.mesh_width = self.mesh_width;
        cfg.mesh_height = self.mesh_height;
        let scale = self.working_set_scale.max(1);
        cfg.l1.size_bytes = (cfg.l1.size_bytes / scale).max(1024);
        cfg.l2.geometry.size_bytes = (cfg.l2.geometry.size_bytes / scale).max(2048);
        cfg
    }

    fn scaled_spec(&self, benchmark: Benchmark) -> loco_workloads::BenchmarkSpec {
        benchmark.spec().scaled_down(self.working_set_scale.max(1))
    }
}

/// One memoized simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RunKey {
    benchmark: Benchmark,
    org: OrganizationKind,
    router: RouterKind,
    cluster: ClusterShape,
    full_system: bool,
}

/// Memoizing experiment runner.
#[derive(Debug)]
pub struct Runner {
    params: ExperimentParams,
    cache: FxHashMap<RunKey, SimResults>,
    runs: u64,
}

impl Runner {
    /// Creates a runner for the given scale.
    pub fn new(params: ExperimentParams) -> Self {
        Runner {
            params,
            cache: FxHashMap::default(),
            runs: 0,
        }
    }

    /// The scale parameters.
    pub fn params(&self) -> &ExperimentParams {
        &self.params
    }

    /// Number of distinct simulations executed so far.
    pub fn simulations_run(&self) -> u64 {
        self.runs
    }

    /// Runs (or returns the memoized result of) one configuration.
    pub fn run(
        &mut self,
        benchmark: Benchmark,
        org: OrganizationKind,
        router: RouterKind,
        cluster: ClusterShape,
        full_system: bool,
    ) -> SimResults {
        let key = RunKey {
            benchmark,
            org,
            router,
            cluster,
            full_system,
        };
        if let Some(r) = self.cache.get(&key) {
            return r.clone();
        }
        let spec = self.params.scaled_spec(benchmark);
        let traces = TraceGenerator::new(self.params.seed)
            .with_barriers(full_system)
            .generate(&spec, self.params.num_cores(), self.params.mem_ops_per_core);
        let cfg = self.params.system(org, router, cluster, full_system);
        let mut sys = CmpSystem::new(cfg, traces);
        let result = sys.run(self.params.max_cycles);
        self.runs += 1;
        self.cache.insert(key, result.clone());
        result
    }

    /// Shorthand: SMART NoC, default cluster, trace-driven.
    pub fn run_default(&mut self, benchmark: Benchmark, org: OrganizationKind) -> SimResults {
        self.run(benchmark, org, RouterKind::Smart, self.params.cluster, false)
    }

    // ------------------------------------------------------------ Figure 6

    /// Figure 6: run time of the private-cache baseline normalized to the
    /// distributed shared cache (both on SMART NoCs).
    pub fn fig06_private_vs_shared(&mut self, benchmarks: &[Benchmark]) -> Figure {
        let mut fig = Figure::new(
            "fig06",
            "Normalized runtime of private caches vs. shared caches",
            "runtime normalized to Shared Cache",
        );
        fig.x_labels = benchmarks.iter().map(|b| b.name().to_string()).collect();
        let mut private = Vec::new();
        for &b in benchmarks {
            let shared = self.run_default(b, OrganizationKind::Shared);
            let priv_r = self.run_default(b, OrganizationKind::Private);
            private.push(priv_r.runtime_normalized_to(&shared));
        }
        fig.push_series(Series::new("Private Cache", private));
        fig.push_average_column();
        fig
    }

    // ------------------------------------------------------------ Figure 7

    /// Figure 7: increase of average L2 hit latency over the private-cache
    /// baseline, for the shared cache and for LOCO.
    pub fn fig07_l2_hit_latency(&mut self, benchmarks: &[Benchmark]) -> Figure {
        let mut fig = Figure::new(
            format!("fig07-{}", self.params.label()),
            "Increase of L2 access latency over Private Cache",
            "cycles",
        );
        fig.x_labels = benchmarks.iter().map(|b| b.name().to_string()).collect();
        let (mut shared_v, mut loco_v) = (Vec::new(), Vec::new());
        for &b in benchmarks {
            let private = self.run_default(b, OrganizationKind::Private);
            let shared = self.run_default(b, OrganizationKind::Shared);
            let loco = self.run_default(b, OrganizationKind::LocoCcVmsIvr);
            shared_v.push((shared.avg_l2_hit_latency - private.avg_l2_hit_latency).max(0.0));
            loco_v.push((loco.avg_l2_hit_latency - private.avg_l2_hit_latency).max(0.0));
        }
        fig.push_series(Series::new("Shared Cache", shared_v));
        fig.push_series(Series::new("LOCO", loco_v));
        fig.push_average_column();
        fig
    }

    // ------------------------------------------------------------ Figure 8

    /// Figure 8: L2 misses per thousand instructions, shared cache vs. LOCO.
    pub fn fig08_mpki(&mut self, benchmarks: &[Benchmark]) -> Figure {
        let mut fig = Figure::new(
            format!("fig08-{}", self.params.label()),
            "L2 cache misses per 1000 instructions",
            "MPKI",
        );
        fig.x_labels = benchmarks.iter().map(|b| b.name().to_string()).collect();
        let (mut shared_v, mut loco_v) = (Vec::new(), Vec::new());
        for &b in benchmarks {
            shared_v.push(self.run_default(b, OrganizationKind::Shared).l2_mpki);
            loco_v.push(self.run_default(b, OrganizationKind::LocoCcVmsIvr).l2_mpki);
        }
        fig.push_series(Series::new("Shared Cache", shared_v));
        fig.push_series(Series::new("LOCO", loco_v));
        fig.push_average_column();
        fig
    }

    // ------------------------------------------------------------ Figure 9

    /// Figure 9: on-chip data-search delay, LOCO CC (directory indirection)
    /// vs. LOCO CC+VMS (broadcast on the virtual mesh).
    pub fn fig09_search_delay(&mut self, benchmarks: &[Benchmark]) -> Figure {
        let mut fig = Figure::new(
            format!("fig09-{}", self.params.label()),
            "Global search delay for data cached on-chip",
            "cycles",
        );
        fig.x_labels = benchmarks.iter().map(|b| b.name().to_string()).collect();
        let (mut cc, mut vms) = (Vec::new(), Vec::new());
        for &b in benchmarks {
            cc.push(self.run_default(b, OrganizationKind::LocoCc).avg_search_delay);
            vms.push(self.run_default(b, OrganizationKind::LocoCcVms).avg_search_delay);
        }
        fig.push_series(Series::new("LOCO CC", cc));
        fig.push_series(Series::new("LOCO CC+VMS", vms));
        fig.push_average_column();
        fig
    }

    // ----------------------------------------------------------- Figure 10

    /// Figure 10: off-chip memory accesses normalized to the shared cache,
    /// with and without inter-cluster victim replacement.
    pub fn fig10_offchip(&mut self, benchmarks: &[Benchmark]) -> Figure {
        let mut fig = Figure::new(
            format!("fig10-{}", self.params.label()),
            "Normalized off-chip memory accesses",
            "normalized to Shared Cache",
        );
        fig.x_labels = benchmarks.iter().map(|b| b.name().to_string()).collect();
        let (mut vms, mut ivr) = (Vec::new(), Vec::new());
        for &b in benchmarks {
            let shared = self.run_default(b, OrganizationKind::Shared);
            vms.push(
                self.run_default(b, OrganizationKind::LocoCcVms)
                    .offchip_normalized_to(&shared),
            );
            ivr.push(
                self.run_default(b, OrganizationKind::LocoCcVmsIvr)
                    .offchip_normalized_to(&shared),
            );
        }
        fig.push_series(Series::new("LOCO CC+VMS", vms));
        fig.push_series(Series::new("LOCO CC+VMS+IVR", ivr));
        fig.push_average_column();
        fig
    }

    // ----------------------------------------------------------- Figure 11

    /// Figure 11: run time of each LOCO feature, normalized to the shared
    /// cache baseline.
    pub fn fig11_runtime(&mut self, benchmarks: &[Benchmark]) -> Figure {
        let mut fig = Figure::new(
            format!("fig11-{}", self.params.label()),
            "Normalized runtimes of LOCO against baseline Shared Cache",
            "runtime normalized to Shared Cache",
        );
        fig.x_labels = benchmarks.iter().map(|b| b.name().to_string()).collect();
        let mut series: Vec<(OrganizationKind, Vec<f64>)> = vec![
            (OrganizationKind::Shared, Vec::new()),
            (OrganizationKind::LocoCc, Vec::new()),
            (OrganizationKind::LocoCcVms, Vec::new()),
            (OrganizationKind::LocoCcVmsIvr, Vec::new()),
        ];
        for &b in benchmarks {
            let shared = self.run_default(b, OrganizationKind::Shared);
            for (org, values) in &mut series {
                let r = self.run_default(b, *org);
                values.push(r.runtime_normalized_to(&shared));
            }
        }
        for (org, values) in series {
            fig.push_series(Series::new(org.label(), values));
        }
        fig.push_average_column();
        fig
    }

    // ------------------------------------------------------ Figures 12 & 13

    /// Figure 12a: LOCO's L2 hit latency increase (over private) under
    /// SMART, conventional and high-radix NoCs.
    pub fn fig12_l2_latency(&mut self, benchmarks: &[Benchmark]) -> Figure {
        let mut fig = Figure::new(
            format!("fig12a-{}", self.params.label()),
            "LOCO L2 hit latency under alternative NoCs",
            "cycles over Private Cache",
        );
        fig.x_labels = benchmarks.iter().map(|b| b.name().to_string()).collect();
        for router in [RouterKind::Smart, RouterKind::Conventional, RouterKind::HighRadix] {
            let mut v = Vec::new();
            for &b in benchmarks {
                let private = self.run_default(b, OrganizationKind::Private);
                let r = self.run(b, OrganizationKind::LocoCcVmsIvr, router, self.params.cluster, false);
                v.push((r.avg_l2_hit_latency - private.avg_l2_hit_latency).max(0.0));
            }
            fig.push_series(Series::new(format!("LOCO + {}", router.label()), v));
        }
        fig.push_average_column();
        fig
    }

    /// Figure 12b: LOCO's on-chip data-search delay under the three NoCs.
    pub fn fig12_search_delay(&mut self, benchmarks: &[Benchmark]) -> Figure {
        let mut fig = Figure::new(
            format!("fig12b-{}", self.params.label()),
            "LOCO global on-chip data search delay under alternative NoCs",
            "cycles",
        );
        fig.x_labels = benchmarks.iter().map(|b| b.name().to_string()).collect();
        for router in [RouterKind::Smart, RouterKind::Conventional, RouterKind::HighRadix] {
            let mut v = Vec::new();
            for &b in benchmarks {
                let r = self.run(b, OrganizationKind::LocoCcVmsIvr, router, self.params.cluster, false);
                v.push(r.avg_search_delay);
            }
            fig.push_series(Series::new(format!("LOCO + {}", router.label()), v));
        }
        fig.push_average_column();
        fig
    }

    /// Figure 13: LOCO run time under the three NoCs, normalized to the
    /// shared cache running atop the SMART NoC.
    pub fn fig13_noc_runtime(&mut self, benchmarks: &[Benchmark]) -> Figure {
        let mut fig = Figure::new(
            format!("fig13-{}", self.params.label()),
            "LOCO runtime under alternative NoCs",
            "runtime normalized to Shared Cache on SMART NoC",
        );
        fig.x_labels = benchmarks.iter().map(|b| b.name().to_string()).collect();
        for router in [RouterKind::Smart, RouterKind::Conventional, RouterKind::HighRadix] {
            let mut v = Vec::new();
            for &b in benchmarks {
                let shared = self.run_default(b, OrganizationKind::Shared);
                let r = self.run(b, OrganizationKind::LocoCcVmsIvr, router, self.params.cluster, false);
                v.push(r.runtime_normalized_to(&shared));
            }
            fig.push_series(Series::new(format!("LOCO + {}", router.label()), v));
        }
        fig.push_average_column();
        fig
    }

    // ----------------------------------------------------------- Figure 14

    /// Figure 14: LOCO with different cluster shapes. Returns the four
    /// sub-figures (hit latency, MPKI, search delay, normalized runtime).
    pub fn fig14_cluster_size(&mut self, benchmarks: &[Benchmark], shapes: &[ClusterShape]) -> Vec<Figure> {
        let mut latency = Figure::new(
            "fig14a",
            "L2 hit latency increase by cluster size",
            "cycles over Private Cache",
        );
        let mut mpki = Figure::new("fig14b", "L2 misses per 1000 instructions by cluster size", "MPKI");
        let mut search = Figure::new("fig14c", "Global search delay by cluster size", "cycles");
        let mut runtime = Figure::new(
            "fig14d",
            "Normalized runtime by cluster size",
            "runtime normalized to Shared Cache",
        );
        let x: Vec<String> = benchmarks.iter().map(|b| b.name().to_string()).collect();
        latency.x_labels = x.clone();
        mpki.x_labels = x.clone();
        search.x_labels = x.clone();
        runtime.x_labels = x;
        for &shape in shapes {
            let label = format!("Cluster Size:{}x{}", shape.w, shape.h);
            let (mut lv, mut mv, mut sv, mut rv) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            for &b in benchmarks {
                let private = self.run_default(b, OrganizationKind::Private);
                let shared = self.run_default(b, OrganizationKind::Shared);
                let r = self.run(b, OrganizationKind::LocoCcVmsIvr, RouterKind::Smart, shape, false);
                lv.push((r.avg_l2_hit_latency - private.avg_l2_hit_latency).max(0.0));
                mv.push(r.l2_mpki);
                sv.push(r.avg_search_delay);
                rv.push(r.runtime_normalized_to(&shared));
            }
            latency.push_series(Series::new(label.clone(), lv));
            mpki.push_series(Series::new(label.clone(), mv));
            search.push_series(Series::new(label.clone(), sv));
            runtime.push_series(Series::new(label, rv));
        }
        for f in [&mut latency, &mut mpki, &mut search, &mut runtime] {
            f.push_average_column();
        }
        vec![latency, mpki, search, runtime]
    }

    // ----------------------------------------------------------- Figure 15

    /// Figure 15: multi-program workloads W0–W9 (Table 2). Returns
    /// (normalized off-chip accesses, normalized runtime); series are the
    /// shared cache, the clustered cache baseline (LOCO CC) and full LOCO.
    pub fn fig15_multiprogram(&mut self, workloads: &[usize]) -> (Figure, Figure) {
        let mut offchip = Figure::new(
            "fig15a",
            "Multi-program workloads: normalized off-chip memory accesses",
            "normalized to Shared Cache",
        );
        let mut runtime = Figure::new(
            "fig15b",
            "Multi-program workloads: normalized runtime",
            "normalized to Shared Cache",
        );
        let labels: Vec<String> = workloads.iter().map(|w| format!("W{w}")).collect();
        offchip.x_labels = labels.clone();
        runtime.x_labels = labels;
        let orgs = [
            OrganizationKind::Shared,
            OrganizationKind::LocoCc,
            OrganizationKind::LocoCcVmsIvr,
        ];
        let mut off_series: Vec<Vec<f64>> = vec![Vec::new(); orgs.len()];
        let mut run_series: Vec<Vec<f64>> = vec![Vec::new(); orgs.len()];
        for &w in workloads {
            let workload = MultiProgramWorkload::table2_entry(w);
            let results: Vec<SimResults> = orgs
                .iter()
                .map(|&org| self.run_multiprogram(&workload, org))
                .collect();
            let shared = &results[0];
            for (i, r) in results.iter().enumerate() {
                off_series[i].push(r.offchip_normalized_to(shared));
                run_series[i].push(r.runtime_normalized_to(shared));
            }
        }
        for (i, org) in orgs.iter().enumerate() {
            let label = if *org == OrganizationKind::LocoCc {
                "Clustered Cache".to_string()
            } else {
                org.label().to_string()
            };
            offchip.push_series(Series::new(label.clone(), off_series[i].clone()));
            runtime.push_series(Series::new(label, run_series[i].clone()));
        }
        offchip.push_average_column();
        runtime.push_average_column();
        (offchip, runtime)
    }

    /// Runs one Table-2 workload under one organization. The cluster size
    /// follows the paper: it matches the per-task thread count (4x1, 8x1 or
    /// 4x4), scaled down proportionally for the `quick()` mesh.
    pub fn run_multiprogram(&mut self, workload: &MultiProgramWorkload, org: OrganizationKind) -> SimResults {
        let threads = workload.threads_per_task();
        let cluster = if self.params.num_cores() < 64 {
            self.params.cluster
        } else {
            match threads {
                4 => ClusterShape::new(4, 1),
                8 => ClusterShape::new(8, 1),
                _ => ClusterShape::new(4, 4),
            }
        };
        let scale = self.params.num_cores() as f64 / 64.0;
        let mem_ops = ((self.params.mem_ops_per_core as f64) * 1.0).max(1.0) as u64;
        let mut traces = workload.generate_traces_scaled(
            mem_ops,
            self.params.seed,
            self.params.working_set_scale.max(1),
        );
        let mut groups: Vec<usize> = Vec::new();
        for a in workload.assign_cores() {
            for _ in &a.cores {
                groups.push(a.task_id);
            }
        }
        // The quick() configuration has fewer cores than the 64-core
        // workload definition: truncate to fit.
        if self.params.num_cores() < traces.len() {
            traces.truncate(self.params.num_cores());
            groups.truncate(self.params.num_cores());
        }
        let _ = scale;
        let cfg = self.params.system(org, RouterKind::Smart, cluster, false);
        let mut sys = CmpSystem::with_groups(cfg, traces, groups);
        self.runs += 1;
        sys.run(self.params.max_cycles)
    }

    // ----------------------------------------------------------- Figure 16

    /// Figure 16a: full-system (synchronization-aware) MPKI, shared vs LOCO.
    pub fn fig16_mpki(&mut self, benchmarks: &[Benchmark]) -> Figure {
        let mut fig = Figure::new(
            "fig16a",
            "Full system simulation: L2 misses per 1000 instructions",
            "MPKI",
        );
        fig.x_labels = benchmarks.iter().map(|b| b.name().to_string()).collect();
        let (mut shared_v, mut loco_v) = (Vec::new(), Vec::new());
        for &b in benchmarks {
            shared_v.push(
                self.run(b, OrganizationKind::Shared, RouterKind::Smart, self.params.cluster, true)
                    .l2_mpki,
            );
            loco_v.push(
                self.run(b, OrganizationKind::LocoCcVmsIvr, RouterKind::Smart, self.params.cluster, true)
                    .l2_mpki,
            );
        }
        fig.push_series(Series::new("Shared", shared_v));
        fig.push_series(Series::new("LOCO", loco_v));
        fig.push_average_column();
        fig
    }

    /// Figure 16b: full-system normalized runtime of the LOCO variants
    /// against the shared cache.
    pub fn fig16_runtime(&mut self, benchmarks: &[Benchmark]) -> Figure {
        let mut fig = Figure::new(
            "fig16b",
            "Full system simulation: normalized runtime against Shared Cache",
            "runtime normalized to Shared Cache",
        );
        fig.x_labels = benchmarks.iter().map(|b| b.name().to_string()).collect();
        let orgs = [
            OrganizationKind::LocoCc,
            OrganizationKind::LocoCcVms,
            OrganizationKind::LocoCcVmsIvr,
        ];
        let mut series: Vec<Vec<f64>> = vec![Vec::new(); orgs.len()];
        for &b in benchmarks {
            let shared = self.run(b, OrganizationKind::Shared, RouterKind::Smart, self.params.cluster, true);
            for (i, &org) in orgs.iter().enumerate() {
                let r = self.run(b, org, RouterKind::Smart, self.params.cluster, true);
                series[i].push(r.runtime_normalized_to(&shared));
            }
        }
        for (i, org) in orgs.iter().enumerate() {
            fig.push_series(Series::new(org.label(), series[i].clone()));
        }
        fig.push_average_column();
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_benchmarks() -> Vec<Benchmark> {
        vec![Benchmark::Lu, Benchmark::Blackscholes]
    }

    #[test]
    fn runner_memoizes_identical_configurations() {
        let mut r = Runner::new(ExperimentParams::quick());
        let a = r.run_default(Benchmark::Lu, OrganizationKind::Shared);
        let runs_after_first = r.simulations_run();
        let b = r.run_default(Benchmark::Lu, OrganizationKind::Shared);
        assert_eq!(r.simulations_run(), runs_after_first);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
    }

    #[test]
    fn fig06_has_one_series_with_average() {
        let mut r = Runner::new(ExperimentParams::quick());
        let fig = r.fig06_private_vs_shared(&quick_benchmarks());
        assert_eq!(fig.series.len(), 1);
        assert_eq!(fig.x_labels.len(), 3); // 2 benchmarks + AVG
        assert!(fig.average_of("Private Cache").unwrap() > 0.0);
    }

    #[test]
    fn fig11_normalizes_shared_to_one() {
        let mut r = Runner::new(ExperimentParams::quick());
        let fig = r.fig11_runtime(&quick_benchmarks());
        assert_eq!(fig.series.len(), 4);
        let shared_avg = fig.average_of("Shared Cache").unwrap();
        assert!((shared_avg - 1.0).abs() < 1e-9);
        for s in &fig.series {
            for v in &s.values {
                assert!(*v > 0.0 && v.is_finite());
            }
        }
    }

    #[test]
    fn fig09_search_delay_produces_positive_values() {
        let mut r = Runner::new(ExperimentParams::quick());
        let fig = r.fig09_search_delay(&[Benchmark::Barnes]);
        assert_eq!(fig.series.len(), 2);
        assert!(fig.average_of("LOCO CC+VMS").unwrap() > 0.0);
    }

    #[test]
    fn fig15_runs_a_truncated_workload_on_the_quick_mesh() {
        let mut r = Runner::new(ExperimentParams::quick());
        let (off, run) = r.fig15_multiprogram(&[0]);
        assert_eq!(off.series.len(), 3);
        assert_eq!(run.series.len(), 3);
        assert!(run.average_of("Shared Cache").unwrap() > 0.0);
    }
}
