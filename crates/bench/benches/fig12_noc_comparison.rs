//! Figure 12: LOCO's memory latency (L2 hit latency and global search
//! delay) under SMART, conventional and high-radix NoCs.

use loco_bench::timing::Criterion;
use loco_bench::{bench_group, bench_main};
use loco::{ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_noc_comparison");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            let benches = benchmarks_for(Scale::Quick);
            let lat = runner.fig12_l2_latency(&benches);
            let search = runner.fig12_search_delay(&benches);
            (lat, search)
        })
    });
    group.finish();
}

bench_group!(benches, bench);
bench_main!(benches);
