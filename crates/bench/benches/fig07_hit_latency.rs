//! Figure 7: increase of L2 hit latency over the private-cache baseline for
//! the shared cache and LOCO.

use loco_bench::timing::Criterion;
use loco_bench::{bench_group, bench_main};
use loco::{ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_hit_latency");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            let fig = runner.fig07_l2_hit_latency(&benchmarks_for(Scale::Quick));
            // The paper's headline: LOCO's latency increase is far below the
            // shared cache's.
            assert!(fig.average_of("LOCO").unwrap() <= fig.average_of("Shared Cache").unwrap());
            fig
        })
    });
    group.finish();
}

bench_group!(benches, bench);
bench_main!(benches);
