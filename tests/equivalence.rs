//! The event-driven scheduler's contract: `CmpSystem::run` (cycle skipping)
//! must produce results bit-identical to `CmpSystem::run_naive` (one `step`
//! per cycle) on every organization, every router micro-architecture, and
//! the synchronization-heavy full-system mode. A skipped cycle is only legal
//! if the naive step at that cycle would have been a no-op; this suite is
//! the oracle for that claim (see the `loco_sim::system` module docs for the
//! per-component invariants).

use loco::{
    Benchmark, CmpSystem, ClusterShape, EnergyParams, OrganizationKind, RouterKind, SimResults,
    SimulationBuilder, SystemConfig, TraceGenerator,
};

const ALL_ORGS: [OrganizationKind; 5] = [
    OrganizationKind::Private,
    OrganizationKind::Shared,
    OrganizationKind::LocoCc,
    OrganizationKind::LocoCcVms,
    OrganizationKind::LocoCcVmsIvr,
];

fn builder(org: OrganizationKind) -> SimulationBuilder {
    // A small mesh keeps the naive runs fast; 300 memory ops per core is
    // enough to exercise misses, broadcasts, IVR migrations and retries.
    SimulationBuilder::new()
        .mesh(4, 4)
        .cluster(2, 2)
        .organization(org)
        .benchmark(Benchmark::Barnes)
        .memory_ops_per_core(300)
        .seed(11)
}

/// Bit-exact comparison of the full counter set, not just the latency
/// results: the structured asserts pin the cache event counters (array
/// reads/writes, tag probes, directory lookups, IVR, DRAM), the network
/// delivery stats including the fabric event counters (buffer, crossbar,
/// link, SSR events), and the integer energy breakdown derived from them.
/// The Debug rendering then covers every remaining field (float averages,
/// runtime, completion flags).
fn assert_identical(label: &str, event: &SimResults, naive: &SimResults) {
    assert_eq!(
        event.cache, naive.cache,
        "{label}: cache event counters diverged"
    );
    assert_eq!(
        event.network, naive.network,
        "{label}: network stats / fabric event counters diverged"
    );
    let params = EnergyParams::default();
    assert_eq!(
        params.breakdown(event),
        params.breakdown(naive),
        "{label}: energy breakdown diverged"
    );
    assert_eq!(
        format!("{event:?}"),
        format!("{naive:?}"),
        "{label}: event-driven results diverged from naive stepping"
    );
}

#[test]
fn every_organization_is_equivalent_under_cycle_skipping() {
    for org in ALL_ORGS {
        let b = builder(org);
        let event = b.build().run(8_000_000);
        let naive = b.build().run_naive(8_000_000);
        assert!(event.completed, "{org:?} must complete");
        assert_identical(&format!("{org:?}"), &event, &naive);
    }
}

#[test]
fn every_router_kind_is_equivalent_under_cycle_skipping() {
    for router in [RouterKind::Smart, RouterKind::Conventional, RouterKind::HighRadix] {
        let b = builder(OrganizationKind::LocoCcVms).router(router);
        let event = b.build().run(8_000_000);
        let naive = b.build().run_naive(8_000_000);
        assert!(event.completed, "{router:?} must complete");
        assert_identical(&format!("{router:?}"), &event, &naive);
    }
}

#[test]
fn full_system_barrier_mode_is_equivalent_under_cycle_skipping() {
    // Barriers are the subtlest case: a waiting core's arrival registration
    // must happen on exactly the same cycle in both modes, and a core parked
    // at an announced barrier must be skippable without losing the release.
    let b = SimulationBuilder::new()
        .mesh(4, 4)
        .cluster(2, 2)
        .organization(OrganizationKind::LocoCcVms)
        .benchmark(Benchmark::Fft)
        .memory_ops_per_core(250)
        .full_system(true)
        .seed(23);
    let event = b.build().run(8_000_000);
    let naive = b.build().run_naive(8_000_000);
    assert!(event.completed, "barrier workload must not deadlock");
    assert_identical("full-system barriers", &event, &naive);
}

#[test]
fn multiprogram_barrier_groups_are_equivalent_under_cycle_skipping() {
    // Distinct barrier groups (multi-program consolidation) exercise the
    // per-group arrival bookkeeping.
    let mut cfg = SystemConfig::asplos_64(OrganizationKind::LocoCcVmsIvr);
    cfg.mesh_width = 4;
    cfg.mesh_height = 4;
    cfg.cluster = ClusterShape::new(2, 2);
    cfg.full_system = true;
    let spec = Benchmark::Lu.spec();
    let traces = TraceGenerator::new(5).with_barriers(true).generate(&spec, 16, 200);
    let groups: Vec<usize> = (0..16).map(|i| i / 8).collect();
    let event = CmpSystem::with_groups(cfg, traces.clone(), groups.clone()).run(8_000_000);
    let naive = CmpSystem::with_groups(cfg, traces, groups).run_naive(8_000_000);
    assert!(event.completed);
    assert_identical("multi-program groups", &event, &naive);
}

#[test]
fn cycle_skipping_actually_skips_dead_cycles() {
    // Guard against the scheduler silently degenerating into the naive loop:
    // on a memory-bound run the event-driven mode must fast-forward at least
    // some DRAM dead time.
    let b = builder(OrganizationKind::Shared);
    let mut event = b.build();
    event.run(8_000_000);
    assert!(
        event.steps_executed() < event.cycle(),
        "no cycles were skipped ({} steps over {} cycles)",
        event.steps_executed(),
        event.cycle()
    );
    let mut naive = b.build();
    naive.run_naive(8_000_000);
    assert_eq!(
        naive.steps_executed(),
        naive.cycle(),
        "naive stepping must step every cycle"
    );
}

#[test]
fn truncated_runs_stop_on_the_same_cycle() {
    // A cycle budget that expires mid-flight must leave both modes in the
    // same observable state (runtime clamped to the budget, partial stats
    // identical).
    let b = builder(OrganizationKind::LocoCcVmsIvr);
    let event = b.build().run(900);
    let naive = b.build().run_naive(900);
    assert!(!event.completed, "budget chosen to interrupt the run");
    assert_eq!(event.runtime_cycles, 900);
    assert_identical("truncated run", &event, &naive);
}
