//! Figure 8: L2 misses per thousand instructions, shared cache vs LOCO.

use loco_bench::timing::Criterion;
use loco_bench::{bench_group, bench_main};
use loco::{ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_mpki");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            runner.fig08_mpki(&benchmarks_for(Scale::Quick))
        })
    });
    group.finish();
}

bench_group!(benches, bench);
bench_main!(benches);
