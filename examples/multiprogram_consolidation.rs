//! Multi-program consolidation (the scenario behind Figure 15): several
//! independent tasks are packed onto one 64-core CMP, one cluster per task
//! instance; LOCO's inter-cluster victim replacement lets cache-hungry tasks
//! spill into underutilized clusters.
//!
//! ```text
//! cargo run --release -p loco --example multiprogram_consolidation
//! ```

use loco::{CmpSystem, MultiProgramWorkload, OrganizationKind, SystemConfig};
use loco_cache::ClusterShape;

fn run(workload: &MultiProgramWorkload, org: OrganizationKind) -> loco::SimResults {
    let threads = workload.threads_per_task();
    let cluster = match threads {
        4 => ClusterShape::new(4, 1),
        8 => ClusterShape::new(8, 1),
        _ => ClusterShape::new(4, 4),
    };
    let cfg = SystemConfig::asplos_64(org).with_cluster(cluster);
    let traces = workload.generate_traces(600, 42);
    let groups: Vec<usize> = workload
        .assign_cores()
        .iter()
        .flat_map(|a| a.cores.iter().map(move |_| a.task_id))
        .collect();
    CmpSystem::with_groups(cfg, traces, groups).run(50_000_000)
}

fn main() {
    println!("Multi-program consolidation on a 64-core CMP (Table 2 workloads)\n");
    println!(
        "{:<5} {:>22} {:>22} {:>22}",
        "", "Shared Cache", "Clustered (LOCO CC)", "LOCO CC+VMS+IVR"
    );
    println!(
        "{:<5} {:>11}{:>11} {:>11}{:>11} {:>11}{:>11}",
        "wl", "runtime", "off-chip", "runtime", "off-chip", "runtime", "off-chip"
    );
    for idx in [0usize, 5, 9] {
        let workload = MultiProgramWorkload::table2_entry(idx);
        let shared = run(&workload, OrganizationKind::Shared);
        let clustered = run(&workload, OrganizationKind::LocoCc);
        let loco = run(&workload, OrganizationKind::LocoCcVmsIvr);
        println!(
            "{:<5} {:>11}{:>11} {:>11}{:>11} {:>11}{:>11}",
            workload.name(),
            shared.runtime_cycles,
            shared.offchip_accesses,
            clustered.runtime_cycles,
            clustered.offchip_accesses,
            loco.runtime_cycles,
            loco.offchip_accesses
        );
    }
    println!("\nLOCO keeps each task's hits inside its own cluster while IVR");
    println!("spills victims into other clusters, cutting off-chip accesses");
    println!("compared to the plain clustered cache (Figure 15 of the paper).");
}
