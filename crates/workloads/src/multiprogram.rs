//! The multi-program consolidation workloads of Table 2.
//!
//! Each workload W0–W9 runs several independent task instances on the
//! 64-core CMP; every instance gets its own cluster and its own address
//! space (tasks do not share memory, so no second-level coherence is needed
//! between clusters — exactly the scenario of Section 4.2, "Multi-program
//! Workloads").

use crate::benchmarks::Benchmark;
use crate::trace::{CoreTrace, TraceGenerator};

/// One task of a multi-program workload: `instances` copies of `benchmark`,
/// each running with `threads` threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskSpec {
    /// The program.
    pub benchmark: Benchmark,
    /// Threads per instance.
    pub threads: usize,
    /// Number of instances.
    pub instances: usize,
}

/// The mapping of one task instance onto cores.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskAssignment {
    /// The program.
    pub benchmark: Benchmark,
    /// Global task-instance index (also used as the address-space id).
    pub task_id: usize,
    /// The cores (tile indices) running this instance, in thread order.
    pub cores: Vec<usize>,
}

/// A multi-program workload: a list of tasks filling the 64-core CMP.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiProgramWorkload {
    name: &'static str,
    tasks: Vec<TaskSpec>,
}

impl MultiProgramWorkload {
    /// The workloads W0–W9 of Table 2.
    pub fn table2() -> Vec<MultiProgramWorkload> {
        use Benchmark::*;
        let w = |name, list: &[(Benchmark, usize, usize)]| MultiProgramWorkload {
            name,
            tasks: list
                .iter()
                .map(|&(benchmark, threads, instances)| TaskSpec {
                    benchmark,
                    threads,
                    instances,
                })
                .collect(),
        };
        vec![
            w("W0", &[(Blackscholes, 4, 4), (Ferret, 4, 4), (Fmm, 4, 4), (Lu, 4, 4)]),
            w("W1", &[(Nlu, 4, 4), (Swaptions, 4, 4), (WaterNsq, 4, 4), (WaterSpatial, 4, 4)]),
            w("W2", &[(Blackscholes, 4, 4), (Ferret, 4, 4), (WaterNsq, 4, 4), (WaterSpatial, 4, 4)]),
            w("W3", &[(Fmm, 4, 4), (Lu, 4, 4), (Nlu, 4, 4), (Swaptions, 4, 4)]),
            w("W4", &[(Blackscholes, 4, 4), (Ferret, 4, 4), (Nlu, 4, 4), (Swaptions, 4, 4)]),
            w("W5", &[(Blackscholes, 8, 2), (Ferret, 8, 2), (Fmm, 8, 2), (Lu, 8, 2)]),
            w("W6", &[(Nlu, 8, 2), (Swaptions, 8, 2), (WaterNsq, 8, 2), (WaterSpatial, 8, 2)]),
            w("W7", &[(Blackscholes, 8, 2), (Ferret, 8, 2), (WaterNsq, 8, 2), (WaterSpatial, 8, 2)]),
            w("W8", &[(Blackscholes, 16, 1), (Ferret, 16, 1), (Fmm, 16, 1), (Lu, 16, 1)]),
            w("W9", &[(Nlu, 16, 1), (Swaptions, 16, 1), (WaterNsq, 16, 1), (WaterSpatial, 16, 1)]),
        ]
    }

    /// One workload of Table 2 by index (0–9).
    ///
    /// # Panics
    ///
    /// Panics if `i > 9`.
    pub fn table2_entry(i: usize) -> MultiProgramWorkload {
        Self::table2().into_iter().nth(i).expect("workload index 0..=9")
    }

    /// Workload name ("W0" .. "W9").
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The task list.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// Threads per task instance (uniform within one workload in Table 2).
    pub fn threads_per_task(&self) -> usize {
        self.tasks[0].threads
    }

    /// Total number of cores the workload occupies.
    pub fn total_cores(&self) -> usize {
        self.tasks
            .iter()
            .map(|t| t.threads * t.instances)
            .sum()
    }

    /// Assigns task instances to consecutive blocks of cores (each block is
    /// one cluster when the cluster size equals the thread count, as in the
    /// paper's evaluation).
    pub fn assign_cores(&self) -> Vec<TaskAssignment> {
        let mut out = Vec::new();
        let mut next_core = 0usize;
        let mut task_id = 0usize;
        for task in &self.tasks {
            for _ in 0..task.instances {
                let cores: Vec<usize> = (next_core..next_core + task.threads).collect();
                next_core += task.threads;
                out.push(TaskAssignment {
                    benchmark: task.benchmark,
                    task_id,
                    cores,
                });
                task_id += 1;
            }
        }
        out
    }

    /// Generates per-core traces for the whole workload on a `total_cores()`
    /// CMP. The returned vector is indexed by core id; cores outside any
    /// task (none, for Table 2) receive empty traces.
    pub fn generate_traces(&self, mem_ops_per_thread: u64, seed: u64) -> Vec<CoreTrace> {
        self.generate_traces_scaled(mem_ops_per_thread, seed, 1)
    }

    /// Like [`MultiProgramWorkload::generate_traces`], but with every task's
    /// working set scaled down by `ws_divisor`
    /// (see [`crate::BenchmarkSpec::scaled_down`]).
    pub fn generate_traces_scaled(
        &self,
        mem_ops_per_thread: u64,
        seed: u64,
        ws_divisor: u64,
    ) -> Vec<CoreTrace> {
        let mut per_core = vec![CoreTrace::default(); self.total_cores()];
        for assignment in self.assign_cores() {
            let spec = assignment.benchmark.spec().scaled_down(ws_divisor.max(1));
            let traces = TraceGenerator::new(seed)
                .with_task_offset(assignment.task_id as u64 + 1)
                .generate(&spec, assignment.cores.len(), mem_ops_per_thread);
            for (thread, core) in assignment.cores.iter().enumerate() {
                per_core[*core] = traces[thread].clone();
            }
        }
        per_core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceOp;
    use std::collections::HashSet;

    #[test]
    fn table2_has_ten_workloads_filling_64_cores() {
        let all = MultiProgramWorkload::table2();
        assert_eq!(all.len(), 10);
        for w in &all {
            assert_eq!(w.total_cores(), 64, "{} must fill the 64-core CMP", w.name());
        }
    }

    #[test]
    fn thread_counts_follow_table2() {
        assert_eq!(MultiProgramWorkload::table2_entry(0).threads_per_task(), 4);
        assert_eq!(MultiProgramWorkload::table2_entry(4).threads_per_task(), 4);
        assert_eq!(MultiProgramWorkload::table2_entry(5).threads_per_task(), 8);
        assert_eq!(MultiProgramWorkload::table2_entry(8).threads_per_task(), 16);
        assert_eq!(MultiProgramWorkload::table2_entry(9).threads_per_task(), 16);
    }

    #[test]
    fn core_assignment_is_a_partition() {
        for w in MultiProgramWorkload::table2() {
            let mut seen = HashSet::new();
            for a in w.assign_cores() {
                for c in &a.cores {
                    assert!(seen.insert(*c), "core {c} assigned twice in {}", w.name());
                }
            }
            assert_eq!(seen.len(), 64);
        }
    }

    #[test]
    fn w0_has_16_instances_of_4_threads() {
        let w = MultiProgramWorkload::table2_entry(0);
        let assignments = w.assign_cores();
        assert_eq!(assignments.len(), 16);
        assert!(assignments.iter().all(|a| a.cores.len() == 4));
    }

    #[test]
    fn different_tasks_never_share_addresses() {
        let w = MultiProgramWorkload::table2_entry(2);
        let traces = w.generate_traces(300, 11);
        let assignments = w.assign_cores();
        let lines_of_task = |task: &TaskAssignment| -> HashSet<u64> {
            task.cores
                .iter()
                .flat_map(|&c| traces[c].ops().iter())
                .filter_map(|o| match o {
                    TraceOp::Read(a) | TraceOp::Write(a) => Some(a / 32),
                    _ => None,
                })
                .collect()
        };
        let t0 = lines_of_task(&assignments[0]);
        let t5 = lines_of_task(&assignments[5]);
        assert!(!t0.is_empty() && !t5.is_empty());
        assert!(t0.is_disjoint(&t5));
    }

    #[test]
    #[should_panic(expected = "workload index")]
    fn out_of_range_workload_panics() {
        MultiProgramWorkload::table2_entry(10);
    }
}
