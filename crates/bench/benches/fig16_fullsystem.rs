//! Figure 16: full-system (synchronization-aware) simulation of LOCO.

use loco_bench::timing::Criterion;
use loco_bench::{bench_group, bench_main};
use loco::{ExperimentParams, Runner};
use loco_bench::{fullsystem_benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_fullsystem");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            let benches = fullsystem_benchmarks_for(Scale::Quick);
            let mpki = runner.fig16_mpki(&benches);
            let runtime = runner.fig16_runtime(&benches);
            (mpki, runtime)
        })
    });
    group.finish();
}

bench_group!(benches, bench);
bench_main!(benches);
