//! Figure 15: multi-program consolidation workloads of Table 2.

use loco_bench::timing::Criterion;
use loco_bench::{bench_group, bench_main};
use loco::{ExperimentParams, Runner};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_multiprogram");
    group.sample_size(10);
    group.bench_function("quick_scale_w0", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            runner.fig15_multiprogram(&[0])
        })
    });
    group.finish();
}

bench_group!(benches, bench);
bench_main!(benches);
