//! Figure 9: on-chip data-search delay with and without VMS broadcasts.

use criterion::{criterion_group, criterion_main, Criterion};
use loco::{ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_search_delay");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            runner.fig09_search_delay(&benchmarks_for(Scale::Quick))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
