//! Trace representation and the synthetic trace generator.

use crate::benchmarks::{BenchmarkSpec, SharingPattern};
use loco_noc::SplitMix64;
use std::collections::VecDeque;

/// Base of the per-thread private regions.
const PRIVATE_BASE: u64 = 0x0100_0000_0000;
/// Base of the per-group neighbour-shared regions.
const NEIGHBOR_BASE: u64 = 0x2000_0000_0000;
/// Base of the chip-wide shared region.
const GLOBAL_BASE: u64 = 0x3000_0000_0000;
/// Cache-line size assumed by the generator (Table 1).
const LINE_BYTES: u64 = 32;
/// Number of consecutive threads sharing one neighbour region.
const NEIGHBOR_GROUP: u64 = 4;
/// Fraction of shared accesses that still go chip-wide for
/// neighbour-dominated benchmarks (boundary exchange).
const NEIGHBOR_GLOBAL_LEAK: f64 = 0.10;
/// Line stride between consecutive threads' private regions and between
/// neighbour groups' shared regions. A prime well above any working-set size
/// keeps regions disjoint while avoiding the pathological power-of-two
/// aliasing (all threads landing in the same handful of L2 sets) that a real
/// heap layout would not exhibit.
const REGION_STRIDE_LINES: u64 = 999_983;

/// One replayed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceOp {
    /// A load from the given byte address.
    Read(u64),
    /// A store to the given byte address.
    Write(u64),
    /// `n` non-memory instructions (1 cycle each on the in-order core).
    Compute(u32),
    /// A global barrier with the given id; all threads of the task must
    /// arrive before any proceeds (used by the full-system replay mode).
    Barrier(u32),
}

impl TraceOp {
    /// Number of instructions this op represents.
    pub fn instructions(self) -> u64 {
        match self {
            TraceOp::Read(_) | TraceOp::Write(_) => 1,
            TraceOp::Compute(n) => u64::from(n),
            TraceOp::Barrier(_) => 1,
        }
    }
}

/// The instruction trace of one core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreTrace {
    ops: Vec<TraceOp>,
}

impl CoreTrace {
    /// Creates a trace from explicit ops (mostly for tests).
    pub fn from_ops(ops: Vec<TraceOp>) -> Self {
        CoreTrace { ops }
    }

    /// The ops in program order.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Number of memory operations.
    pub fn memory_ops(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Read(_) | TraceOp::Write(_)))
            .count() as u64
    }

    /// Total instruction count.
    pub fn instructions(&self) -> u64 {
        self.ops.iter().map(|o| o.instructions()).sum()
    }

    /// Number of barrier ops.
    pub fn barriers(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| matches!(o, TraceOp::Barrier(_)))
            .count() as u64
    }
}

/// Deterministic synthetic trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    seed: u64,
    /// Offset added to every generated address; used to give multi-program
    /// tasks disjoint address spaces.
    task_offset: u64,
    /// Emit `TraceOp::Barrier` markers (full-system replay mode).
    with_barriers: bool,
}

impl TraceGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TraceGenerator {
            seed,
            task_offset: 0,
            with_barriers: false,
        }
    }

    /// Gives every generated address a task-specific offset so that
    /// different tasks of a multi-program workload never share data.
    pub fn with_task_offset(mut self, task: u64) -> Self {
        // The shift clears the whole private/neighbour/global layout
        // (which tops out below 2^46), so no two tasks can ever overlap.
        self.task_offset = task << 48;
        self
    }

    /// Emits barrier markers at the benchmark's barrier interval (used by
    /// the full-system synchronization-aware replay).
    pub fn with_barriers(mut self, enabled: bool) -> Self {
        self.with_barriers = enabled;
        self
    }

    /// Generates `mem_ops_per_thread` memory operations (plus interleaved
    /// compute and optional barriers) for each of `threads` threads.
    pub fn generate(&self, spec: &BenchmarkSpec, threads: usize, mem_ops_per_thread: u64) -> Vec<CoreTrace> {
        (0..threads)
            .map(|t| self.generate_thread(spec, t, threads, mem_ops_per_thread))
            .collect()
    }

    fn generate_thread(
        &self,
        spec: &BenchmarkSpec,
        thread: usize,
        threads: usize,
        mem_ops: u64,
    ) -> CoreTrace {
        let mut rng = SplitMix64::new(
            self.seed ^ (thread as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ self.task_offset,
        );
        let mut ops = Vec::with_capacity((mem_ops as usize) * 2);
        let mut reuse_window: VecDeque<u64> = VecDeque::with_capacity(64);
        let mut barrier_id = 0u32;
        for i in 0..mem_ops {
            // Compute gap.
            let gap = rng.next_below(u64::from(spec.compute_per_mem) * 2 + 1) as u32;
            if gap > 0 {
                ops.push(TraceOp::Compute(gap));
            }
            // Pick the address.
            let addr = if !reuse_window.is_empty() && rng.gen_bool(spec.reuse) {
                let idx = rng.index(reuse_window.len());
                reuse_window[idx]
            } else {
                let a = self.fresh_address(spec, thread, threads, &mut rng);
                if reuse_window.len() == 64 {
                    reuse_window.pop_front();
                }
                reuse_window.push_back(a);
                a
            };
            let is_write = rng.gen_bool(spec.write_fraction);
            ops.push(if is_write {
                TraceOp::Write(addr)
            } else {
                TraceOp::Read(addr)
            });
            // Barriers.
            if self.with_barriers && (i + 1) % spec.barrier_interval == 0 {
                barrier_id += 1;
                ops.push(TraceOp::Barrier(barrier_id));
            }
        }
        CoreTrace { ops }
    }

    fn fresh_address(
        &self,
        spec: &BenchmarkSpec,
        thread: usize,
        threads: usize,
        rng: &mut SplitMix64,
    ) -> u64 {
        let shared = rng.gen_bool(spec.shared_fraction);
        let line = if shared {
            let go_global = match spec.pattern {
                SharingPattern::Global => true,
                SharingPattern::Neighbor => rng.gen_bool(NEIGHBOR_GLOBAL_LEAK),
            };
            if go_global {
                GLOBAL_BASE / LINE_BYTES + rng.next_below(spec.shared_lines)
            } else {
                let group = (thread as u64) / NEIGHBOR_GROUP;
                let groups = (threads as u64).div_ceil(NEIGHBOR_GROUP).max(1);
                let _ = groups;
                NEIGHBOR_BASE / LINE_BYTES
                    + group * REGION_STRIDE_LINES
                    + rng.next_below(spec.shared_lines)
            }
        } else {
            PRIVATE_BASE / LINE_BYTES
                + (thread as u64) * REGION_STRIDE_LINES
                + rng.next_below(spec.private_lines)
        };
        (line * LINE_BYTES) + self.task_offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let spec = Benchmark::Lu.spec();
        let a = TraceGenerator::new(7).generate(&spec, 4, 500);
        let b = TraceGenerator::new(7).generate(&spec, 4, 500);
        assert_eq!(a, b);
        let c = TraceGenerator::new(8).generate(&spec, 4, 500);
        assert_ne!(a, c);
    }

    #[test]
    fn memory_op_count_matches_request() {
        let spec = Benchmark::Barnes.spec();
        let traces = TraceGenerator::new(1).generate(&spec, 8, 1_000);
        for t in &traces {
            assert_eq!(t.memory_ops(), 1_000);
            assert!(t.instructions() >= 1_000);
        }
    }

    #[test]
    fn private_addresses_do_not_collide_across_threads() {
        let spec = Benchmark::Swaptions.spec(); // almost all private
        let traces = TraceGenerator::new(3).generate(&spec, 8, 2_000);
        let mut per_thread: Vec<HashSet<u64>> = Vec::new();
        for t in &traces {
            let lines: HashSet<u64> = t
                .ops()
                .iter()
                .filter_map(|o| match o {
                    TraceOp::Read(a) | TraceOp::Write(a) if *a >= PRIVATE_BASE && *a < NEIGHBOR_BASE => {
                        Some(a / 32)
                    }
                    _ => None,
                })
                .collect();
            per_thread.push(lines);
        }
        for i in 0..per_thread.len() {
            for j in (i + 1)..per_thread.len() {
                assert!(per_thread[i].is_disjoint(&per_thread[j]));
            }
        }
    }

    #[test]
    fn global_benchmarks_share_lines_across_distant_threads() {
        let spec = Benchmark::Fft.spec();
        let traces = TraceGenerator::new(5).generate(&spec, 16, 4_000);
        let shared_of = |t: &CoreTrace| -> HashSet<u64> {
            t.ops()
                .iter()
                .filter_map(|o| match o {
                    TraceOp::Read(a) | TraceOp::Write(a) if *a >= GLOBAL_BASE => Some(a / 32),
                    _ => None,
                })
                .collect()
        };
        let a = shared_of(&traces[0]);
        let b = shared_of(&traces[15]);
        assert!(
            a.intersection(&b).count() > 0,
            "distant threads of a Global benchmark must share data"
        );
    }

    #[test]
    fn neighbor_benchmarks_mostly_share_within_groups() {
        let spec = Benchmark::Lu.spec();
        let traces = TraceGenerator::new(5).generate(&spec, 16, 4_000);
        let neighbor_of = |t: &CoreTrace| -> HashSet<u64> {
            t.ops()
                .iter()
                .filter_map(|o| match o {
                    TraceOp::Read(a) | TraceOp::Write(a)
                        if *a >= NEIGHBOR_BASE && *a < GLOBAL_BASE =>
                    {
                        Some(a / 32)
                    }
                    _ => None,
                })
                .collect()
        };
        // Threads 0 and 1 are in the same group; threads 0 and 8 are not.
        let t0 = neighbor_of(&traces[0]);
        let t1 = neighbor_of(&traces[1]);
        let t8 = neighbor_of(&traces[8]);
        assert!(t0.intersection(&t1).count() > 0);
        assert_eq!(t0.intersection(&t8).count(), 0);
    }

    #[test]
    fn barriers_only_in_fullsystem_mode() {
        let spec = Benchmark::Fft.spec(); // barrier_interval 2500
        let plain = TraceGenerator::new(1).generate(&spec, 2, 5_000);
        assert_eq!(plain[0].barriers(), 0);
        let fs = TraceGenerator::new(1)
            .with_barriers(true)
            .generate(&spec, 2, 5_000);
        assert_eq!(fs[0].barriers(), 2);
    }

    #[test]
    fn adjacent_task_offsets_never_alias_shared_regions() {
        // Regression test: the global region of task N must not collide with
        // the neighbour region of task N+1 (or any other region).
        let spec = Benchmark::Barnes.spec(); // global + neighbour traffic
        let lines = |task: u64| -> HashSet<u64> {
            TraceGenerator::new(9)
                .with_task_offset(task)
                .generate(&spec, 4, 2_000)
                .iter()
                .flat_map(|t| t.ops().iter())
                .filter_map(|o| match o {
                    TraceOp::Read(a) | TraceOp::Write(a) => Some(*a / 32),
                    _ => None,
                })
                .collect()
        };
        let t0 = lines(0);
        let t1 = lines(1);
        let t2 = lines(2);
        assert!(t0.is_disjoint(&t1));
        assert!(t1.is_disjoint(&t2));
        assert!(t0.is_disjoint(&t2));
    }

    #[test]
    fn task_offsets_separate_address_spaces() {
        let spec = Benchmark::Lu.spec();
        let t0 = TraceGenerator::new(1).with_task_offset(0).generate(&spec, 2, 500);
        let t1 = TraceGenerator::new(1).with_task_offset(1).generate(&spec, 2, 500);
        let lines = |t: &CoreTrace| -> HashSet<u64> {
            t.ops()
                .iter()
                .filter_map(|o| match o {
                    TraceOp::Read(a) | TraceOp::Write(a) => Some(a / 32),
                    _ => None,
                })
                .collect()
        };
        assert!(lines(&t0[0]).is_disjoint(&lines(&t1[0])));
        assert!(lines(&t0[1]).is_disjoint(&lines(&t1[1])));
    }

    #[test]
    fn reuse_produces_repeated_lines() {
        let spec = Benchmark::Blackscholes.spec(); // high reuse
        let traces = TraceGenerator::new(2).generate(&spec, 1, 2_000);
        let mut lines = Vec::new();
        for o in traces[0].ops() {
            if let TraceOp::Read(a) | TraceOp::Write(a) = o {
                lines.push(a / 32);
            }
        }
        let unique: HashSet<u64> = lines.iter().copied().collect();
        assert!(
            unique.len() < lines.len() / 2,
            "expected substantial temporal reuse ({} unique of {})",
            unique.len(),
            lines.len()
        );
    }
}
