//! Network configuration: router kind, mesh dimensions and the timing /
//! buffering parameters from Table 1 of the paper.

use crate::topology::Mesh;

/// Which router micro-architecture the network uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RouterKind {
    /// State-of-the-art conventional router: 1 cycle in the router plus
    /// 1 cycle on the link, i.e. 2 cycles per hop in the best case.
    Conventional,
    /// SMART router: SSR setup followed by a single-cycle multi-hop traversal
    /// of up to `hpc_max` hops (2 cycles per SMART-hop in the best case).
    Smart,
    /// High-radix / Flattened-Butterfly-like router: dedicated express links
    /// to every router within `hpc_max` hops per dimension, but a 4-stage
    /// router pipeline at every stop and no bypassing.
    HighRadix,
}

impl RouterKind {
    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            RouterKind::Conventional => "Conventional NoC",
            RouterKind::Smart => "SMART NoC",
            RouterKind::HighRadix => "High-Radix Routers",
        }
    }
}

/// Full configuration of a [`crate::Network`].
///
/// The defaults (via the `smart_mesh` / `conventional_mesh` / `highradix_mesh`
/// constructors) correspond to Table 1 of the paper: 5 virtual networks,
/// 4 VCs per VN, 16-byte links, `HPCmax` = 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NocConfig {
    /// Mesh dimensions.
    pub mesh: Mesh,
    /// Router micro-architecture.
    pub router: RouterKind,
    /// Maximum hops per cycle for SMART / express-link reach for high-radix.
    pub hpc_max: u16,
    /// Number of virtual networks (message classes). Table 1: 5.
    pub virtual_networks: u8,
    /// Virtual channels per virtual network. Table 1: 4.
    pub vcs_per_vn: u8,
    /// Buffer depth, in packets, of each VC.
    pub vc_depth: u8,
    /// Link width in bytes. Table 1: 16.
    pub link_bytes: u32,
    /// Router pipeline depth in cycles for packets that stop at the router
    /// (1 for conventional/SMART, 4 for high-radix).
    pub router_pipeline: u8,
    /// Number of packets a NIC can inject per cycle.
    pub injection_rate: u8,
}

impl NocConfig {
    /// SMART mesh with the paper's Table-1 parameters.
    pub fn smart_mesh(width: u16, height: u16, hpc_max: u16) -> Self {
        NocConfig {
            mesh: Mesh::new(width, height),
            router: RouterKind::Smart,
            hpc_max,
            virtual_networks: 5,
            vcs_per_vn: 4,
            vc_depth: 4,
            link_bytes: 16,
            router_pipeline: 1,
            injection_rate: 1,
        }
    }

    /// Conventional mesh (2 cycles per hop) with Table-1 parameters.
    pub fn conventional_mesh(width: u16, height: u16) -> Self {
        NocConfig {
            router: RouterKind::Conventional,
            ..Self::smart_mesh(width, height, 1)
        }
    }

    /// High-radix (Flattened-Butterfly-like) mesh: express links spanning up
    /// to `hpc_max` hops, 4-stage router pipeline.
    pub fn highradix_mesh(width: u16, height: u16, hpc_max: u16) -> Self {
        NocConfig {
            router: RouterKind::HighRadix,
            router_pipeline: 4,
            ..Self::smart_mesh(width, height, hpc_max)
        }
    }

    /// Number of flits a message of `bytes` bytes occupies on this network's
    /// links (at least one).
    pub fn flits_for(&self, bytes: u32) -> u32 {
        bytes.div_ceil(self.link_bytes).max(1)
    }

    /// Total buffer capacity (in packets) of one input port for one virtual
    /// network.
    pub fn vn_buffer_capacity(&self) -> usize {
        self.vcs_per_vn as usize * self.vc_depth as usize
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.hpc_max == 0 {
            return Err("hpc_max must be at least 1".into());
        }
        if self.virtual_networks == 0 {
            return Err("at least one virtual network is required".into());
        }
        if self.vcs_per_vn == 0 || self.vc_depth == 0 {
            return Err("virtual channel count and depth must be non-zero".into());
        }
        if self.link_bytes == 0 {
            return Err("link width must be non-zero".into());
        }
        if self.router_pipeline == 0 {
            return Err("router pipeline must be at least one stage".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = NocConfig::smart_mesh(8, 8, 4);
        assert_eq!(c.virtual_networks, 5);
        assert_eq!(c.vcs_per_vn, 4);
        assert_eq!(c.link_bytes, 16);
        assert_eq!(c.hpc_max, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn flit_sizing() {
        let c = NocConfig::smart_mesh(4, 4, 4);
        assert_eq!(c.flits_for(8), 1); // control message
        assert_eq!(c.flits_for(16), 1);
        assert_eq!(c.flits_for(40), 3); // 32B line + 8B header
        assert_eq!(c.flits_for(0), 1);
    }

    #[test]
    fn highradix_has_deep_pipeline() {
        let c = NocConfig::highradix_mesh(8, 8, 4);
        assert_eq!(c.router_pipeline, 4);
        assert_eq!(c.router, RouterKind::HighRadix);
    }

    #[test]
    fn validation_rejects_zero_hpc() {
        let mut c = NocConfig::smart_mesh(4, 4, 4);
        c.hpc_max = 0;
        assert!(c.validate().is_err());
    }
}
