//! Randomized property tests of the NoC substrate, driven by a deterministic
//! seeded PRNG (the offline build has no `proptest`): zero-load latencies of
//! the cycle-driven fabrics match the analytical model, routing always
//! terminates, and multicast trees cover every member exactly once.

use loco_noc::analytical::zero_load_latency;
use loco_noc::{
    Coord, Mesh, NetMessage, Network, NocConfig, NodeId, RouterKind, SplitMix64, VirtualMesh,
    VirtualNetwork,
};

fn deliver_one(cfg: NocConfig, src: NodeId, dest: NodeId) -> (u64, u32) {
    let mut net: Network<()> = Network::new(cfg);
    net.inject(NetMessage::unicast(src, dest, VirtualNetwork::Request, 8, ()))
        .expect("inject into empty network");
    for _ in 0..20_000 {
        net.tick();
        if let Some(d) = net.eject(dest).pop() {
            return (d.latency, d.stops);
        }
    }
    panic!("message from {src} to {dest} never arrived");
}

/// An uncontended packet's latency on each fabric equals the analytical
/// zero-load latency plus a small constant injection overhead.
#[test]
fn zero_load_latency_matches_analytical_model() {
    let mut rng = SplitMix64::new(0x50c1);
    for case in 0..64 {
        let width = 2 + rng.next_below(8) as u16;
        let height = 2 + rng.next_below(8) as u16;
        let mesh = Mesh::new(width, height);
        let src = NodeId(rng.next_below(mesh.len() as u64) as u16);
        let dest = NodeId(rng.next_below(mesh.len() as u64) as u16);
        let kind = match rng.next_below(3) {
            0 => RouterKind::Smart,
            1 => RouterKind::Conventional,
            _ => RouterKind::HighRadix,
        };
        if src == dest {
            continue;
        }
        let cfg = match kind {
            RouterKind::Smart => NocConfig::smart_mesh(width, height, 4),
            RouterKind::Conventional => NocConfig::conventional_mesh(width, height),
            RouterKind::HighRadix => NocConfig::highradix_mesh(width, height, 4),
        };
        let expected = zero_load_latency(&cfg, src, dest);
        let (latency, _) = deliver_one(cfg, src, dest);
        // Allow the 1-cycle injection plus up to 2 cycles of model slack
        // (ejection / pipeline rounding).
        assert!(
            latency >= expected,
            "case {case} ({kind:?} {width}x{height} {src}->{dest}): latency {latency} < analytical {expected}"
        );
        assert!(
            latency <= expected + 3,
            "case {case} ({kind:?} {width}x{height} {src}->{dest}): latency {latency} >> analytical {expected}"
        );
    }
}

/// SMART never takes more stops than the XY hop count and never more cycles
/// than the conventional fabric.
#[test]
fn smart_dominates_conventional() {
    let mut rng = SplitMix64::new(0x50c2);
    for case in 0..64 {
        let width = 2 + rng.next_below(7) as u16;
        let height = 2 + rng.next_below(7) as u16;
        let mesh = Mesh::new(width, height);
        let src = NodeId(rng.next_below(mesh.len() as u64) as u16);
        let dest = NodeId(rng.next_below(mesh.len() as u64) as u16);
        if src == dest {
            continue;
        }
        let (smart_lat, smart_stops) =
            deliver_one(NocConfig::smart_mesh(width, height, 4), src, dest);
        let (conv_lat, conv_stops) =
            deliver_one(NocConfig::conventional_mesh(width, height), src, dest);
        assert!(smart_lat <= conv_lat, "case {case}: {smart_lat} > {conv_lat}");
        assert!(smart_stops <= conv_stops, "case {case}");
        assert_eq!(conv_stops as u16, mesh.hops(src, dest), "case {case}");
        assert_eq!(smart_stops as u16, mesh.smart_hops(src, dest, 4), "case {case}");
    }
}

/// Every virtual mesh (any legal cluster shape and home offset) is covered
/// exactly once by the XY-tree broadcast, from any root.
#[test]
fn vms_broadcast_covers_every_member_exactly_once() {
    let mut rng = SplitMix64::new(0x50c3);
    for case in 0..64 {
        let mesh = Mesh::new(8, 8);
        let cw = 1u16 << rng.next_below(3); // 1, 2, 4
        let ch = 1u16 << rng.next_below(3);
        let offset = Coord::new(
            (rng.next_below(8) as u16) % cw,
            (rng.next_below(8) as u16) % ch,
        );
        let vms = VirtualMesh::new(mesh, cw, ch, offset);
        if vms.len() <= 1 {
            continue;
        }
        let members = vms.members().to_vec();
        let root = members[rng.index(members.len())];

        let mut net: Network<u8> = Network::new(NocConfig::smart_mesh(8, 8, 4));
        let group = net.register_multicast_group(members.clone());
        net.inject(NetMessage::multicast(root, group, VirtualNetwork::Broadcast, 8, 0))
            .unwrap();
        let mut seen = std::collections::HashMap::new();
        for _ in 0..2_000 {
            net.tick();
            for &m in &members {
                for d in net.eject(m) {
                    *seen.entry(d.receiver).or_insert(0u32) += 1;
                }
            }
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(seen.len(), members.len() - 1, "case {case}: missing receivers");
        assert!(
            seen.values().all(|&c| c == 1),
            "case {case}: duplicate deliveries: {seen:?}"
        );
        assert!(!seen.contains_key(&root), "case {case}");
    }
}

/// Mesh routing helpers are self-consistent: following `xy_next_dir` step by
/// step reaches the destination in exactly `hops` steps.
#[test]
fn xy_routing_reaches_destination() {
    let mut rng = SplitMix64::new(0x50c4);
    for case in 0..64 {
        let width = 1 + rng.next_below(16) as u16;
        let height = 1 + rng.next_below(16) as u16;
        let mesh = Mesh::new(width, height);
        let a = NodeId(rng.next_below(mesh.len() as u64) as u16);
        let b = NodeId(rng.next_below(mesh.len() as u64) as u16);
        let mut cur = a;
        let mut steps = 0;
        while let Some(dir) = mesh.xy_next_dir(cur, b) {
            cur = mesh.neighbor(cur, dir).expect("route stays inside the mesh");
            steps += 1;
            assert!(steps <= mesh.hops(a, b), "case {case}: route overshoots");
        }
        assert_eq!(cur, b, "case {case}");
        assert_eq!(steps, mesh.hops(a, b), "case {case}");
    }
}
