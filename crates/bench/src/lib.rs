//! # loco-bench — benchmark harness for the LOCO reproduction
//!
//! Two entry points:
//!
//! * the `reproduce` binary plans, executes (in parallel, via
//!   `loco::campaign::Executor`) and assembles every table and figure of
//!   the paper's evaluation (`cargo run --release -p loco-bench --bin
//!   reproduce -- --help`),
//! * the benches under `benches/` (built on the in-tree [`timing`] harness)
//!   time a reduced version of each figure's simulation campaign so that
//!   `cargo bench` exercises every experiment end to end.
//!
//! The library part hosts the shared campaign-composition helpers for those
//! front-ends: which benchmarks, cluster shapes and Table-2 workloads each
//! scale sweeps, and the [`figure_specs`] builder that turns figure numbers
//! into `loco::campaign::FigureSpec`s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use loco::{Benchmark, ClusterShape, ExperimentParams, FigureSpec};

/// Which experiment scale a harness invocation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 16-core smoke scale (seconds).
    Quick,
    /// The paper's 64-core CMP.
    Cores64,
    /// The paper's 256-core CMP.
    Cores256,
}

impl Scale {
    /// Parses a scale name (`quick`, `paper64`, `paper256`; the bare `64` /
    /// `256` spellings of the original CLI are also accepted).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "64" | "paper64" => Some(Scale::Cores64),
            "256" | "paper256" => Some(Scale::Cores256),
            _ => None,
        }
    }

    /// The experiment parameters for this scale.
    pub fn params(self) -> ExperimentParams {
        match self {
            Scale::Quick => ExperimentParams::quick(),
            Scale::Cores64 => ExperimentParams::paper_64(),
            Scale::Cores256 => ExperimentParams::paper_256(),
        }
    }

    /// Scale label used in output paths.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Cores64 => "64",
            Scale::Cores256 => "256",
        }
    }
}

/// The benchmark list used by a scale (the full 8-benchmark suite for the
/// paper scales, a 3-benchmark subset for the quick scale).
pub fn benchmarks_for(scale: Scale) -> Vec<Benchmark> {
    match scale {
        Scale::Quick => vec![Benchmark::Lu, Benchmark::Blackscholes, Benchmark::Barnes],
        _ => Benchmark::TRACE_DRIVEN.to_vec(),
    }
}

/// The benchmark list for the full-system figure.
pub fn fullsystem_benchmarks_for(scale: Scale) -> Vec<Benchmark> {
    match scale {
        Scale::Quick => vec![Benchmark::Lu, Benchmark::Fft],
        _ => Benchmark::FULL_SYSTEM.to_vec(),
    }
}

/// The cluster shapes Figure 14 sweeps at this scale (the quick mesh is too
/// small for the paper's 4x4 clusters).
pub fn cluster_shapes_for(scale: Scale) -> Vec<ClusterShape> {
    match scale {
        Scale::Quick => vec![
            ClusterShape::new(2, 1),
            ClusterShape::new(4, 1),
            ClusterShape::new(2, 2),
        ],
        _ => vec![
            ClusterShape::new(4, 1),
            ClusterShape::new(8, 1),
            ClusterShape::new(4, 4),
        ],
    }
}

/// The Table-2 workload indices Figure 15 runs at this scale.
pub fn workloads_for(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![0, 5],
        _ => (0..10).collect(),
    }
}

/// The range of figure numbers the harness knows: 6–16 mirror the paper's
/// evaluation, 17 (energy breakdown) and 18 (energy-delay product) are the
/// energy figures this reproduction adds, and 19 is the stall-heavy stress
/// sweep (barrier-phased / DRAM-bound workloads under the three NoCs).
pub const FIGURE_NUMBERS: std::ops::RangeInclusive<u32> = 6..=19;

/// Builds the `FigureSpec` for one figure number (see [`FIGURE_NUMBERS`])
/// at this scale, optionally overriding the benchmark x-axis (`None` uses
/// the scale's default suite). Returns `None` for numbers outside the
/// range.
pub fn figure_spec(scale: Scale, number: u32, benchmarks: Option<&[Benchmark]>) -> Option<FigureSpec> {
    let suite = |def: fn(Scale) -> Vec<Benchmark>| -> Vec<Benchmark> {
        benchmarks.map_or_else(|| def(scale), <[Benchmark]>::to_vec)
    };
    let b = || suite(benchmarks_for);
    Some(match number {
        6 => FigureSpec::Fig06 { benchmarks: b() },
        7 => FigureSpec::Fig07 { benchmarks: b() },
        8 => FigureSpec::Fig08 { benchmarks: b() },
        9 => FigureSpec::Fig09 { benchmarks: b() },
        10 => FigureSpec::Fig10 { benchmarks: b() },
        11 => FigureSpec::Fig11 { benchmarks: b() },
        12 => FigureSpec::Fig12 { benchmarks: b() },
        13 => FigureSpec::Fig13 { benchmarks: b() },
        14 => FigureSpec::Fig14 {
            benchmarks: b(),
            shapes: cluster_shapes_for(scale),
        },
        15 => FigureSpec::Fig15 {
            workloads: workloads_for(scale),
        },
        16 => FigureSpec::Fig16 {
            benchmarks: suite(fullsystem_benchmarks_for),
        },
        17 => FigureSpec::Fig17Energy { benchmarks: b() },
        18 => FigureSpec::Fig18Edp {
            benchmarks: b(),
            shapes: cluster_shapes_for(scale),
        },
        19 => FigureSpec::Fig19Stall,
        _ => return None,
    })
}

/// The `FigureSpec`s for a list of figure numbers, in the given order.
/// Unknown numbers are skipped (the callers warn about them separately).
pub fn figure_specs(scale: Scale, numbers: &[u32], benchmarks: Option<&[Benchmark]>) -> Vec<FigureSpec> {
    numbers
        .iter()
        .filter_map(|&n| figure_spec(scale, n, benchmarks))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("64"), Some(Scale::Cores64));
        assert_eq!(Scale::parse("256"), Some(Scale::Cores256));
        assert_eq!(Scale::parse("paper64"), Some(Scale::Cores64));
        assert_eq!(Scale::parse("paper256"), Some(Scale::Cores256));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn figure_specs_cover_the_whole_evaluation() {
        let all: Vec<u32> = FIGURE_NUMBERS.collect();
        let specs = figure_specs(Scale::Quick, &all, None);
        assert_eq!(specs.len(), 14);
        for (spec, number) in specs.iter().zip(FIGURE_NUMBERS) {
            assert_eq!(spec.number(), number);
            assert!(!spec.title().is_empty());
        }
        assert!(figure_spec(Scale::Quick, 5, None).is_none());
        assert!(figure_spec(Scale::Quick, 20, None).is_none());
    }

    #[test]
    fn benchmark_override_reaches_the_spec() {
        let spec = figure_spec(Scale::Cores64, 6, Some(&[Benchmark::Lu])).unwrap();
        assert_eq!(
            spec,
            FigureSpec::Fig06 {
                benchmarks: vec![Benchmark::Lu]
            }
        );
    }

    #[test]
    fn scales_map_to_params() {
        assert_eq!(Scale::Quick.params().num_cores(), 16);
        assert_eq!(Scale::Cores64.params().num_cores(), 64);
        assert_eq!(Scale::Cores256.params().num_cores(), 256);
    }

    #[test]
    fn benchmark_lists_are_nonempty() {
        for s in [Scale::Quick, Scale::Cores64, Scale::Cores256] {
            assert!(!benchmarks_for(s).is_empty());
            assert!(!fullsystem_benchmarks_for(s).is_empty());
        }
        assert_eq!(benchmarks_for(Scale::Cores64).len(), 8);
        assert_eq!(fullsystem_benchmarks_for(Scale::Cores64).len(), 11);
    }
}
