//! Figure 7: increase of L2 hit latency over the private-cache baseline for
//! the shared cache and LOCO.

use criterion::{criterion_group, criterion_main, Criterion};
use loco::{ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_hit_latency");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            let fig = runner.fig07_l2_hit_latency(&benchmarks_for(Scale::Quick));
            // The paper's headline: LOCO's latency increase is far below the
            // shared cache's.
            assert!(fig.average_of("LOCO").unwrap() <= fig.average_of("Shared Cache").unwrap());
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
