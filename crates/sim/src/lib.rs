//! # loco-sim — trace-driven CMP simulator for the LOCO reproduction
//!
//! This crate plays the role GEMS plays in the paper: it instantiates a tiled
//! CMP (in-order cores, L1/L2 caches, directories, memory controllers) on
//! top of the cycle-driven `loco-noc` fabric, replays `loco-workloads`
//! traces against any of the five cache organizations, and reports the
//! statistics every figure of the evaluation is derived from.
//!
//! The top-level type is [`system::CmpSystem`]; [`config::SystemConfig`]
//! captures Table 1 of the paper.
//!
//! ```rust,no_run
//! use loco_sim::{CmpSystem, SystemConfig};
//! use loco_cache::OrganizationKind;
//! use loco_workloads::{Benchmark, TraceGenerator};
//!
//! let cfg = SystemConfig::asplos_64(OrganizationKind::LocoCcVmsIvr);
//! let traces = TraceGenerator::new(1).generate(&Benchmark::Lu.spec(), 64, 2_000);
//! let mut system = CmpSystem::new(cfg, traces);
//! let results = system.run(10_000_000);
//! println!("runtime = {} cycles", results.runtime_cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod results;
pub mod system;

pub use config::SystemConfig;
pub use core::{CoreModel, CoreStatus};
pub use results::SimResults;
pub use system::CmpSystem;
