//! Regenerates every table and figure of the LOCO ASPLOS 2014 evaluation —
//! as one *campaign*: the requested figures are planned (their scenarios
//! enumerated and deduplicated), executed in parallel across all cores, and
//! assembled from the completed result set.
//!
//! ```text
//! cargo run --release -p loco-bench --bin reproduce -- \
//!     [--params quick|paper64|paper256] [--figures fig06,fig11,...|all] \
//!     [--list-figures] [--threads N] [--json out.json] \
//!     [--markdown EXPERIMENTS.md] [--benchmarks lu,fft,...] [--mem-ops N]
//! ```
//!
//! * `--params` — the experiment scale (default `paper64`; the original
//!   `--scale quick|64|256` spelling is still accepted).
//! * `--figures` — comma-separated figure list, `figNN` or bare numbers
//!   (default: all of 6–19; 17 and 18 are the energy figures, 19 the
//!   stall-heavy stress sweep).
//! * `--list-figures` — print every known figure id and title, then exit.
//! * `--threads` — worker count for the execute phase (default: all cores).
//!   Values that parse but make no sense (above
//!   `loco::campaign::MAX_EXPLICIT_THREADS`) are rejected with an error
//!   instead of silently spawning thousands of idle workers. Figures are
//!   **byte-identical for any thread count**: planning fixes the scenario
//!   order, every scenario is an independent deterministic simulation, and
//!   results are merged in plan order.
//! * `--json PATH` — additionally writes one JSON document containing every
//!   assembled figure.
//! * `--markdown PATH` — additionally writes a markdown report (this is how
//!   `EXPERIMENTS.md` is generated: `--params quick --markdown
//!   EXPERIMENTS.md`).
//! * `--benchmarks` — overrides the benchmark x-axis of figures 6–16.
//!
//! Everything nondeterministic (wall-clock timings, thread count, progress)
//! goes to **stderr**; stdout and both output files depend only on the
//! campaign inputs.

use loco::campaign::{CampaignPlan, Executor};
use loco::json::Value;
use loco::{Benchmark, Figure, FigureSpec};
use loco_bench::{figure_spec, Scale, FIGURE_NUMBERS};
use std::time::Instant;

struct Options {
    scale: Scale,
    figures: Vec<u32>,
    benchmarks: Option<Vec<Benchmark>>,
    threads: usize,
    mem_ops: Option<u64>,
    json_path: Option<String>,
    markdown_path: Option<String>,
    list_figures: bool,
}

fn usage() -> ! {
    println!(
        "usage: reproduce [--params quick|paper64|paper256] [--figures fig06,fig11,...|all]\n\
         \x20                [--list-figures] [--threads N] [--json FILE.json] [--markdown FILE.md]\n\
         \x20                [--benchmarks lu,fft,...] [--mem-ops N]"
    );
    std::process::exit(0);
}

fn bad(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn parse_figure(token: &str) -> u32 {
    let digits = token.strip_prefix("fig").unwrap_or(token);
    match digits.parse::<u32>() {
        Ok(n) if FIGURE_NUMBERS.contains(&n) => n,
        _ => bad(&format!(
            "unknown figure '{token}' (expected fig{:02}..fig{:02}, bare numbers, or 'all' — \
             run with --list-figures to see every id and title)",
            FIGURE_NUMBERS.start(),
            FIGURE_NUMBERS.end()
        )),
    }
}

/// `--list-figures`: every known figure id + title at the requested scale.
fn list_figures(scale: Scale) -> ! {
    for n in FIGURE_NUMBERS {
        let spec = figure_spec(scale, n, None).expect("range is exhaustive");
        println!("{}  {}", spec.id(), spec.title());
    }
    std::process::exit(0);
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: Scale::Cores64,
        figures: FIGURE_NUMBERS.collect(),
        benchmarks: None,
        threads: 0, // 0 = all cores (Executor::new semantics)
        mem_ops: None,
        json_path: None,
        markdown_path: None,
        list_figures: false,
    };
    let mut it = std::env::args().skip(1);
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| -> String {
        it.next().unwrap_or_else(|| bad(&format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--params" | "--scale" => {
                let v = value(&arg, &mut it);
                opts.scale = Scale::parse(&v)
                    .unwrap_or_else(|| bad(&format!("unknown params '{v}', expected quick|paper64|paper256")));
            }
            "--list-figures" => opts.list_figures = true,
            "--figures" | "--fig" => {
                let v = value(&arg, &mut it);
                if v == "all" {
                    opts.figures = FIGURE_NUMBERS.collect();
                } else {
                    let mut figs: Vec<u32> = Vec::new();
                    for n in v.split(',').map(parse_figure) {
                        if !figs.contains(&n) {
                            figs.push(n);
                        }
                    }
                    opts.figures = figs;
                }
            }
            "--benchmarks" => {
                let v = value(&arg, &mut it);
                opts.benchmarks = Some(
                    v.split(',')
                        .map(|name| {
                            Benchmark::parse(name)
                                .unwrap_or_else(|| bad(&format!("unknown benchmark '{name}'")))
                        })
                        .collect(),
                );
            }
            "--threads" => {
                let v = value(&arg, &mut it);
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| bad("--threads takes a number (0 = all cores)"));
                // Validate here (not at executor construction) so the error
                // points at the flag before any planning work happens.
                if let Err(e) = Executor::try_new(n) {
                    bad(&format!("--threads {v}: {e}"));
                }
                opts.threads = n;
            }
            "--mem-ops" => {
                let v = value(&arg, &mut it);
                opts.mem_ops = Some(v.parse().unwrap_or_else(|_| bad("--mem-ops takes a number")));
            }
            "--json" => opts.json_path = Some(value(&arg, &mut it)),
            "--markdown" => opts.markdown_path = Some(value(&arg, &mut it)),
            "--help" | "-h" => usage(),
            other => bad(&format!("unknown argument '{other}' (try --help)")),
        }
    }
    opts
}

fn params_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Cores64 => "paper64",
        Scale::Cores256 => "paper256",
    }
}

fn json_document(scale: Scale, figures: &[Figure]) -> String {
    Value::Object(vec![
        ("schema".into(), Value::String("loco-campaign/1".into())),
        ("params".into(), Value::String(params_name(scale).into())),
        (
            "figures".into(),
            Value::Array(figures.iter().map(Figure::to_json_value).collect()),
        ),
    ])
    .to_pretty()
}

fn markdown_document(scale: Scale, n_scenarios: usize, figures: &[Figure]) -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — reproduced figures of the LOCO evaluation\n\n");
    out.push_str(
        "This file is generated mechanically by the campaign CLI; do not edit by\nhand. Regenerate with:\n\n",
    );
    out.push_str(&format!(
        "```sh\ncargo run --release -p loco-bench --bin reproduce -- \\\n    --params {} --figures all --markdown EXPERIMENTS.md\n```\n\n",
        params_name(scale)
    ));
    out.push_str(&format!(
        "Campaign: params `{}`, {} distinct scenarios (deduplicated across\nfigures), executed by `loco::campaign::Executor` and assembled into the\ntables below. Output is byte-identical for any `--threads` value.\n\n",
        params_name(scale),
        n_scenarios
    ));
    out.push_str(
        "Absolute magnitudes are not comparable to the paper (synthetic workload\nmodels, scaled working sets — see DESIGN.md §3); the *trends* of each\nfigure are the reproduction target and are asserted by the integration\ntests (`tests/integration_experiments.rs`, `tests/integration_system.rs`).\n\n",
    );
    for fig in figures {
        out.push_str(&format!("## {} — {}\n\n", fig.id, fig.title));
        out.push_str("```text\n");
        out.push_str(&fig.to_text_table());
        out.push_str("```\n\n");
    }
    out
}

fn main() {
    let opts = parse_args();
    if opts.list_figures {
        list_figures(opts.scale);
    }
    let mut params = opts.scale.params();
    if let Some(m) = opts.mem_ops {
        params = params.with_mem_ops(m);
    }

    // --- Plan: enumerate every requested figure, deduplicating scenarios.
    let specs: Vec<FigureSpec> = opts
        .figures
        .iter()
        .map(|&n| figure_spec(opts.scale, n, opts.benchmarks.as_deref()).expect("figure numbers validated"))
        .collect();
    let mut plan = CampaignPlan::new();
    for spec in &specs {
        plan.add_figure(spec, &params);
    }

    let executor = Executor::new(opts.threads);
    eprintln!(
        "LOCO campaign — params {} ({} cores, {} memory ops/core): {} figures, {} distinct scenarios, {} worker threads",
        params_name(opts.scale),
        params.num_cores(),
        params.mem_ops_per_core,
        specs.len(),
        plan.len(),
        executor.threads(),
    );

    // --- Execute: every scenario, in parallel, each in its own system.
    let start = Instant::now();
    let results = executor.execute(&params, &plan);
    eprintln!(
        "executed {} simulations in {:.1}s",
        results.len(),
        start.elapsed().as_secs_f64()
    );

    // --- Assemble: pure figure construction from the completed result set.
    let mut figures: Vec<Figure> = Vec::new();
    for spec in &specs {
        figures.extend(spec.assemble(&params, &results));
    }
    for fig in &figures {
        println!("{fig}");
    }
    if let Some(path) = &opts.json_path {
        std::fs::write(path, json_document(opts.scale, &figures) + "\n").expect("write --json file");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &opts.markdown_path {
        std::fs::write(path, markdown_document(opts.scale, plan.len(), &figures))
            .expect("write --markdown file");
        eprintln!("wrote {path}");
    }
}
