//! Per-benchmark models of the SPLASH-2 and PARSEC programs used in the
//! paper's evaluation.
//!
//! The parameters below are *behavioural models*, not measurements: they are
//! chosen so that the relative pressure each benchmark puts on cache
//! capacity, on sharing/invalidation traffic and on network distance matches
//! its published characterization (working-set study in the SPLASH-2 and
//! PARSEC papers, communication patterns in Barrow-Williams et al.,
//! IISWC 2009). The paper's own discussion (Section 4.3) notes, e.g., that
//! blackscholes/lu/radix communicate mostly between neighbouring cores while
//! barnes/fft communicate chip-wide — the `SharingPattern` field captures
//! exactly that distinction.


/// How a benchmark's shared data is communicated between threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SharingPattern {
    /// Shared data is mostly exchanged between neighbouring threads
    /// (blocked/stencil codes, pipelines).
    Neighbor,
    /// Shared data is exchanged chip-wide (tree codes, transposes,
    /// all-to-all phases).
    Global,
}

/// The benchmarks used in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(missing_docs)]
pub enum Benchmark {
    Barnes,
    Blackscholes,
    Canneal,
    Ferret,
    Fft,
    Fluidanimate,
    Fmm,
    Lu,
    Nlu,
    Radix,
    Swaptions,
    Vips,
    WaterNsq,
    WaterSpatial,
}

impl Benchmark {
    /// Every modelled benchmark, in declaration order.
    pub const ALL: [Benchmark; 14] = [
        Benchmark::Barnes,
        Benchmark::Blackscholes,
        Benchmark::Canneal,
        Benchmark::Ferret,
        Benchmark::Fft,
        Benchmark::Fluidanimate,
        Benchmark::Fmm,
        Benchmark::Lu,
        Benchmark::Nlu,
        Benchmark::Radix,
        Benchmark::Swaptions,
        Benchmark::Vips,
        Benchmark::WaterNsq,
        Benchmark::WaterSpatial,
    ];

    /// Parses a display name (as printed by [`Benchmark::name`]) back into
    /// a benchmark — e.g. for command-line `--benchmarks lu,fft` flags.
    pub fn parse(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().find(|b| b.name() == name).copied()
    }

    /// The eight benchmarks of the trace-driven figures (Figures 6–14).
    pub const TRACE_DRIVEN: [Benchmark; 8] = [
        Benchmark::Barnes,
        Benchmark::Blackscholes,
        Benchmark::Lu,
        Benchmark::Nlu,
        Benchmark::Radix,
        Benchmark::Swaptions,
        Benchmark::Vips,
        Benchmark::WaterSpatial,
    ];

    /// The benchmarks of the full-system figure (Figure 16): swaptions and
    /// vips are replaced by canneal, fft, fmm, fluidanimate and water_nsq,
    /// as in the paper.
    pub const FULL_SYSTEM: [Benchmark; 11] = [
        Benchmark::Barnes,
        Benchmark::Blackscholes,
        Benchmark::Canneal,
        Benchmark::Fft,
        Benchmark::Fluidanimate,
        Benchmark::Fmm,
        Benchmark::Lu,
        Benchmark::Nlu,
        Benchmark::Radix,
        Benchmark::WaterNsq,
        Benchmark::WaterSpatial,
    ];

    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Barnes => "barnes",
            Benchmark::Blackscholes => "blackscholes",
            Benchmark::Canneal => "canneal",
            Benchmark::Ferret => "ferret",
            Benchmark::Fft => "fft",
            Benchmark::Fluidanimate => "fluidanimate",
            Benchmark::Fmm => "fmm",
            Benchmark::Lu => "lu",
            Benchmark::Nlu => "nlu",
            Benchmark::Radix => "radix",
            Benchmark::Swaptions => "swaptions",
            Benchmark::Vips => "vips",
            Benchmark::WaterNsq => "water_nsq",
            Benchmark::WaterSpatial => "water_spatial",
        }
    }

    /// The behavioural model of this benchmark.
    pub fn spec(self) -> BenchmarkSpec {
        // Working sets are expressed in 32-byte cache lines per thread.
        // 2048 lines = 64 KB (one L2 slice); the paper notes it used
        // small-scale working sets for tractability, which we mirror.
        match self {
            Benchmark::Barnes => BenchmarkSpec::new(self)
                .private_lines(1200)
                .shared_lines(4096)
                .shared_fraction(0.45)
                .write_fraction(0.25)
                .pattern(SharingPattern::Global)
                .reuse(0.55)
                .compute_per_mem(3)
                .barrier_interval(4_000),
            Benchmark::Blackscholes => BenchmarkSpec::new(self)
                .private_lines(700)
                .shared_lines(256)
                .shared_fraction(0.05)
                .write_fraction(0.15)
                .pattern(SharingPattern::Neighbor)
                .reuse(0.75)
                .compute_per_mem(6)
                .barrier_interval(50_000),
            Benchmark::Canneal => BenchmarkSpec::new(self)
                .private_lines(3000)
                .shared_lines(16_384)
                .shared_fraction(0.55)
                .write_fraction(0.30)
                .pattern(SharingPattern::Global)
                .reuse(0.35)
                .compute_per_mem(2)
                .barrier_interval(20_000),
            Benchmark::Ferret => BenchmarkSpec::new(self)
                .private_lines(1500)
                .shared_lines(2048)
                .shared_fraction(0.30)
                .write_fraction(0.20)
                .pattern(SharingPattern::Neighbor)
                .reuse(0.60)
                .compute_per_mem(4)
                .barrier_interval(25_000),
            Benchmark::Fft => BenchmarkSpec::new(self)
                .private_lines(1800)
                .shared_lines(8192)
                .shared_fraction(0.50)
                .write_fraction(0.35)
                .pattern(SharingPattern::Global)
                .reuse(0.40)
                .compute_per_mem(3)
                .barrier_interval(2_500),
            Benchmark::Fluidanimate => BenchmarkSpec::new(self)
                .private_lines(1400)
                .shared_lines(3072)
                .shared_fraction(0.35)
                .write_fraction(0.30)
                .pattern(SharingPattern::Neighbor)
                .reuse(0.55)
                .compute_per_mem(3)
                .barrier_interval(3_000),
            Benchmark::Fmm => BenchmarkSpec::new(self)
                .private_lines(1600)
                .shared_lines(4096)
                .shared_fraction(0.40)
                .write_fraction(0.25)
                .pattern(SharingPattern::Global)
                .reuse(0.50)
                .compute_per_mem(4)
                .barrier_interval(5_000),
            Benchmark::Lu => BenchmarkSpec::new(self)
                .private_lines(900)
                .shared_lines(2048)
                .shared_fraction(0.30)
                .write_fraction(0.30)
                .pattern(SharingPattern::Neighbor)
                .reuse(0.65)
                .compute_per_mem(3)
                .barrier_interval(4_000),
            Benchmark::Nlu => BenchmarkSpec::new(self)
                .private_lines(1100)
                .shared_lines(3072)
                .shared_fraction(0.35)
                .write_fraction(0.30)
                .pattern(SharingPattern::Neighbor)
                .reuse(0.45)
                .compute_per_mem(3)
                .barrier_interval(4_000),
            Benchmark::Radix => BenchmarkSpec::new(self)
                .private_lines(2200)
                .shared_lines(8192)
                .shared_fraction(0.40)
                .write_fraction(0.45)
                .pattern(SharingPattern::Neighbor)
                .reuse(0.30)
                .compute_per_mem(2)
                .barrier_interval(6_000),
            Benchmark::Swaptions => BenchmarkSpec::new(self)
                .private_lines(2600)
                .shared_lines(256)
                .shared_fraction(0.04)
                .write_fraction(0.20)
                .pattern(SharingPattern::Neighbor)
                .reuse(0.60)
                .compute_per_mem(5)
                .barrier_interval(80_000),
            Benchmark::Vips => BenchmarkSpec::new(self)
                .private_lines(1700)
                .shared_lines(2048)
                .shared_fraction(0.25)
                .write_fraction(0.30)
                .pattern(SharingPattern::Neighbor)
                .reuse(0.55)
                .compute_per_mem(4)
                .barrier_interval(30_000),
            Benchmark::WaterNsq => BenchmarkSpec::new(self)
                .private_lines(800)
                .shared_lines(2048)
                .shared_fraction(0.35)
                .write_fraction(0.25)
                .pattern(SharingPattern::Global)
                .reuse(0.60)
                .compute_per_mem(4)
                .barrier_interval(5_000),
            Benchmark::WaterSpatial => BenchmarkSpec::new(self)
                .private_lines(800)
                .shared_lines(1536)
                .shared_fraction(0.25)
                .write_fraction(0.25)
                .pattern(SharingPattern::Neighbor)
                .reuse(0.65)
                .compute_per_mem(4)
                .barrier_interval(5_000),
        }
    }
}

/// Stall-heavy stress workloads (not part of the paper's benchmark suite):
/// shapes chosen so that the simulated system spends most of its time in
/// *globally quiet* phases — every core stalled, stragglers in the NoC —
/// punctuated by bursts. These are the phases where the paper's single-cycle
/// multi-hop NoC matters most, and the ones the event-driven scheduler's
/// fine-grained skip horizon exists for (they are its benchmark *and* its
/// regression trap: see `tests/equivalence.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StressKind {
    /// Tight global barrier phases: a short burst of chip-wide shared
    /// traffic, then every core parks at a barrier until the slowest
    /// straggler's miss drains. Run with barriers enabled (full-system
    /// replay mode).
    BarrierPhased,
    /// DRAM-bound: a working set far beyond the caches with almost no
    /// temporal reuse — nearly every access is an exposed off-chip stall,
    /// and the paired campaign scenario stretches the DRAM latency further.
    DramBound,
}

impl StressKind {
    /// Every stress kind, in declaration order.
    pub const ALL: [StressKind; 2] = [StressKind::BarrierPhased, StressKind::DramBound];

    /// Display name (figure x-labels, scenario labels).
    pub fn name(self) -> &'static str {
        match self {
            StressKind::BarrierPhased => "barrier_phased",
            StressKind::DramBound => "dram_bound",
        }
    }

    /// Whether this workload only makes sense with barrier modelling on.
    pub fn full_system(self) -> bool {
        matches!(self, StressKind::BarrierPhased)
    }

    /// The behavioural model of this stress workload. The underlying
    /// [`Benchmark`] identity only labels the spec; every parameter is
    /// overridden here.
    pub fn spec(self) -> BenchmarkSpec {
        match self {
            // A barrier every 8 memory ops over a small, hot, chip-wide
            // shared set: long park-and-wait phases with a handful of
            // coherence messages (the straggler's fill) still in flight.
            StressKind::BarrierPhased => BenchmarkSpec::new(Benchmark::Fft)
                .private_lines(64)
                .shared_lines(128)
                .shared_fraction(0.6)
                .write_fraction(0.4)
                .pattern(SharingPattern::Global)
                .reuse(0.2)
                .compute_per_mem(1)
                .barrier_interval(8),
            // A streaming scan through a working set that dwarfs the caches:
            // every few instructions the core stalls for a full DRAM round
            // trip, so run time is almost entirely exposed memory latency.
            StressKind::DramBound => BenchmarkSpec::new(Benchmark::Radix)
                .private_lines(65_536)
                .shared_lines(8_192)
                .shared_fraction(0.2)
                .write_fraction(0.3)
                .pattern(SharingPattern::Neighbor)
                .reuse(0.05)
                .compute_per_mem(1)
                .barrier_interval(100_000),
        }
    }
}

/// The behavioural model of one benchmark, consumed by
/// [`crate::trace::TraceGenerator`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BenchmarkSpec {
    /// Which benchmark this models.
    pub benchmark: Benchmark,
    /// Private (per-thread) working set, in cache lines.
    pub private_lines: u64,
    /// Shared working set, in cache lines (per sharing group for
    /// [`SharingPattern::Neighbor`], chip-wide for
    /// [`SharingPattern::Global`]).
    pub shared_lines: u64,
    /// Fraction of memory accesses that touch shared data.
    pub shared_fraction: f64,
    /// Fraction of memory accesses that are stores.
    pub write_fraction: f64,
    /// Communication pattern of the shared data.
    pub pattern: SharingPattern,
    /// Probability that an access re-uses a recently touched line
    /// (temporal locality).
    pub reuse: f64,
    /// Average number of non-memory instructions between memory accesses.
    pub compute_per_mem: u32,
    /// Memory operations between global barriers (used by the full-system
    /// synchronization-aware replay).
    pub barrier_interval: u64,
}

impl BenchmarkSpec {
    /// Starts a spec with neutral defaults for `benchmark`.
    pub fn new(benchmark: Benchmark) -> Self {
        BenchmarkSpec {
            benchmark,
            private_lines: 1024,
            shared_lines: 1024,
            shared_fraction: 0.25,
            write_fraction: 0.25,
            pattern: SharingPattern::Neighbor,
            reuse: 0.5,
            compute_per_mem: 3,
            barrier_interval: 10_000,
        }
    }

    /// Sets the private working-set size in lines.
    pub fn private_lines(mut self, v: u64) -> Self {
        self.private_lines = v;
        self
    }

    /// Sets the shared working-set size in lines.
    pub fn shared_lines(mut self, v: u64) -> Self {
        self.shared_lines = v;
        self
    }

    /// Sets the fraction of accesses touching shared data.
    pub fn shared_fraction(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v), "shared_fraction must be in [0,1]");
        self.shared_fraction = v;
        self
    }

    /// Sets the store fraction.
    pub fn write_fraction(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v), "write_fraction must be in [0,1]");
        self.write_fraction = v;
        self
    }

    /// Sets the sharing pattern.
    pub fn pattern(mut self, v: SharingPattern) -> Self {
        self.pattern = v;
        self
    }

    /// Sets the temporal-reuse probability.
    pub fn reuse(mut self, v: f64) -> Self {
        assert!((0.0..=1.0).contains(&v), "reuse must be in [0,1]");
        self.reuse = v;
        self
    }

    /// Sets the average compute instructions per memory access.
    pub fn compute_per_mem(mut self, v: u32) -> Self {
        self.compute_per_mem = v;
        self
    }

    /// Sets the barrier interval (memory ops between barriers).
    pub fn barrier_interval(mut self, v: u64) -> Self {
        assert!(v > 0, "barrier_interval must be non-zero");
        self.barrier_interval = v;
        self
    }

    /// Total per-thread footprint in lines (private + its view of shared).
    pub fn footprint_lines(&self) -> u64 {
        self.private_lines + self.shared_lines
    }

    /// Scales the working set down by `divisor` (at least 16 lines remain in
    /// each region).
    ///
    /// The experiment campaigns shrink both the caches and the working sets
    /// by the same factor so that short traces exercise the same
    /// capacity-pressure regime as the paper's billion-instruction runs on
    /// the Table-1 caches (see DESIGN.md §3 and EXPERIMENTS.md).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn scaled_down(mut self, divisor: u64) -> Self {
        assert!(divisor > 0, "divisor must be non-zero");
        self.private_lines = (self.private_lines / divisor).max(16);
        self.shared_lines = (self.shared_lines / divisor).max(16);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_has_a_consistent_spec() {
        for b in [
            Benchmark::Barnes,
            Benchmark::Blackscholes,
            Benchmark::Canneal,
            Benchmark::Ferret,
            Benchmark::Fft,
            Benchmark::Fluidanimate,
            Benchmark::Fmm,
            Benchmark::Lu,
            Benchmark::Nlu,
            Benchmark::Radix,
            Benchmark::Swaptions,
            Benchmark::Vips,
            Benchmark::WaterNsq,
            Benchmark::WaterSpatial,
        ] {
            let s = b.spec();
            assert_eq!(s.benchmark, b);
            assert!(s.private_lines > 0);
            assert!(s.shared_lines > 0);
            assert!((0.0..=1.0).contains(&s.shared_fraction));
            assert!((0.0..=1.0).contains(&s.write_fraction));
            assert!(s.compute_per_mem > 0);
            assert!(!b.name().is_empty());
        }
    }

    #[test]
    fn parse_inverts_name_for_every_benchmark() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::parse(b.name()), Some(b));
        }
        assert_eq!(Benchmark::parse("doom"), None);
    }

    #[test]
    fn trace_driven_suite_matches_figures() {
        assert_eq!(Benchmark::TRACE_DRIVEN.len(), 8);
        assert!(Benchmark::TRACE_DRIVEN.contains(&Benchmark::Swaptions));
        assert!(!Benchmark::FULL_SYSTEM.contains(&Benchmark::Swaptions));
        assert!(Benchmark::FULL_SYSTEM.contains(&Benchmark::Fft));
    }

    #[test]
    fn sharing_patterns_distinguish_barnes_from_blackscholes() {
        // Section 4.3: barnes/fft communicate chip-wide, blackscholes/lu
        // between neighbours.
        assert_eq!(Benchmark::Barnes.spec().pattern, SharingPattern::Global);
        assert_eq!(Benchmark::Fft.spec().pattern, SharingPattern::Global);
        assert_eq!(
            Benchmark::Blackscholes.spec().pattern,
            SharingPattern::Neighbor
        );
        assert_eq!(Benchmark::Lu.spec().pattern, SharingPattern::Neighbor);
    }

    #[test]
    #[should_panic(expected = "shared_fraction")]
    fn builder_validates_fractions() {
        BenchmarkSpec::new(Benchmark::Lu).shared_fraction(1.5);
    }

    #[test]
    fn stress_workloads_are_stall_shaped() {
        for kind in StressKind::ALL {
            let s = kind.spec();
            assert!(s.compute_per_mem <= 1, "{kind:?} must be memory-dominated");
            assert!(!kind.name().is_empty());
        }
        let barrier = StressKind::BarrierPhased.spec();
        assert!(
            barrier.barrier_interval <= 16,
            "barrier phases must be tight (got {})",
            barrier.barrier_interval
        );
        assert!(StressKind::BarrierPhased.full_system());
        let dram = StressKind::DramBound.spec();
        assert!(
            dram.footprint_lines() > 16 * 2048,
            "DRAM-bound working set must dwarf the caches"
        );
        assert!(dram.reuse < 0.1, "DRAM-bound traffic must not cache well");
        assert!(!StressKind::DramBound.full_system());
    }

    #[test]
    fn scaled_down_divides_working_sets_with_a_floor() {
        let s = Benchmark::Barnes.spec().scaled_down(8);
        assert_eq!(s.private_lines, Benchmark::Barnes.spec().private_lines / 8);
        assert_eq!(s.shared_lines, Benchmark::Barnes.spec().shared_lines / 8);
        let tiny = BenchmarkSpec::new(Benchmark::Lu)
            .private_lines(20)
            .shared_lines(20)
            .scaled_down(100);
        assert_eq!(tiny.private_lines, 16);
        assert_eq!(tiny.shared_lines, 16);
    }
}
