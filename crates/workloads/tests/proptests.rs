//! Randomized property tests of the workload generator, driven by a
//! deterministic seeded PRNG (the offline build has no `proptest`):
//! determinism, trace shape, and address-space separation hold for arbitrary
//! benchmark parameters, thread counts and seeds.

use loco_noc::SplitMix64;
use loco_workloads::{Benchmark, BenchmarkSpec, SharingPattern, TraceGenerator, TraceOp};
use std::collections::HashSet;

const BENCHMARKS: [Benchmark; 7] = [
    Benchmark::Barnes,
    Benchmark::Blackscholes,
    Benchmark::Lu,
    Benchmark::Radix,
    Benchmark::Swaptions,
    Benchmark::Fft,
    Benchmark::WaterSpatial,
];

/// The generator is a pure function of (spec, seed, threads, length).
#[test]
fn generation_is_deterministic() {
    let mut rng = SplitMix64::new(0x40ad1);
    for case in 0..48 {
        let b = BENCHMARKS[rng.index(BENCHMARKS.len())];
        let seed = rng.next_u64();
        let threads = 1 + rng.index(8);
        let ops = 1 + rng.next_below(399);
        let spec = b.spec();
        let x = TraceGenerator::new(seed).generate(&spec, threads, ops);
        let y = TraceGenerator::new(seed).generate(&spec, threads, ops);
        assert_eq!(x, y, "case {case} ({b:?}, seed {seed})");
    }
}

/// Every generated trace has exactly the requested number of memory
/// operations, at least that many instructions, and addresses aligned to the
/// 32-byte line size (addresses are line-granular by design).
#[test]
fn trace_shape_is_consistent() {
    let mut rng = SplitMix64::new(0x40ad2);
    for case in 0..48 {
        let b = BENCHMARKS[rng.index(BENCHMARKS.len())];
        let seed = rng.next_u64();
        let threads = 1 + rng.index(4);
        let ops = 1 + rng.next_below(299);
        let spec = b.spec();
        let traces = TraceGenerator::new(seed).generate(&spec, threads, ops);
        assert_eq!(traces.len(), threads, "case {case}");
        for t in &traces {
            assert_eq!(t.memory_ops(), ops, "case {case}");
            assert!(t.instructions() >= ops, "case {case}");
            for op in t.ops() {
                if let TraceOp::Read(a) | TraceOp::Write(a) = op {
                    assert_eq!(a % 32, 0, "case {case}: addresses are line aligned");
                }
            }
        }
    }
}

/// The store fraction of the generated trace tracks the spec within a loose
/// statistical tolerance.
#[test]
fn write_fraction_is_respected() {
    let mut rng = SplitMix64::new(0x40ad3);
    for case in 0..48 {
        let seed = rng.next_u64();
        let wf = 0.05 + rng.next_f64() * 0.90;
        let spec = BenchmarkSpec::new(Benchmark::Lu).write_fraction(wf);
        let traces = TraceGenerator::new(seed).generate(&spec, 1, 3_000);
        let writes = traces[0]
            .ops()
            .iter()
            .filter(|o| matches!(o, TraceOp::Write(_)))
            .count() as f64;
        let measured = writes / 3_000.0;
        assert!(
            (measured - wf).abs() < 0.08,
            "case {case}: asked {wf:.2}, measured {measured:.2}"
        );
    }
}

/// Purely-private benchmarks (shared fraction zero) never produce an address
/// shared by two threads, regardless of the sharing pattern.
#[test]
fn zero_shared_fraction_means_disjoint_threads() {
    let mut rng = SplitMix64::new(0x40ad4);
    for case in 0..48 {
        let seed = rng.next_u64();
        let threads = 2 + rng.index(4);
        let pattern = if rng.gen_bool(0.5) {
            SharingPattern::Neighbor
        } else {
            SharingPattern::Global
        };
        let spec = BenchmarkSpec::new(Benchmark::Swaptions)
            .shared_fraction(0.0)
            .pattern(pattern)
            .private_lines(256);
        let traces = TraceGenerator::new(seed).generate(&spec, threads, 500);
        let mut seen: Vec<HashSet<u64>> = Vec::new();
        for t in &traces {
            let lines: HashSet<u64> = t
                .ops()
                .iter()
                .filter_map(|o| match o {
                    TraceOp::Read(a) | TraceOp::Write(a) => Some(a / 32),
                    _ => None,
                })
                .collect();
            for other in &seen {
                assert!(lines.is_disjoint(other), "case {case} ({pattern:?})");
            }
            seen.push(lines);
        }
    }
}

/// Task offsets give disjoint address spaces for any pair of task ids.
#[test]
fn task_offsets_never_collide() {
    let mut rng = SplitMix64::new(0x40ad5);
    for case in 0..48 {
        let seed = rng.next_u64();
        let t1 = rng.next_below(64);
        let t2 = rng.next_below(64);
        if t1 == t2 {
            continue;
        }
        let spec = Benchmark::Barnes.spec();
        let a = TraceGenerator::new(seed).with_task_offset(t1).generate(&spec, 1, 300);
        let b = TraceGenerator::new(seed).with_task_offset(t2).generate(&spec, 1, 300);
        let lines = |t: &loco_workloads::CoreTrace| -> HashSet<u64> {
            t.ops()
                .iter()
                .filter_map(|o| match o {
                    TraceOp::Read(a) | TraceOp::Write(a) => Some(*a),
                    _ => None,
                })
                .collect()
        };
        assert!(lines(&a[0]).is_disjoint(&lines(&b[0])), "case {case}");
    }
}
