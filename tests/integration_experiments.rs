//! Integration tests of the experiment runner: every figure function
//! produces well-formed output at the quick scale, and the headline trends
//! of the paper hold.

use loco::{Benchmark, ClusterShape, ExperimentParams, Runner};

fn quick_runner() -> Runner {
    Runner::new(ExperimentParams::quick())
}

const BENCHES: [Benchmark; 2] = [Benchmark::Lu, Benchmark::Barnes];

fn assert_finite(fig: &loco::Figure) {
    for s in &fig.series {
        assert_eq!(s.values.len(), fig.x_labels.len(), "{}", fig.id);
        for v in &s.values {
            assert!(v.is_finite() && *v >= 0.0, "{}: bad value {v}", fig.id);
        }
    }
}

#[test]
fn fig06_through_fig11_are_well_formed() {
    let mut r = quick_runner();
    let figs = vec![
        r.fig06_private_vs_shared(&BENCHES),
        r.fig07_l2_hit_latency(&BENCHES),
        r.fig08_mpki(&BENCHES),
        r.fig09_search_delay(&BENCHES),
        r.fig10_offchip(&BENCHES),
        r.fig11_runtime(&BENCHES),
    ];
    for fig in &figs {
        assert_finite(fig);
        assert_eq!(*fig.x_labels.last().unwrap(), "AVG");
        assert!(!fig.to_text_table().is_empty());
    }
    // Memoization keeps the total number of distinct simulations bounded:
    // 5 organizations x 2 benchmarks.
    assert!(r.simulations_run() <= 10, "ran {}", r.simulations_run());
}

#[test]
fn vms_broadcast_cuts_search_delay_versus_directory_indirection() {
    // Figure 9's headline: VMS reduces the on-chip search cost.
    let mut r = quick_runner();
    let fig = r.fig09_search_delay(&[Benchmark::Barnes, Benchmark::Fft]);
    let cc = fig.average_of("LOCO CC").unwrap();
    let vms = fig.average_of("LOCO CC+VMS").unwrap();
    assert!(
        vms < cc,
        "VMS search delay {vms:.1} should undercut the directory's {cc:.1}"
    );
}

#[test]
fn loco_average_runtime_improves_on_shared() {
    // Figure 11's headline: LOCO (full) reduces run time on average. At the
    // 16-core quick scale the margin is small, so only a mild improvement is
    // required here; the paper-scale (64-core) claim is asserted in
    // `integration_system::loco_runtime_beats_the_shared_baseline_...`.
    let mut r = quick_runner();
    let fig = r.fig11_runtime(&[Benchmark::Lu, Benchmark::Blackscholes, Benchmark::WaterSpatial]);
    let shared = fig.average_of("Shared Cache").unwrap();
    let loco = fig.average_of("LOCO CC+VMS+IVR").unwrap();
    assert!((shared - 1.0).abs() < 1e-9);
    assert!(
        loco < 1.05,
        "LOCO normalized runtime {loco:.3} should not regress the shared baseline"
    );
}

#[test]
fn noc_comparison_figures_rank_smart_first() {
    let mut r = quick_runner();
    let fig13 = r.fig13_noc_runtime(&[Benchmark::Lu]);
    let smart = fig13.average_of("LOCO + SMART NoC").unwrap();
    let conv = fig13.average_of("LOCO + Conventional NoC").unwrap();
    assert!(smart <= conv, "SMART {smart:.3} vs conventional {conv:.3}");
    let fig12 = r.fig12_l2_latency(&[Benchmark::Lu]);
    let smart_lat = fig12.average_of("LOCO + SMART NoC").unwrap();
    let hr_lat = fig12.average_of("LOCO + High-Radix Routers").unwrap();
    assert!(smart_lat <= hr_lat);
}

#[test]
fn cluster_size_figures_cover_all_shapes() {
    let mut r = quick_runner();
    let shapes = [ClusterShape::new(2, 1), ClusterShape::new(2, 2)];
    let figs = r.fig14_cluster_size(&[Benchmark::Lu], &shapes);
    assert_eq!(figs.len(), 4);
    for fig in &figs {
        assert_eq!(fig.series.len(), 2);
        assert_finite(fig);
    }
    // Smaller clusters -> lower hit latency (Figure 14a's trend).
    let small = figs[0].average_of("Cluster Size:2x1").unwrap();
    let large = figs[0].average_of("Cluster Size:2x2").unwrap();
    assert!(small <= large + 1.0, "2x1 {small:.2} vs 2x2 {large:.2}");
}

#[test]
fn fullsystem_figures_are_well_formed() {
    let mut r = quick_runner();
    let mpki = r.fig16_mpki(&[Benchmark::Lu]);
    let runtime = r.fig16_runtime(&[Benchmark::Lu]);
    assert_finite(&mpki);
    assert_finite(&runtime);
    assert_eq!(runtime.series.len(), 3);
}

#[test]
fn multiprogram_figure_reports_all_three_organizations() {
    let mut r = quick_runner();
    let (off, run) = r.fig15_multiprogram(&[1]);
    assert_finite(&off);
    assert_finite(&run);
    let labels: Vec<&str> = off.series.iter().map(|s| s.label.as_str()).collect();
    assert_eq!(labels, vec!["Shared Cache", "Clustered Cache", "LOCO CC+VMS+IVR"]);
}
