//! Aggregate network statistics and fabric event counters.
//!
//! Two layers of accounting live here:
//!
//! * [`NetworkStats`] — delivery-level statistics accumulated by the
//!   [`crate::Network`] front-end (latencies, per-VN counts, multicast
//!   forks).
//! * [`FabricCounters`] — micro-architectural *event* counters accumulated
//!   inside the fabric engines (buffer reads/writes, crossbar traversals,
//!   link hops, SMART SSR broadcasts and premature stops, high-radix
//!   pipeline passes). These are the per-event quantities the `loco-energy`
//!   crate multiplies by per-event costs; they are integers only and
//!   bit-identical between event-driven and naive execution (counters only
//!   mutate when a packet actually moves, never in quiescence probes).

use crate::message::VirtualNetwork;

/// Micro-architectural event counters of one NoC fabric. Every field is a
/// monotonic event count; each engine increments the classes it implements
/// (e.g. only SMART produces SSR events, only high-radix produces pipeline
/// passes), so a zero simply means "this fabric has no such event".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FabricCounters {
    /// Packets latched into a router input buffer (injections plus every
    /// intermediate stop). SMART's raison d'être is keeping this low.
    pub buffer_writes: u64,
    /// Packets read out of a router input buffer to traverse the switch.
    pub buffer_reads: u64,
    /// Router crossbar traversals. A SMART multi-hop bypass crosses the
    /// crossbar of every router on its pre-set path, so a `k`-hop traversal
    /// counts `k` crossbars.
    pub crossbar_traversals: u64,
    /// Physical link hops crossed, weighted by packet length in flits
    /// (energy on wires scales with bits moved times distance). A high-radix
    /// express link spanning `s` mesh hops counts `s` wire hops per flit.
    pub link_flit_hops: u64,
    /// SMART: Setup Requests granted at switch allocation (one broadcast of
    /// the dedicated SSR wires per winner per cycle).
    pub ssr_broadcasts: u64,
    /// SMART: total routers reached by SSR broadcast wires (the sum of each
    /// SSR's requested hop count — the wire length the broadcast drives).
    pub ssr_hops: u64,
    /// SMART: flits buffered short of their intended SMART-hop because they
    /// lost SSR arbitration to a nearer flit.
    pub premature_stops: u64,
    /// SMART: intermediate routers crossed on a pre-set bypass path without
    /// being latched (the hops that cost no buffer energy).
    pub bypass_hops: u64,
    /// Routers at which a flit terminated a traversal and was latched
    /// (intermediate stops plus final ejection) — the complement of
    /// [`FabricCounters::bypass_hops`] on SMART fabrics.
    pub stop_hops: u64,
    /// High-radix: express-link traversals (one per move, regardless of the
    /// span the link covers; wire length is in `link_flit_hops`).
    pub express_traversals: u64,
    /// High-radix: multi-stage router pipeline passes (each stop pays the
    /// deep arbiter/crossbar pipeline once).
    pub pipeline_passes: u64,
}

impl FabricCounters {
    /// Fraction of SMART traversal hops that bypassed a router instead of
    /// stopping (0 when no hop was taken; a pure SSR diagnostic).
    pub fn bypass_ratio(&self) -> f64 {
        let total = self.bypass_hops + self.stop_hops;
        if total == 0 {
            0.0
        } else {
            self.bypass_hops as f64 / total as f64
        }
    }
}

/// Counters accumulated by a [`crate::Network`] over a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkStats {
    /// Messages handed to `inject` (multicasts count once).
    pub injected_messages: u64,
    /// Copies delivered at destination NICs (a multicast to `n` members
    /// counts `n` times).
    pub delivered_copies: u64,
    /// Sum of end-to-end latencies of all delivered copies.
    pub total_latency: u64,
    /// Largest single delivery latency observed.
    pub max_latency: u64,
    /// Sum of router-buffer stops over all delivered copies.
    pub total_stops: u64,
    /// Deliveries per virtual network.
    pub per_vn_delivered: [u64; 5],
    /// Latency sum per virtual network.
    pub per_vn_latency: [u64; 5],
    /// Multicast child copies spawned at fork points.
    pub multicast_forks: u64,
    /// Fabric-level event counters (buffer/crossbar/link/SSR events). Live
    /// counts are kept inside the fabric engine; [`crate::Network::stats`]
    /// snapshots them into this field.
    pub fabric: FabricCounters,
}

impl NetworkStats {
    /// Records one delivered copy.
    pub fn record_delivery(&mut self, vn: VirtualNetwork, latency: u64, stops: u32) {
        self.delivered_copies += 1;
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        self.total_stops += u64::from(stops);
        self.per_vn_delivered[vn.index()] += 1;
        self.per_vn_latency[vn.index()] += latency;
    }

    /// Average delivery latency in cycles (0 if nothing delivered).
    pub fn avg_latency(&self) -> f64 {
        if self.delivered_copies == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered_copies as f64
        }
    }

    /// Average latency on one virtual network.
    pub fn avg_latency_vn(&self, vn: VirtualNetwork) -> f64 {
        let n = self.per_vn_delivered[vn.index()];
        if n == 0 {
            0.0
        } else {
            self.per_vn_latency[vn.index()] as f64 / n as f64
        }
    }

    /// Average number of router stops per delivered copy.
    pub fn avg_stops(&self) -> f64 {
        if self.delivered_copies == 0 {
            0.0
        } else {
            self.total_stops as f64 / self.delivered_copies as f64
        }
    }

    /// A human-readable multi-line summary of the network statistics,
    /// including the fabric event counters and the SMART SSR diagnostics
    /// (premature stops, bypass-vs-stop hops).
    pub fn report(&self) -> String {
        let f = &self.fabric;
        let mut out = String::new();
        out.push_str(&format!(
            "messages           : {} injected, {} delivered (avg latency {:.2} cycles, max {})\n",
            self.injected_messages,
            self.delivered_copies,
            self.avg_latency(),
            self.max_latency
        ));
        out.push_str(&format!(
            "router stops       : {:.2} per delivery ({} multicast forks)\n",
            self.avg_stops(),
            self.multicast_forks
        ));
        out.push_str(&format!(
            "buffer events      : {} writes, {} reads\n",
            f.buffer_writes, f.buffer_reads
        ));
        out.push_str(&format!(
            "crossbar / links   : {} crossbar traversals, {} link flit-hops\n",
            f.crossbar_traversals, f.link_flit_hops
        ));
        out.push_str(&format!(
            "SMART SSRs         : {} broadcasts over {} wire-hops, {} premature stops\n",
            f.ssr_broadcasts, f.ssr_hops, f.premature_stops
        ));
        out.push_str(&format!(
            "bypass vs stop     : {} bypassed, {} latched ({:.1}% bypassed)\n",
            f.bypass_hops,
            f.stop_hops,
            100.0 * f.bypass_ratio()
        ));
        if f.pipeline_passes > 0 || f.express_traversals > 0 {
            out.push_str(&format!(
                "high-radix         : {} express traversals, {} pipeline passes\n",
                f.express_traversals, f.pipeline_passes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_empty_and_nonempty() {
        let mut s = NetworkStats::default();
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.avg_stops(), 0.0);
        s.record_delivery(VirtualNetwork::Request, 10, 2);
        s.record_delivery(VirtualNetwork::Response, 20, 4);
        assert_eq!(s.avg_latency(), 15.0);
        assert_eq!(s.avg_stops(), 3.0);
        assert_eq!(s.max_latency, 20);
        assert_eq!(s.avg_latency_vn(VirtualNetwork::Request), 10.0);
        assert_eq!(s.avg_latency_vn(VirtualNetwork::Forward), 0.0);
    }

    #[test]
    fn bypass_ratio_and_report_cover_the_ssr_diagnostics() {
        let mut s = NetworkStats::default();
        s.fabric.bypass_hops = 3;
        s.fabric.stop_hops = 1;
        s.fabric.premature_stops = 2;
        s.fabric.ssr_broadcasts = 5;
        assert!((s.fabric.bypass_ratio() - 0.75).abs() < 1e-12);
        let r = s.report();
        assert!(r.contains("premature stops"), "{r}");
        assert!(r.contains("3 bypassed, 1 latched"), "{r}");
        assert!(r.contains("75.0% bypassed"), "{r}");
        assert_eq!(FabricCounters::default().bypass_ratio(), 0.0);
    }
}
