//! A tiny in-tree timing harness with a Criterion-shaped API.
//!
//! The workspace builds offline with an empty crate registry, so the benches
//! cannot use the `criterion` crate. This module provides the small subset
//! of its API the `benches/` targets need — [`Criterion::benchmark_group`],
//! [`BenchGroup::bench_function`] / [`BenchGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId::from_parameter`] — backed by plain
//! `std::time::Instant` sampling, plus the [`bench_group!`](crate::bench_group)
//! / [`bench_main!`](crate::bench_main) macros replacing `criterion_group!` /
//! `criterion_main!`.
//!
//! Every bench target sets `harness = false`, so `cargo bench` runs these
//! `main`s directly. A positional command-line argument filters benchmarks
//! by substring (`cargo bench --bench noc_microbench -- smart`), and
//! `LOCO_BENCH_SAMPLES` overrides the per-benchmark sample count.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness state shared by all groups of one bench binary.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    sample_override: Option<usize>,
}

impl Criterion {
    /// Builds the harness from `std::env` (CLI filter, sample override).
    ///
    /// Flags (anything starting with `-`, e.g. the `--bench` cargo passes to
    /// the target) are ignored; the first bare argument is a substring
    /// filter on `group/id` names.
    pub fn from_env() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let sample_override = std::env::var("LOCO_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok());
        Criterion {
            filter,
            sample_override,
        }
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        BenchGroup {
            harness: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchGroup<'a> {
    harness: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs (and times) one benchmark closure.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(&id.to_string(), &mut |b| f(b));
        self
    }

    /// Runs one benchmark closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for Criterion API compatibility).
    pub fn finish(self) {}

    fn run(&self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.harness.sample_override.unwrap_or(self.sample_size),
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(&full, &bencher.samples);
    }
}

/// A formatted benchmark identifier (`BenchmarkId::from_parameter(4)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from any displayable parameter value.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` executions of `f` (after one untimed warm-up).
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        black_box(f()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Aggregate statistics over one benchmark's timing samples.
///
/// `median` and `stddev` are what before/after comparisons across perf PRs
/// should quote: the median is robust against one-off scheduling outliers,
/// and the standard deviation says whether an observed delta is noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples summarized.
    pub samples: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Median (midpoint average for even sample counts).
    pub median: Duration,
    /// Population standard deviation.
    pub stddev: Duration,
}

impl Summary {
    /// Summarizes a set of samples; `None` when `samples` is empty.
    pub fn from_samples(samples: &[Duration]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2
        };
        let total: Duration = sorted.iter().sum();
        let mean = total / n as u32;
        let mean_s = mean.as_secs_f64();
        let variance = sorted
            .iter()
            .map(|s| (s.as_secs_f64() - mean_s).powi(2))
            .sum::<f64>()
            / n as f64;
        Some(Summary {
            samples: n,
            mean,
            min: sorted[0],
            max: sorted[n - 1],
            median,
            stddev: Duration::from_secs_f64(variance.sqrt()),
        })
    }
}

fn report(name: &str, samples: &[Duration]) {
    let Some(s) = Summary::from_samples(samples) else {
        println!("{name:<40} (no samples collected)");
        return;
    };
    println!(
        "{name:<40} median {:>12?}  mean {:>12?}  min {:>12?}  max {:>12?}  stddev {:>10?}  ({} samples)",
        s.median, s.mean, s.min, s.max, s.stddev, s.samples
    );
}

/// Replaces `criterion_group!`: bundles bench functions into one group
/// function callable from [`bench_main!`](crate::bench_main).
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::timing::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Replaces `criterion_main!`: generates the bench binary's `main`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::timing::Criterion::from_env();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_the_requested_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples: Vec::new(),
        };
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(runs, 6, "5 samples + 1 warm-up");
    }

    #[test]
    fn summary_computes_order_statistics() {
        let ms = Duration::from_millis;
        let s = Summary::from_samples(&[ms(4), ms(1), ms(3), ms(2)]).unwrap();
        assert_eq!(s.samples, 4);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.max, ms(4));
        assert_eq!(s.median, Duration::from_micros(2500));
        assert_eq!(s.mean, Duration::from_micros(2500));
        // Population stddev of {1,2,3,4} ms = sqrt(1.25) ms ~ 1.118 ms.
        let expected = 1.25f64.sqrt() / 1000.0;
        assert!((s.stddev.as_secs_f64() - expected).abs() < 1e-9);

        let odd = Summary::from_samples(&[ms(5), ms(1), ms(9)]).unwrap();
        assert_eq!(odd.median, ms(5));
        assert_eq!(Summary::from_samples(&[]), None);
    }

    #[test]
    fn benchmark_id_formats_like_its_parameter() {
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
        assert_eq!(BenchmarkId::from_parameter("smart_8x8").to_string(), "smart_8x8");
    }

    #[test]
    fn groups_run_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            sample_override: Some(1),
        };
        let mut ran = Vec::new();
        let mut group = c.benchmark_group("g");
        group.bench_function("keep_me", |b| b.iter(|| ran.push("keep")));
        group.finish();
        // A fresh group is needed because `ran` is re-borrowed.
        let mut ran2 = Vec::new();
        let mut group = c.benchmark_group("g");
        group.bench_function("skip_me", |b| b.iter(|| ran2.push("skip")));
        group.finish();
        assert!(!ran.is_empty());
        assert!(ran2.is_empty(), "filtered-out benchmark must not run");
    }
}
