//! Conventional mesh fabric: state-of-the-art 2-cycle-per-hop routers
//! (1 cycle switch allocation + traversal inside the router, 1 cycle on the
//! link), XY dimension-ordered routing, per-output round-robin arbitration
//! and credit-style backpressure.
//!
//! This is the `LOCO + Conventional NoC` baseline of Figures 12 and 13 and
//! the hop-by-hop reference against which SMART's single-cycle multi-hop
//! traversals are compared (Section 2 of the paper: 14 hops take 28 cycles
//! in the best case on this fabric).

use crate::config::NocConfig;
use crate::message::VirtualNetwork;
use crate::router::{
    dir_link, Arrival, Buffered, FabricEngine, FlightInfo, InputBuffers, LinkOccupancy, RoundRobin,
};
use crate::topology::{Direction, Mesh, NodeId};

const PORTS: usize = 5;

/// The conventional-router fabric engine.
#[derive(Debug)]
pub struct ConventionalFabric {
    cfg: NocConfig,
    mesh: Mesh,
    buffers: Vec<InputBuffers>,
    arbiters: Vec<RoundRobin>,
    links: LinkOccupancy,
    in_flight: usize,
    buffer_writes: u64,
}

impl ConventionalFabric {
    /// Builds the fabric for the given configuration.
    pub fn new(cfg: NocConfig) -> Self {
        let mesh = cfg.mesh;
        let nodes = mesh.len();
        ConventionalFabric {
            cfg,
            mesh,
            buffers: (0..nodes)
                .map(|_| InputBuffers::new(PORTS, cfg.vn_buffer_capacity()))
                .collect(),
            arbiters: (0..nodes * PORTS).map(|_| RoundRobin::new()).collect(),
            links: LinkOccupancy::new(nodes, PORTS),
            in_flight: 0,
            buffer_writes: 0,
        }
    }

    fn output_for(&self, at: NodeId, flight: &FlightInfo) -> Option<Direction> {
        self.mesh.xy_next_dir(at, flight.dest)
    }
}

impl FabricEngine for ConventionalFabric {
    fn can_accept(&self, node: NodeId, vn: VirtualNetwork) -> bool {
        self.buffers[node.index()].has_space(Direction::Local.index(), vn)
    }

    fn inject(&mut self, flight: FlightInfo, now: u64) {
        self.buffers[flight.src.index()].push(
            Direction::Local.index(),
            flight.vn,
            Buffered {
                flight,
                ready_at: now + 1,
            },
        );
        self.in_flight += 1;
        self.buffer_writes += 1;
    }

    fn tick(&mut self, now: u64, arrivals: &mut Vec<Arrival>) {
        // Switch allocation: for every router and output direction, pick one
        // ready head packet among the input lanes requesting that output,
        // check link and downstream buffer availability, then move it.
        //
        // Moves are computed first and applied afterwards so that a packet
        // moved this cycle cannot be moved again within the same cycle.
        struct Move {
            node: NodeId,
            port: usize,
            vn: VirtualNetwork,
            out: Direction,
            next: NodeId,
        }
        let mut moves: Vec<Move> = Vec::new();
        // Downstream space reserved this cycle: (node, port, vn) -> count.
        let mut reserved: Vec<u8> =
            vec![0; self.mesh.len() * PORTS * VirtualNetwork::ALL.len()];
        let reserve_idx = |node: NodeId, port: usize, vn: VirtualNetwork| {
            (node.index() * PORTS + port) * VirtualNetwork::ALL.len() + vn.index()
        };

        for node in self.mesh.nodes() {
            if self.buffers[node.index()].is_empty() {
                continue;
            }
            for out in Direction::CARDINAL {
                if !self.links.is_free(node, dir_link(out), now) {
                    continue;
                }
                let Some(next) = self.mesh.neighbor(node, out) else {
                    continue;
                };
                // Gather candidate lanes whose head is ready and requests `out`.
                let bufs = &self.buffers[node.index()];
                let mut candidates: Vec<usize> = Vec::new();
                let mut lane_of: Vec<(usize, VirtualNetwork)> = Vec::new();
                for (lane_idx, (port, vn)) in bufs.lanes().enumerate() {
                    if let Some(head) = bufs.head(port, vn) {
                        if head.ready_at <= now
                            && self.output_for(node, &head.flight) == Some(out)
                        {
                            // Check downstream buffer space at the opposite
                            // input port of the neighbour, including space
                            // already reserved this cycle.
                            let dport = out.opposite().index();
                            let occ = self.buffers[next.index()].occupancy(dport, vn)
                                + reserved[reserve_idx(next, dport, vn)] as usize;
                            if occ < self.cfg.vn_buffer_capacity() {
                                candidates.push(lane_idx);
                                lane_of.push((port, vn));
                            }
                        }
                    }
                    let _ = lane_idx;
                }
                if candidates.is_empty() {
                    continue;
                }
                let arb = &mut self.arbiters[node.index() * PORTS + dir_link(out)];
                let total_lanes = PORTS * VirtualNetwork::ALL.len();
                if let Some(winner) = arb.pick(&candidates, total_lanes) {
                    let pos = candidates.iter().position(|&c| c == winner).expect("winner in list");
                    let (port, vn) = lane_of[pos];
                    let dport = out.opposite().index();
                    reserved[reserve_idx(next, dport, vn)] += 1;
                    moves.push(Move {
                        node,
                        port,
                        vn,
                        out,
                        next,
                    });
                }
            }
        }

        for mv in moves {
            let buffered = self.buffers[mv.node.index()]
                .pop(mv.port, mv.vn)
                .expect("winner packet present");
            let flight = buffered.flight;
            let flits = flight.flits as u64;
            // The output link is held for the full packet length.
            self.links
                .occupy(mv.node, dir_link(mv.out), now + flits);
            // 1 cycle in the router (already spent winning SA this cycle) +
            // 1 cycle link traversal + serialization of the tail flits.
            let arrival_cycle = now + 1 + (flits - 1);
            if mv.next == flight.dest {
                let mut f = flight;
                f.stops += 1;
                self.in_flight -= 1;
                arrivals.push(Arrival {
                    flight: f,
                    at: mv.next,
                    now: arrival_cycle + 1,
                });
            } else {
                let mut f = flight;
                f.stops += 1;
                self.buffer_writes += 1;
                self.buffers[mv.next.index()].push(
                    mv.out.opposite().index(),
                    mv.vn,
                    Buffered {
                        flight: f,
                        ready_at: arrival_cycle + 1,
                    },
                );
            }
        }
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn buffer_writes(&self) -> u64 {
        self.buffer_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::PacketId;

    fn flight(id: u64, src: u16, dest: u16, flits: u32, injected: u64) -> FlightInfo {
        FlightInfo {
            id: PacketId(id),
            src: NodeId(src),
            dest: NodeId(dest),
            vn: VirtualNetwork::Request,
            flits,
            injected_at: injected,
            stops: 0,
        }
    }

    fn run_until_arrival(fab: &mut ConventionalFabric, start: u64, limit: u64) -> Vec<Arrival> {
        let mut arrivals = Vec::new();
        let mut now = start;
        while arrivals.is_empty() && now < start + limit {
            fab.tick(now, &mut arrivals);
            now += 1;
        }
        arrivals
    }

    #[test]
    fn two_cycles_per_hop_best_case() {
        let cfg = NocConfig::conventional_mesh(8, 8);
        let mut fab = ConventionalFabric::new(cfg);
        // 0 -> 7 is 7 hops along the bottom row.
        fab.inject(flight(1, 0, 7, 1, 0), 0);
        let arr = run_until_arrival(&mut fab, 0, 100);
        assert_eq!(arr.len(), 1);
        // ~2 cycles per hop plus injection overhead.
        let latency = arr[0].now - arr[0].flight.injected_at;
        assert!(latency >= 14, "latency {latency} too small");
        assert!(latency <= 17, "latency {latency} too large");
    }

    #[test]
    fn corner_to_corner_is_about_28_cycles() {
        // Section 2: 14 hops on a conventional NoC take 28 cycles best case.
        let cfg = NocConfig::conventional_mesh(8, 8);
        let mut fab = ConventionalFabric::new(cfg);
        fab.inject(flight(1, 0, 63, 1, 0), 0);
        let arr = run_until_arrival(&mut fab, 0, 100);
        let latency = arr[0].now - arr[0].flight.injected_at;
        assert!((28..=31).contains(&latency), "latency {latency}");
    }

    #[test]
    fn multi_flit_packets_add_serialization_delay() {
        let cfg = NocConfig::conventional_mesh(4, 4);
        let mut fab = ConventionalFabric::new(cfg);
        fab.inject(flight(1, 0, 3, 3, 0), 0);
        let arr = run_until_arrival(&mut fab, 0, 100);
        let lat3 = arr[0].now;

        let mut fab1 = ConventionalFabric::new(cfg);
        fab1.inject(flight(2, 0, 3, 1, 0), 0);
        let arr1 = run_until_arrival(&mut fab1, 0, 100);
        let lat1 = arr1[0].now;
        assert!(lat3 > lat1, "3-flit {lat3} should exceed 1-flit {lat1}");
    }

    #[test]
    fn contention_serializes_packets_on_shared_link() {
        let cfg = NocConfig::conventional_mesh(4, 1);
        let mut fab = ConventionalFabric::new(cfg);
        // Two packets from node 0 to node 3 compete for the same links.
        fab.inject(flight(1, 0, 3, 4, 0), 0);
        fab.inject(flight(2, 0, 3, 4, 0), 0);
        let mut arrivals = Vec::new();
        for now in 0..200 {
            fab.tick(now, &mut arrivals);
        }
        assert_eq!(arrivals.len(), 2);
        let mut times: Vec<u64> = arrivals.iter().map(|a| a.now).collect();
        times.sort_unstable();
        // Second packet must wait for the first to release each link.
        assert!(times[1] >= times[0] + 4, "times {times:?}");
    }

    #[test]
    fn in_flight_count_tracks_packets() {
        let cfg = NocConfig::conventional_mesh(4, 4);
        let mut fab = ConventionalFabric::new(cfg);
        assert_eq!(fab.in_flight(), 0);
        fab.inject(flight(1, 0, 5, 1, 0), 0);
        assert_eq!(fab.in_flight(), 1);
        let mut arrivals = Vec::new();
        for now in 0..50 {
            fab.tick(now, &mut arrivals);
        }
        assert_eq!(fab.in_flight(), 0);
        assert_eq!(arrivals.len(), 1);
    }
}
