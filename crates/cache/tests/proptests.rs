//! Randomized property tests of the cache substrate, driven by a
//! deterministic seeded PRNG (the offline build has no `proptest`): the
//! set-associative array never violates its geometry, LRU eviction picks the
//! oldest line, sharer sets behave like sets, and the address→home-node map
//! always stays inside the requester's cluster.

use loco_cache::{
    Address, CacheArray, CacheGeometry, ClusterShape, Eviction, LineAddr, Organization,
    OrganizationKind, SharerSet,
};
use loco_noc::{Mesh, NodeId, SplitMix64};
use std::collections::HashSet;

fn small_geometry(ways: usize, sets: usize) -> CacheGeometry {
    CacheGeometry {
        size_bytes: (ways * sets * 32) as u64,
        ways,
        line_bytes: 32,
        latency: 1,
    }
}

/// No set ever holds more lines than the associativity, regardless of the
/// insertion sequence, and lookups after insertion always hit until an
/// eviction removes the line.
#[test]
fn cache_array_never_exceeds_associativity() {
    let mut rng = SplitMix64::new(0xca11);
    for case in 0..128 {
        let ways = 1 + rng.index(8);
        let sets = 1usize << rng.next_below(4);
        let n_lines = 1 + rng.index(199);
        let mut cache: CacheArray<u8> = CacheArray::new(small_geometry(ways, sets));
        let mut resident: HashSet<(usize, u64)> = HashSet::new();
        for t in 0..n_lines {
            let line = rng.next_below(64);
            let set = (line as usize) % sets;
            match cache.insert(set, LineAddr(line), 0, t as u64) {
                Eviction::Victim(v) => {
                    assert!(
                        resident.remove(&(set, v.addr.0)),
                        "case {case}: evicted a non-resident line"
                    );
                }
                Eviction::None => {}
            }
            resident.insert((set, line));
            assert!(cache.peek(set, LineAddr(line)).is_some(), "case {case}");
        }
        assert_eq!(cache.occupancy(), resident.len(), "case {case}");
        for set in 0..sets {
            let in_set = resident.iter().filter(|(s, _)| *s == set).count();
            assert!(in_set <= ways, "case {case}: set {set} overflows");
        }
    }
}

/// The LRU victim is always the least-recently-touched line of the set.
#[test]
fn lru_evicts_the_oldest_line() {
    let mut rng = SplitMix64::new(0xca12);
    for case in 0..128 {
        let ways = 2 + rng.index(7);
        let touches = 1 + rng.index(63);
        let mut cache: CacheArray<u8> = CacheArray::new(small_geometry(ways, 1));
        let mut order: Vec<u64> = Vec::new(); // most recent last
        let mut now = 0u64;
        for _ in 0..touches {
            let line = rng.next_below(16);
            now += 1;
            if cache.peek(0, LineAddr(line)).is_some() {
                cache.lookup_mut(0, LineAddr(line), now);
                order.retain(|&l| l != line);
                order.push(line);
            } else {
                match cache.insert(0, LineAddr(line), 0, now) {
                    Eviction::Victim(v) => {
                        assert_eq!(v.addr.0, order[0], "case {case}: must evict the LRU line");
                        order.remove(0);
                    }
                    Eviction::None => {}
                }
                order.push(line);
            }
        }
    }
}

/// SharerSet behaves like a set of node ids below 256.
#[test]
fn sharer_set_matches_hashset() {
    let mut rng = SplitMix64::new(0xca13);
    for case in 0..128 {
        let ops = rng.index(300);
        let mut s = SharerSet::new();
        let mut reference: HashSet<u16> = HashSet::new();
        for _ in 0..ops {
            let node = rng.next_below(256) as u16;
            if rng.gen_bool(0.5) {
                s.insert(NodeId(node));
                reference.insert(node);
            } else {
                s.remove(NodeId(node));
                reference.remove(&node);
            }
            assert_eq!(s.len(), reference.len(), "case {case}");
            assert_eq!(s.contains(NodeId(node)), reference.contains(&node), "case {case}");
        }
        let collected: HashSet<u16> = s.iter().map(|n| n.0).collect();
        assert_eq!(collected, reference, "case {case}");
    }
}

/// For every LOCO cluster shape, the home node of any address and any
/// requester lies inside the requester's cluster, and the VMS for that
/// address has exactly one member per cluster (the home of each).
#[test]
fn home_node_mapping_respects_clusters() {
    let shapes = [
        ClusterShape::new(4, 4),
        ClusterShape::new(4, 1),
        ClusterShape::new(8, 1),
        ClusterShape::new(2, 2),
    ];
    let mut rng = SplitMix64::new(0xca14);
    for case in 0..128 {
        let addr = rng.next_u64();
        let requester = rng.next_below(64) as u16;
        let shape = shapes[rng.index(shapes.len())];
        let org = Organization::loco(Mesh::new(8, 8), OrganizationKind::LocoCcVms, shape);
        let line = Address(addr).line(32);
        let home = org.home_node(NodeId(requester), line);
        assert_eq!(
            org.cluster_of(home),
            org.cluster_of(NodeId(requester)),
            "case {case}"
        );
        let members = org.vms_members(line);
        assert_eq!(members.len(), org.num_clusters(), "case {case}");
        let clusters: HashSet<usize> = members.iter().map(|&m| org.cluster_of(m)).collect();
        assert_eq!(clusters.len(), org.num_clusters(), "case {case}");
        assert!(members.contains(&home), "case {case}");
    }
}

/// Address field decomposition is lossless for every hnid width / set count
/// combination used by the organizations.
#[test]
fn address_decomposition_is_lossless() {
    let mut rng = SplitMix64::new(0xca15);
    for case in 0..128 {
        let raw = rng.next_u64();
        let hnid_bits = rng.next_below(7) as u32;
        let sets = 1usize << rng.next_below(10);
        let line = Address(raw).line(32);
        let rebuilt = ((line.tag(hnid_bits, sets) * sets as u64
            + line.set_index(hnid_bits, sets) as u64)
            << hnid_bits)
            | line.hnid(hnid_bits);
        assert_eq!(rebuilt, line.0, "case {case}");
        assert!(line.set_index(hnid_bits, sets) < sets, "case {case}");
    }
}
