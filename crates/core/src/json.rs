//! A minimal JSON emitter/parser for figure reports.
//!
//! The workspace builds offline with an empty crate registry, so it cannot
//! depend on `serde_json`. This module implements the small JSON subset the
//! report layer needs: objects, arrays, strings, IEEE-754 numbers, booleans
//! and null, with the standard string escapes. Numbers are emitted with
//! Rust's shortest round-trip `f64` formatting, so emit→parse is lossless.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent), matching
    /// the layout `serde_json::to_string_pretty` would produce.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Integral values print as "<int>.0" without an exponent,
            // matching serde_json's f64 formatting.
            out.push_str(&format!("{}", n as i64));
            out.push_str(".0");
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no Inf/NaN; emit null like serde_json's lossy mode.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An error produced while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
///
/// ```
/// use loco::json::{parse, Value};
///
/// let v = parse(r#"{"x": [1, 2.5], "ok": true}"#).unwrap();
/// assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
/// assert_eq!(v.get("x").unwrap().as_array().unwrap().len(), 2);
/// ```
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Maximum container nesting accepted by [`parse`]; documents beyond this
/// get a [`ParseError`] instead of a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn nested(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<Value, ParseError>,
    ) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let result = f(self);
        self.depth -= 1;
        result
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                self.pos += 1; // consume the first 'u' escape fully below
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000
                                    + (((unit - 0xd800) as u32) << 10)
                                    + (low - 0xdc00) as u32;
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit as u32)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos on the last hex digit; the
                            // shared increment below moves past it.
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar. `pos` always sits on a char
                    // boundary here (it only ever advances past complete
                    // ASCII tokens or complete scalars), so the slice is
                    // valid and this is O(1) per character.
                    let c = self.text[self.pos..].chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits of a `\u` escape. On entry `pos` is at the
    /// `u`; on exit it is at the last hex digit.
    fn hex4(&mut self) -> Result<u16, ParseError> {
        let start = self.pos + 1;
        if start + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..start + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let unit = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = start + 3;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("3.25").unwrap(), Value::Number(3.25));
        assert_eq!(parse("-17").unwrap(), Value::Number(-17.0));
        assert_eq!(parse("1e3").unwrap(), Value::Number(1000.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Value::Number(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn parses_string_escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}\u{e9}"));
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        let deep = "[".repeat(200_000) + &"]".repeat(200_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting too deep"), "{err}");
        // ... while documents inside the limit still parse.
        let ok = "[".repeat(100) + "1" + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", r#"{"a" 1}"#, "truu", "1 2", r#""\q""#] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn pretty_print_round_trips() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("fig \"11\"".into())),
            (
                "values".into(),
                Value::Array(vec![
                    Value::Number(1.0),
                    Value::Number(0.8125),
                    Value::Number(1.0 / 3.0),
                ]),
            ),
            ("empty".into(), Value::Array(vec![])),
            ("flag".into(), Value::Bool(false)),
        ]);
        let text = v.to_pretty();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn float_emission_is_lossless() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456.789, f64::MIN_POSITIVE] {
            let mut s = String::new();
            write_number(&mut s, x);
            assert_eq!(parse(&s).unwrap().as_f64(), Some(x));
        }
    }
}
