//! Aggregated results of one simulation run.

use loco_cache::CacheStats;
use loco_noc::NetworkStats;

/// Everything a figure of the paper needs from one run.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimResults {
    /// Total run time in cycles (until every core finished its trace).
    pub runtime_cycles: u64,
    /// Whether every core finished within the cycle budget.
    pub completed: bool,
    /// Merged cache-hierarchy statistics (L1s, L2s, directory, memory).
    pub cache: CacheStats,
    /// NoC statistics.
    pub network: NetworkStats,
    /// Average L1-issue→fill latency of requests satisfied at the home L2
    /// ("L2 hit latency", Figure 7).
    pub avg_l2_hit_latency: f64,
    /// Average L1-issue→fill latency over all L1 misses.
    pub avg_miss_latency: f64,
    /// Average on-chip search delay for data found in other clusters
    /// (Figure 9).
    pub avg_search_delay: f64,
    /// L2 misses per thousand instructions (Figure 8).
    pub l2_mpki: f64,
    /// Off-chip accesses (fetches + writebacks, Figure 10).
    pub offchip_accesses: u64,
    /// Total instructions retired by all cores.
    pub instructions: u64,
}

impl SimResults {
    /// Instructions per cycle across the whole chip.
    pub fn ipc(&self) -> f64 {
        if self.runtime_cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.runtime_cycles as f64
        }
    }

    /// This run's time normalized against a baseline run time
    /// (the y-axis of Figures 6, 11, 13, 15 and 16).
    pub fn runtime_normalized_to(&self, baseline: &SimResults) -> f64 {
        if baseline.runtime_cycles == 0 {
            0.0
        } else {
            self.runtime_cycles as f64 / baseline.runtime_cycles as f64
        }
    }

    /// Off-chip accesses normalized against a baseline run
    /// (the y-axis of Figures 10 and 15a).
    pub fn offchip_normalized_to(&self, baseline: &SimResults) -> f64 {
        if baseline.offchip_accesses == 0 {
            0.0
        } else {
            self.offchip_accesses as f64 / baseline.offchip_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_ipc() {
        let a = SimResults {
            runtime_cycles: 100,
            instructions: 250,
            offchip_accesses: 10,
            ..SimResults::default()
        };
        let b = SimResults {
            runtime_cycles: 200,
            offchip_accesses: 40,
            ..SimResults::default()
        };
        assert!((a.ipc() - 2.5).abs() < 1e-12);
        assert!((b.runtime_normalized_to(&a) - 2.0).abs() < 1e-12);
        assert!((a.offchip_normalized_to(&b) - 0.25).abs() < 1e-12);
        assert_eq!(SimResults::default().ipc(), 0.0);
        assert_eq!(a.runtime_normalized_to(&SimResults::default()), 0.0);
    }
}
