//! The network front-end: payload ownership, multicast expansion, ejection
//! queues and statistics, on top of one of the three fabric engines.

use crate::config::{NocConfig, RouterKind};
use crate::conventional::ConventionalFabric;
use crate::highradix::HighRadixFabric;
use crate::message::{Delivered, Destination, MulticastGroupId, NetMessage, VirtualNetwork};
use crate::router::{Arrival, FabricEngine, FlightInfo, PacketId};
use crate::smart::SmartFabric;
use crate::stats::NetworkStats;
use crate::topology::{Direction, NodeId};
use crate::vms::MulticastTree;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Error returned by [`Network::inject`] when the source NIC's injection
/// buffer has no space this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectError;

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("injection buffer full")
    }
}

impl std::error::Error for InjectError {}

enum Fabric {
    Conventional(ConventionalFabric),
    Smart(SmartFabric),
    HighRadix(HighRadixFabric),
}

impl Fabric {
    fn as_engine(&mut self) -> &mut dyn FabricEngine {
        match self {
            Fabric::Conventional(f) => f,
            Fabric::Smart(f) => f,
            Fabric::HighRadix(f) => f,
        }
    }

    fn as_engine_ref(&self) -> &dyn FabricEngine {
        match self {
            Fabric::Conventional(f) => f,
            Fabric::Smart(f) => f,
            Fabric::HighRadix(f) => f,
        }
    }
}

struct PacketRecord<P> {
    msg: NetMessage<P>,
    /// For multicast copies: the direction this copy travels on the XY tree
    /// (None at the root copy spawned by `inject`).
    travelling: Option<Direction>,
}

/// A cycle-driven on-chip network carrying messages with payload type `P`.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Network<P> {
    cfg: NocConfig,
    fabric: Fabric,
    cycle: u64,
    groups: Vec<MulticastTree>,
    packets: HashMap<PacketId, PacketRecord<P>>,
    next_packet: u64,
    pending: Vec<Arrival>,
    eject_queues: Vec<VecDeque<Delivered<P>>>,
    stats: NetworkStats,
}

impl<P: Clone> Network<P> {
    /// Builds a network for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NocConfig::validate`].
    pub fn new(cfg: NocConfig) -> Self {
        cfg.validate().expect("invalid NoC configuration");
        let fabric = match cfg.router {
            RouterKind::Conventional => Fabric::Conventional(ConventionalFabric::new(cfg)),
            RouterKind::Smart => Fabric::Smart(SmartFabric::new(cfg)),
            RouterKind::HighRadix => Fabric::HighRadix(HighRadixFabric::new(cfg)),
        };
        Network {
            cfg,
            fabric,
            cycle: 0,
            groups: Vec::new(),
            packets: HashMap::new(),
            next_packet: 0,
            pending: Vec::new(),
            eject_queues: (0..cfg.mesh.len()).map(|_| VecDeque::new()).collect(),
            stats: NetworkStats::default(),
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Registers a multicast group (e.g. the home nodes of a virtual mesh)
    /// and returns its id for use in [`Destination::Multicast`].
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn register_multicast_group(&mut self, members: Vec<NodeId>) -> MulticastGroupId {
        let id = MulticastGroupId(self.groups.len() as u32);
        self.groups.push(MulticastTree::new(self.cfg.mesh, members));
        id
    }

    /// Members of a previously registered multicast group.
    ///
    /// # Panics
    ///
    /// Panics if the group id was not returned by this network.
    pub fn multicast_members(&self, group: MulticastGroupId) -> &[NodeId] {
        self.groups[group.0 as usize].members()
    }

    /// Whether the injection port at `node` can accept a message on `vn`
    /// this cycle.
    pub fn can_inject(&self, node: NodeId, vn: VirtualNetwork) -> bool {
        self.fabric.as_engine_ref().can_accept(node, vn)
    }

    /// Injects a message.
    ///
    /// Unicast messages whose source equals their destination are delivered
    /// locally with a 1-cycle latency without entering the fabric.
    ///
    /// # Errors
    ///
    /// Returns [`InjectError`] if the source injection buffer is full; the
    /// caller should retry on a later cycle (this is how back-pressure
    /// propagates into the cache controllers).
    ///
    /// # Panics
    ///
    /// Panics if a multicast destination names an unregistered group or the
    /// source is not a member of the group.
    pub fn inject(&mut self, msg: NetMessage<P>) -> Result<(), InjectError> {
        match msg.dest {
            Destination::Unicast(dest) if dest == msg.src => {
                self.stats.injected_messages += 1;
                let delivered = Delivered {
                    receiver: dest,
                    injected_at: self.cycle,
                    ejected_at: self.cycle + 1,
                    latency: 1,
                    stops: 0,
                    msg,
                };
                self.stats
                    .record_delivery(delivered.msg.vn, 1, 0);
                self.eject_queues[dest.index()].push_back(delivered);
                Ok(())
            }
            Destination::Unicast(dest) => {
                if !self.can_inject(msg.src, msg.vn) {
                    return Err(InjectError);
                }
                self.stats.injected_messages += 1;
                let flight = self.new_flight(&msg, msg.src, dest, 0);
                self.packets.insert(
                    flight.id,
                    PacketRecord {
                        msg,
                        travelling: None,
                    },
                );
                self.fabric.as_engine().inject(flight, self.cycle);
                Ok(())
            }
            Destination::Multicast(group) => {
                assert!(
                    (group.0 as usize) < self.groups.len(),
                    "unregistered multicast group {group:?}"
                );
                if !self.can_inject(msg.src, msg.vn) {
                    return Err(InjectError);
                }
                assert!(
                    self.groups[group.0 as usize].contains(msg.src),
                    "multicast source {} is not a member of its group",
                    msg.src
                );
                self.stats.injected_messages += 1;
                let children = self.groups[group.0 as usize].children(msg.src, None);
                for (dir, next) in children {
                    let flight = self.new_flight(&msg, msg.src, next, 0);
                    self.packets.insert(
                        flight.id,
                        PacketRecord {
                            msg: msg.clone(),
                            travelling: Some(dir),
                        },
                    );
                    self.stats.multicast_forks += 1;
                    self.fabric.as_engine().inject(flight, self.cycle);
                }
                Ok(())
            }
        }
    }

    fn new_flight(&mut self, msg: &NetMessage<P>, src: NodeId, dest: NodeId, stops: u32) -> FlightInfo {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        FlightInfo {
            id,
            src,
            dest,
            vn: msg.vn,
            flits: self.cfg.flits_for(msg.size_bytes),
            injected_at: self.cycle,
            stops,
        }
    }

    /// Advances the network by one cycle.
    pub fn tick(&mut self) {
        let mut arrivals = Vec::new();
        self.fabric.as_engine().tick(self.cycle, &mut arrivals);
        self.pending.append(&mut arrivals);
        self.cycle += 1;
        // Release arrivals whose (possibly multi-flit) arrival time has been
        // reached.
        let due: Vec<Arrival> = {
            let cycle = self.cycle;
            let (ready, later): (Vec<Arrival>, Vec<Arrival>) =
                self.pending.drain(..).partition(|a| a.now <= cycle);
            self.pending = later;
            ready
        };
        for arrival in due {
            self.complete(arrival);
        }
    }

    fn complete(&mut self, arrival: Arrival) {
        let record = self
            .packets
            .remove(&arrival.flight.id)
            .expect("arrival for unknown packet");
        let latency = arrival.now.saturating_sub(arrival.flight.injected_at);
        self.stats
            .record_delivery(record.msg.vn, latency, arrival.flight.stops);
        // Multicast: spawn children before delivering this copy.
        if let (Destination::Multicast(group), Some(dir)) = (record.msg.dest, record.travelling) {
            let children = self.groups[group.0 as usize].children(arrival.at, Some(dir));
            for (cdir, next) in children {
                let flight = FlightInfo {
                    id: PacketId(self.next_packet),
                    src: arrival.at,
                    dest: next,
                    vn: record.msg.vn,
                    flits: arrival.flight.flits,
                    injected_at: arrival.flight.injected_at,
                    stops: arrival.flight.stops,
                };
                self.next_packet += 1;
                self.packets.insert(
                    flight.id,
                    PacketRecord {
                        msg: record.msg.clone(),
                        travelling: Some(cdir),
                    },
                );
                self.stats.multicast_forks += 1;
                self.fabric.as_engine().inject(flight, self.cycle);
            }
        }
        let delivered = Delivered {
            receiver: arrival.at,
            injected_at: arrival.flight.injected_at,
            ejected_at: arrival.now,
            latency,
            stops: arrival.flight.stops,
            msg: record.msg,
        };
        self.eject_queues[arrival.at.index()].push_back(delivered);
    }

    /// Drains all messages delivered at `node`.
    pub fn eject(&mut self, node: NodeId) -> Vec<Delivered<P>> {
        self.eject_queues[node.index()].drain(..).collect()
    }

    /// Drains all delivered messages across every node.
    pub fn eject_all(&mut self) -> Vec<Delivered<P>> {
        let mut out = Vec::new();
        for q in &mut self.eject_queues {
            out.extend(q.drain(..));
        }
        out
    }

    /// Whether any packet is still inside the fabric or waiting in an
    /// ejection queue.
    pub fn is_busy(&self) -> bool {
        self.in_flight() > 0 || self.eject_queues.iter().any(|q| !q.is_empty())
    }

    /// Number of packets currently travelling through the fabric (including
    /// arrivals not yet released to an ejection queue), excluding already
    /// delivered messages waiting to be ejected.
    pub fn in_flight(&self) -> usize {
        self.fabric.as_engine_ref().in_flight() + self.pending.len()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Total router-buffer writes performed by the fabric (a proxy for
    /// buffer energy; SMART's raison d'être is keeping this low).
    pub fn buffer_writes(&self) -> u64 {
        self.fabric.as_engine_ref().buffer_writes()
    }
}

impl<P> fmt::Debug for Network<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("cfg", &self.cfg)
            .field("cycle", &self.cycle)
            .field("in_flight", &self.packets.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Coord, Mesh};
    use crate::vms::VirtualMesh;

    fn run_until_quiet<P: Clone>(net: &mut Network<P>, limit: u64) {
        let mut cycles = 0;
        loop {
            net.tick();
            cycles += 1;
            assert!(cycles < limit, "network did not drain within {limit} cycles");
            if net.in_flight() == 0 {
                break;
            }
        }
    }

    #[test]
    fn unicast_delivery_on_all_router_kinds() {
        for cfg in [
            NocConfig::smart_mesh(8, 8, 4),
            NocConfig::conventional_mesh(8, 8),
            NocConfig::highradix_mesh(8, 8, 4),
        ] {
            let mut net: Network<u32> = Network::new(cfg);
            net.inject(NetMessage::unicast(
                NodeId(0),
                NodeId(63),
                VirtualNetwork::Request,
                8,
                7,
            ))
            .unwrap();
            let mut got = Vec::new();
            for _ in 0..200 {
                net.tick();
                got.extend(net.eject(NodeId(63)));
                if !got.is_empty() {
                    break;
                }
            }
            assert_eq!(got.len(), 1, "router {:?}", cfg.router);
            assert_eq!(got[0].msg.payload, 7);
            assert!(got[0].latency > 0);
        }
    }

    #[test]
    fn self_message_is_delivered_locally() {
        let mut net: Network<&str> = Network::new(NocConfig::smart_mesh(4, 4, 4));
        net.inject(NetMessage::unicast(
            NodeId(5),
            NodeId(5),
            VirtualNetwork::Response,
            40,
            "hi",
        ))
        .unwrap();
        let got = net.eject(NodeId(5));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].latency, 1);
    }

    #[test]
    fn vms_broadcast_reaches_every_other_home_node() {
        let mesh = Mesh::new(8, 8);
        let vms = VirtualMesh::new(mesh, 4, 4, Coord::new(1, 1));
        let mut net: Network<u8> = Network::new(NocConfig::smart_mesh(8, 8, 4));
        let group = net.register_multicast_group(vms.members().to_vec());
        let root = vms.home_for(NodeId(0));
        net.inject(NetMessage::multicast(
            root,
            group,
            VirtualNetwork::Broadcast,
            8,
            1,
        ))
        .unwrap();
        run_until_quiet(&mut net, 500);
        let mut receivers = Vec::new();
        for &m in vms.members() {
            for d in net.eject(m) {
                receivers.push(d.receiver);
                // Figure 3: the whole broadcast completes within a handful of
                // SMART-hops; allow some slack for fork arbitration.
                assert!(d.latency <= 20, "latency {}", d.latency);
            }
        }
        receivers.sort_unstable();
        let mut expected: Vec<NodeId> = vms
            .members()
            .iter()
            .copied()
            .filter(|&m| m != root)
            .collect();
        expected.sort_unstable();
        assert_eq!(receivers, expected);
    }

    #[test]
    fn broadcast_on_16_cluster_vms_covers_all() {
        let mesh = Mesh::new(16, 16);
        let vms = VirtualMesh::new(mesh, 4, 4, Coord::new(0, 0));
        let mut net: Network<u8> = Network::new(NocConfig::smart_mesh(16, 16, 4));
        let group = net.register_multicast_group(vms.members().to_vec());
        let root = vms.members()[0];
        net.inject(NetMessage::multicast(
            root,
            group,
            VirtualNetwork::Broadcast,
            8,
            0,
        ))
        .unwrap();
        run_until_quiet(&mut net, 2000);
        let delivered: usize = vms.members().iter().map(|&m| net.eject(m).len()).sum();
        assert_eq!(delivered, 15);
    }

    #[test]
    fn stats_accumulate() {
        let mut net: Network<u8> = Network::new(NocConfig::smart_mesh(4, 4, 4));
        for i in 0..4u16 {
            net.inject(NetMessage::unicast(
                NodeId(i),
                NodeId(15 - i),
                VirtualNetwork::Request,
                8,
                0,
            ))
            .unwrap();
        }
        run_until_quiet(&mut net, 500);
        net.eject_all();
        assert_eq!(net.stats().injected_messages, 4);
        assert_eq!(net.stats().delivered_copies, 4);
        assert!(net.stats().avg_latency() > 0.0);
    }

    #[test]
    fn backpressure_limits_injection() {
        let cfg = NocConfig::smart_mesh(4, 4, 4);
        let mut net: Network<u8> = Network::new(cfg);
        let mut accepted = 0;
        // Flood a single source without ever ticking; eventually the
        // injection queue fills up.
        for _ in 0..1000 {
            match net.inject(NetMessage::unicast(
                NodeId(0),
                NodeId(15),
                VirtualNetwork::Request,
                8,
                0,
            )) {
                Ok(()) => accepted += 1,
                Err(InjectError) => break,
            }
        }
        assert!(accepted >= cfg.vn_buffer_capacity() as u64);
        assert!(accepted < 1000);
    }
}
