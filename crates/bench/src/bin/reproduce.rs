//! Regenerates every table and figure of the LOCO ASPLOS 2014 evaluation.
//!
//! ```text
//! cargo run --release -p loco-bench --bin reproduce -- [--scale quick|64|256]
//!     [--fig 6|7|8|9|10|11|12|13|14|15|16|all] [--mem-ops N] [--json DIR]
//! ```
//!
//! Output is a text table per figure (series labels match the paper's
//! legends); `--json DIR` additionally dumps each figure as JSON so
//! EXPERIMENTS.md can be refreshed mechanically.

use loco::{ClusterShape, Figure, Runner};
use loco_bench::{benchmarks_for, fullsystem_benchmarks_for, Scale};
use std::io::Write;
use std::time::Instant;

struct Options {
    scale: Scale,
    figures: Vec<u32>,
    mem_ops: Option<u64>,
    json_dir: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        scale: Scale::Cores64,
        figures: (6..=16).collect(),
        mem_ops: None,
        json_dir: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                opts.scale = Scale::parse(&args[i]).unwrap_or_else(|| {
                    eprintln!("unknown scale '{}', expected quick|64|256", args[i]);
                    std::process::exit(2);
                });
            }
            "--fig" => {
                i += 1;
                if args[i] == "all" {
                    opts.figures = (6..=16).collect();
                } else {
                    opts.figures = args[i]
                        .split(',')
                        .map(|f| {
                            f.parse().unwrap_or_else(|_| {
                                eprintln!("unknown figure '{f}'");
                                std::process::exit(2);
                            })
                        })
                        .collect();
                }
            }
            "--mem-ops" => {
                i += 1;
                opts.mem_ops = Some(args[i].parse().expect("--mem-ops takes a number"));
            }
            "--json" => {
                i += 1;
                opts.json_dir = Some(args[i].clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: reproduce [--scale quick|64|256] [--fig N|all] [--mem-ops N] [--json DIR]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

fn emit(fig: &Figure, json_dir: &Option<String>) {
    println!("{fig}");
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(dir).expect("create json output dir");
        let path = format!("{dir}/{}.json", fig.id);
        let mut f = std::fs::File::create(&path).expect("create json file");
        f.write_all(fig.to_json().as_bytes()).expect("write json");
        println!("  (wrote {path})\n");
    }
}

fn main() {
    let opts = parse_args();
    let mut params = opts.scale.params();
    if let Some(m) = opts.mem_ops {
        params = params.with_mem_ops(m);
    }
    let benchmarks = benchmarks_for(opts.scale);
    let fs_benchmarks = fullsystem_benchmarks_for(opts.scale);
    println!(
        "LOCO reproduction — scale {} ({} cores, {} memory ops/core)\n",
        opts.scale.label(),
        params.num_cores(),
        params.mem_ops_per_core
    );
    let mut runner = Runner::new(params);
    let start = Instant::now();

    for fig_no in &opts.figures {
        let t = Instant::now();
        match fig_no {
            6 => emit(&runner.fig06_private_vs_shared(&benchmarks), &opts.json_dir),
            7 => emit(&runner.fig07_l2_hit_latency(&benchmarks), &opts.json_dir),
            8 => emit(&runner.fig08_mpki(&benchmarks), &opts.json_dir),
            9 => emit(&runner.fig09_search_delay(&benchmarks), &opts.json_dir),
            10 => emit(&runner.fig10_offchip(&benchmarks), &opts.json_dir),
            11 => emit(&runner.fig11_runtime(&benchmarks), &opts.json_dir),
            12 => {
                emit(&runner.fig12_l2_latency(&benchmarks), &opts.json_dir);
                emit(&runner.fig12_search_delay(&benchmarks), &opts.json_dir);
            }
            13 => emit(&runner.fig13_noc_runtime(&benchmarks), &opts.json_dir),
            14 => {
                let shapes = if params.num_cores() < 64 {
                    vec![ClusterShape::new(2, 1), ClusterShape::new(4, 1), ClusterShape::new(2, 2)]
                } else {
                    vec![ClusterShape::new(4, 1), ClusterShape::new(8, 1), ClusterShape::new(4, 4)]
                };
                for fig in runner.fig14_cluster_size(&benchmarks, &shapes) {
                    emit(&fig, &opts.json_dir);
                }
            }
            15 => {
                let workloads: Vec<usize> = if params.num_cores() < 64 {
                    vec![0, 5]
                } else {
                    (0..10).collect()
                };
                let (off, run) = runner.fig15_multiprogram(&workloads);
                emit(&off, &opts.json_dir);
                emit(&run, &opts.json_dir);
            }
            16 => {
                emit(&runner.fig16_mpki(&fs_benchmarks), &opts.json_dir);
                emit(&runner.fig16_runtime(&fs_benchmarks), &opts.json_dir);
            }
            other => eprintln!("figure {other} is not part of the paper's evaluation"),
        }
        eprintln!("[figure {fig_no}: {:.1}s]", t.elapsed().as_secs_f64());
    }
    eprintln!(
        "\ntotal: {:.1}s, {} simulations",
        start.elapsed().as_secs_f64(),
        runner.simulations_run()
    );
}
