//! Off-chip memory controllers.
//!
//! Table 1: four controllers, one on each chip edge, 200-cycle access
//! latency. The controller services line fetches (`MemRead`) and dirty
//! writebacks (`MemWb`); bandwidth is modelled with a configurable minimum
//! inter-request gap per controller.
//!
//! LOCO's VMS read path sends the request to memory *in parallel* with the
//! on-chip broadcast (Section 3.4 of the paper); when an on-chip owner
//! responds first the requester cancels the speculative fetch with
//! `MemCancel`. A cancelled fetch never touches DRAM and is therefore not
//! counted as an off-chip access. Responses are released by
//! [`MemoryController::tick`], which the simulator calls every cycle.

use crate::address::LineAddr;
use crate::msg::{Agent, MsgKind, Outgoing, ProtocolMsg};
use crate::stats::CacheStats;
use loco_noc::NodeId;

/// Timing parameters of a memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// DRAM access latency (Table 1: 200 cycles).
    pub latency: u64,
    /// Minimum number of cycles between the start of two DRAM accesses at
    /// one controller (a simple bandwidth model; 0 disables it).
    pub min_gap: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            latency: 200,
            min_gap: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingRead {
    addr: LineAddr,
    requester_l2: NodeId,
    original: ProtocolMsg,
    fire_at: u64,
}

/// One off-chip memory controller.
#[derive(Debug)]
pub struct MemoryController {
    node: NodeId,
    cfg: MemoryConfig,
    next_free: u64,
    pending: Vec<PendingRead>,
    /// Cached `min(fire_at)` over `pending` (`u64::MAX` when empty), kept
    /// up to date by `handle`/`tick` so the event-driven scheduler's
    /// per-step horizon probe is O(1) instead of an O(pending) scan.
    next_fire: u64,
    stats: CacheStats,
}

impl MemoryController {
    /// Creates the memory controller at `node`.
    pub fn new(node: NodeId, cfg: MemoryConfig) -> Self {
        MemoryController {
            node,
            cfg,
            next_free: 0,
            pending: Vec::new(),
            next_fire: u64::MAX,
            stats: CacheStats::default(),
        }
    }

    /// The node this controller is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Statistics (off-chip fetches and writebacks).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of DRAM reads accepted but not yet completed or cancelled.
    pub fn pending_reads(&self) -> usize {
        self.pending.len()
    }

    /// The earliest cycle at which [`MemoryController::tick`] will release a
    /// DRAM response, or `None` when no access is outstanding. Event-driven
    /// simulation uses this to skip the dead cycles of the 200-cycle DRAM
    /// latency; the caller must step the controller at exactly this cycle,
    /// because that is when the naive per-cycle loop would have released the
    /// response. O(1): the scheduler probes this every stalled step, so the
    /// minimum is maintained incrementally by `handle`/`tick` instead of
    /// being rescanned here.
    pub fn next_event(&self) -> Option<u64> {
        debug_assert_eq!(
            self.next_fire,
            self.pending.iter().map(|p| p.fire_at).min().unwrap_or(u64::MAX),
            "cached next_fire out of sync with the pending list"
        );
        (self.next_fire != u64::MAX).then_some(self.next_fire)
    }

    /// Handles a protocol message addressed to this memory controller.
    pub fn handle(&mut self, msg: ProtocolMsg, now: u64, out: &mut Vec<Outgoing>) {
        match msg.kind {
            MsgKind::MemRead => {
                let start = now.max(self.next_free);
                self.next_free = start + self.cfg.min_gap;
                let fire_at = start + self.cfg.latency;
                self.next_fire = self.next_fire.min(fire_at);
                self.pending.push(PendingRead {
                    addr: msg.addr,
                    requester_l2: msg.src.node,
                    original: msg,
                    fire_at,
                });
            }
            MsgKind::MemCancel => {
                // Cancel a speculative fetch if it has not completed yet.
                if let Some(i) = self
                    .pending
                    .iter()
                    .position(|p| p.addr == msg.addr && p.requester_l2 == msg.src.node)
                {
                    let removed = self.pending.swap_remove(i);
                    // Rare path: only rescan if the cancelled fetch could
                    // have been the cached minimum.
                    if removed.fire_at == self.next_fire {
                        self.next_fire =
                            self.pending.iter().map(|p| p.fire_at).min().unwrap_or(u64::MAX);
                    }
                }
            }
            MsgKind::MemWb => {
                self.stats.offchip_writebacks += 1;
                let start = now.max(self.next_free);
                self.next_free = start + self.cfg.min_gap;
            }
            other => panic!("memory controller received unexpected message kind {other:?}"),
        }
        let _ = out;
    }

    /// Releases DRAM responses whose latency has elapsed. The simulator
    /// calls this once per cycle.
    pub fn tick(&mut self, now: u64, out: &mut Vec<Outgoing>) {
        // O(1) early-out on the cached minimum: nothing fires this cycle.
        if self.next_fire > now {
            return;
        }
        let mut i = 0;
        let mut remaining_min = u64::MAX;
        while i < self.pending.len() {
            if self.pending[i].fire_at <= now {
                let p = self.pending.swap_remove(i);
                self.stats.offchip_fetches += 1;
                out.push(Outgoing::after(
                    0,
                    ProtocolMsg::derived(
                        &p.original,
                        MsgKind::MemData,
                        Agent::mem(self.node),
                        Agent::l2(p.requester_l2),
                    ),
                ));
            } else {
                remaining_min = remaining_min.min(self.pending[i].fire_at);
                i += 1;
            }
        }
        // The release scan visited every survivor, so the new minimum comes
        // for free.
        self.next_fire = remaining_min;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::LineAddr;

    fn read(addr: u64, from_l2: u16) -> ProtocolMsg {
        ProtocolMsg {
            addr: LineAddr(addr),
            kind: MsgKind::MemRead,
            src: Agent::l2(NodeId(from_l2)),
            dst: Agent::mem(NodeId(4)),
            requester: NodeId(from_l2),
            issued_at: 0,
        }
    }

    fn drain(m: &mut MemoryController, until: u64) -> Vec<Outgoing> {
        let mut out = Vec::new();
        for now in 0..=until {
            m.tick(now, &mut out);
        }
        out
    }

    #[test]
    fn read_returns_data_after_dram_latency() {
        let mut m = MemoryController::new(NodeId(4), MemoryConfig::default());
        let mut out = Vec::new();
        m.handle(read(1, 10), 100, &mut out);
        assert!(out.is_empty(), "the response is released by tick()");
        assert_eq!(m.pending_reads(), 1);
        let early = drain(&mut m, 299);
        assert!(early.is_empty(), "no response before the 200-cycle latency");
        let mut out = Vec::new();
        m.tick(300, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.kind, MsgKind::MemData);
        assert_eq!(out[0].msg.dst, Agent::l2(NodeId(10)));
        assert_eq!(m.stats().offchip_fetches, 1);
        assert_eq!(m.pending_reads(), 0);
    }

    #[test]
    fn back_to_back_reads_respect_the_bandwidth_gap() {
        let mut m = MemoryController::new(NodeId(4), MemoryConfig { latency: 200, min_gap: 10 });
        let mut out = Vec::new();
        m.handle(read(1, 10), 0, &mut out);
        m.handle(read(2, 11), 0, &mut out);
        m.handle(read(3, 12), 0, &mut out);
        // Fired at 200, 210 and 220 respectively.
        let mut out = Vec::new();
        m.tick(200, &mut out);
        assert_eq!(out.len(), 1);
        m.tick(209, &mut out);
        assert_eq!(out.len(), 1);
        m.tick(210, &mut out);
        assert_eq!(out.len(), 2);
        m.tick(220, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn cancelled_speculative_fetch_is_not_counted() {
        let mut m = MemoryController::new(NodeId(4), MemoryConfig::default());
        let mut out = Vec::new();
        m.handle(read(7, 20), 0, &mut out);
        let cancel = ProtocolMsg {
            kind: MsgKind::MemCancel,
            ..read(7, 20)
        };
        m.handle(cancel, 30, &mut out);
        assert_eq!(m.pending_reads(), 0);
        let late = drain(&mut m, 500);
        assert!(late.is_empty());
        assert_eq!(m.stats().offchip_fetches, 0);
    }

    #[test]
    fn cancel_after_completion_is_ignored() {
        let mut m = MemoryController::new(NodeId(4), MemoryConfig::default());
        let mut out = Vec::new();
        m.handle(read(7, 20), 0, &mut out);
        let fired = drain(&mut m, 250);
        assert_eq!(fired.len(), 1);
        let cancel = ProtocolMsg {
            kind: MsgKind::MemCancel,
            ..read(7, 20)
        };
        m.handle(cancel, 260, &mut out);
        assert_eq!(m.stats().offchip_fetches, 1);
    }

    #[test]
    fn writebacks_are_counted_and_produce_no_reply() {
        let mut m = MemoryController::new(NodeId(4), MemoryConfig::default());
        let mut out = Vec::new();
        let wb = ProtocolMsg {
            kind: MsgKind::MemWb,
            ..read(9, 10)
        };
        m.handle(wb, 0, &mut out);
        assert!(out.is_empty());
        assert_eq!(m.stats().offchip_writebacks, 1);
    }

    #[test]
    #[should_panic(expected = "unexpected message")]
    fn rejects_non_memory_messages() {
        let mut m = MemoryController::new(NodeId(4), MemoryConfig::default());
        let mut out = Vec::new();
        let bad = ProtocolMsg {
            kind: MsgKind::GetS,
            ..read(9, 10)
        };
        m.handle(bad, 0, &mut out);
    }
}
