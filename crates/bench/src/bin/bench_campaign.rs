//! Times the quickstart campaign (`lu` on full LOCO and on the shared-cache
//! baseline) plus the stall-heavy stress scenarios (barrier-phased and
//! DRAM-bound, Figure 19 — the workloads the event-driven scheduler's
//! fine-grained skip horizon targets) and writes the timings to
//! `BENCH_results.json`, so the simulator's perf trajectory is tracked
//! across PRs. It also times the full quick-scale figure campaign (figures
//! 6–19, including the energy and stress figures, every scenario
//! deduplicated) under the parallel
//! `loco::campaign::Executor` at 1/2/4/8
//! workers — the thread-scaling trajectory of the campaign engine — and
//! asserts the assembled figures are identical for every worker count.
//!
//! Each campaign entry is timed in both execution modes — the event-driven
//! cycle-skipping scheduler (`CmpSystem::run`, the product path) and naive
//! per-cycle stepping (`CmpSystem::run_naive`, the reference semantics) —
//! and the two are asserted bit-identical. The headline number is the
//! event-driven total; it is compared against a *baseline*:
//!
//! * `--baseline-ms N --baseline-label TEXT` seeds an explicit baseline
//!   (used once, to record the pre-PR wall clock when this tracking was
//!   introduced);
//! * otherwise, if the `--out` file already exists, its event-driven total
//!   becomes the baseline, so each PR's run reports its speedup over the
//!   previous committed numbers.
//!
//! ```text
//! cargo run --release -p loco-bench --bin bench_campaign -- [--quick] \
//!     [--samples N] [--out PATH] [--baseline-ms N] [--baseline-label TEXT]
//! ```
//!
//! `--quick` shrinks the campaign to a 16-core smoke run (what
//! `scripts/verify.sh` exercises); the default full scale is the paper's
//! 64-core CMP, exactly as `examples/quickstart.rs` runs it.

use loco::campaign::{stall_stress_system, CampaignPlan, Executor};
use loco::json::{parse, Value};
use loco::{
    Benchmark, ExperimentParams, Figure, OrganizationKind, RouterKind, SimulationBuilder, StressKind,
};
use loco_bench::timing::Summary;
use loco_bench::{figure_specs, Scale, FIGURE_NUMBERS};
use std::time::{Duration, Instant};

struct Args {
    quick: bool,
    samples: usize,
    out: String,
    baseline_ms: Option<f64>,
    baseline_label: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        samples: 3,
        out: "BENCH_results.json".to_string(),
        baseline_ms: None,
        baseline_label: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--samples" => {
                let v = it.next().expect("--samples needs a value");
                args.samples = v.parse().expect("--samples needs an integer");
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--baseline-ms" => {
                let v = it.next().expect("--baseline-ms needs a value");
                args.baseline_ms = Some(v.parse().expect("--baseline-ms needs a number"));
            }
            "--baseline-label" => {
                args.baseline_label = Some(it.next().expect("--baseline-label needs text"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_campaign [--quick] [--samples N] [--out PATH] \
                     [--baseline-ms N] [--baseline-label TEXT]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(args.samples > 0, "--samples must be positive");
    args
}

fn builder(org: OrganizationKind, quick: bool) -> SimulationBuilder {
    let b = SimulationBuilder::new()
        .benchmark(Benchmark::Lu)
        .organization(org);
    if quick {
        b.mesh(4, 4).cluster(2, 2).memory_ops_per_core(300)
    } else {
        b.memory_ops_per_core(1_000)
    }
}

/// Times `samples` fresh runs (after one untimed warm-up whose results
/// double as the determinism oracle) and returns the durations plus the
/// oracle's debug rendering.
fn time_runs(
    b: &SimulationBuilder,
    samples: usize,
    run: impl Fn(&mut loco::CmpSystem) -> loco::SimResults,
) -> (Vec<Duration>, String) {
    let reference = format!("{:?}", run(&mut b.build()));
    let mut durations = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut sys = b.build();
        let start = Instant::now();
        let results = run(&mut sys);
        durations.push(start.elapsed());
        assert_eq!(
            format!("{results:?}"),
            reference,
            "nondeterministic simulation results"
        );
    }
    (durations, reference)
}

fn ms(d: Duration) -> Value {
    Value::Number(d.as_secs_f64() * 1e3)
}

fn summary_json(s: &Summary) -> Value {
    Value::Object(vec![
        ("median_ms".into(), ms(s.median)),
        ("mean_ms".into(), ms(s.mean)),
        ("min_ms".into(), ms(s.min)),
        ("max_ms".into(), ms(s.max)),
        ("stddev_ms".into(), ms(s.stddev)),
    ])
}

/// Times the quick-scale figure campaign (figures 6–19) at 1/2/4/8 executor
/// workers, asserting the assembled figures are identical for every worker
/// count, and returns the JSON record for `BENCH_results.json`.
fn time_campaign_scaling(samples: usize) -> Value {
    let scale = Scale::Quick;
    let params = ExperimentParams::quick();
    // The full figure range including the energy figures (17/18). Those add
    // no scenarios of their own — they ride the axes figures 6–16 already
    // enumerate — so this also measures the counter-plumbing overhead of
    // the energy subsystem on an unchanged plan.
    let all_figures: Vec<u32> = FIGURE_NUMBERS.collect();
    let specs = figure_specs(scale, &all_figures, None);
    let mut plan = CampaignPlan::new();
    for spec in &specs {
        plan.add_figure(spec, &params);
    }
    let assemble = |results: &loco::ResultSet| -> Vec<Figure> {
        specs
            .iter()
            .flat_map(|s| s.assemble(&params, results))
            .collect()
    };
    // Untimed 1-thread warm-up doubles as the determinism oracle.
    let reference = assemble(&Executor::new(1).execute(&params, &plan));

    let mut rows = Vec::new();
    let mut median_1t: Option<Duration> = None;
    let mut median_4t: Option<Duration> = None;
    for &threads in &[1usize, 2, 4, 8] {
        let executor = Executor::new(threads);
        let mut durations = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            let results = executor.execute(&params, &plan);
            durations.push(start.elapsed());
            assert_eq!(
                assemble(&results),
                reference,
                "figures diverged at {threads} executor workers"
            );
        }
        let summary = Summary::from_samples(&durations).expect("samples > 0");
        println!(
            "campaign quick/fig06-19  {threads} worker(s): {:>10.1?} (median, {} scenarios)",
            summary.median,
            plan.len()
        );
        if threads == 1 {
            median_1t = Some(summary.median);
        }
        if threads == 4 {
            median_4t = Some(summary.median);
        }
        rows.push(Value::Object(vec![
            ("threads".into(), Value::Number(threads as f64)),
            ("summary".into(), summary_json(&summary)),
            ("figures_identical".into(), Value::Bool(true)),
        ]));
    }
    let speedup_4t =
        median_1t.expect("1-thread row").as_secs_f64() / median_4t.expect("4-thread row").as_secs_f64();
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "campaign scaling         4-worker speedup {speedup_4t:.2}x over 1 worker \
         ({hardware} hardware thread(s) available)"
    );
    Value::Object(vec![
        ("campaign".into(), Value::String("quick figures 6-19 (plan/execute/assemble)".into())),
        ("scenarios".into(), Value::Number(plan.len() as f64)),
        ("hardware_threads".into(), Value::Number(hardware as f64)),
        ("rows".into(), Value::Array(rows)),
        ("speedup_4_threads".into(), Value::Number(speedup_4t)),
    ])
}

/// Times the stall-heavy stress scenarios (the Figure-19 configurations) in
/// both execution modes. These runs spend most of their cycles in globally
/// quiet phases with stragglers still inside the NoC — the phases the
/// fine-grained skip horizon (PR 5) opened — so the event-driven/naive gap
/// here is the scheduler's headline on its target workloads.
fn time_stall_scenarios(samples: usize, quick: bool) -> Value {
    let params = if quick {
        ExperimentParams::quick()
    } else {
        // The stress mesh is fixed at 4x4 by the scenario; the paper-scale
        // entry only lengthens the traces.
        ExperimentParams::quick().with_mem_ops(2_000)
    };
    let max_cycles = 50_000_000;
    let mut rows = Vec::new();
    for kind in StressKind::ALL {
        let build = || stall_stress_system(&params, kind, RouterKind::Smart);
        // Untimed warm-up doubles as the determinism + equivalence oracle.
        let mut oracle = build();
        let reference = format!("{:?}", oracle.run(max_cycles));
        let skipped_busy = oracle.skipped_while_busy();
        assert_eq!(
            reference,
            format!("{:?}", build().run_naive(max_cycles)),
            "{kind:?}: event-driven run diverged from naive stepping"
        );
        let timed = |run: &dyn Fn(&mut loco::CmpSystem) -> loco::SimResults| -> Summary {
            let mut durations = Vec::with_capacity(samples);
            for _ in 0..samples {
                let mut sys = build();
                let start = Instant::now();
                let results = run(&mut sys);
                durations.push(start.elapsed());
                assert_eq!(format!("{results:?}"), reference, "nondeterministic results");
            }
            Summary::from_samples(&durations).expect("samples > 0")
        };
        let es = timed(&|s| s.run(max_cycles));
        let ns = timed(&|s| s.run_naive(max_cycles));
        let speedup = ns.median.as_secs_f64() / es.median.as_secs_f64().max(1e-9);
        println!(
            "stress/{:<15} event-driven {:>10.1?} (median)  naive-stepping {:>10.1?} (median)  \
             {speedup:.2}x  ({skipped_busy} cycles skipped with packets in flight)",
            kind.name(),
            es.median,
            ns.median
        );
        rows.push(Value::Object(vec![
            ("scenario".into(), Value::String(format!("stress-{}", kind.name()))),
            ("event_driven".into(), summary_json(&es)),
            ("naive_stepping".into(), summary_json(&ns)),
            ("speedup_event_vs_naive".into(), Value::Number(speedup)),
            (
                "skipped_while_busy_cycles".into(),
                Value::Number(skipped_busy as f64),
            ),
            ("results_identical".into(), Value::Bool(true)),
        ]));
    }
    Value::Array(rows)
}

/// The baseline to compare against: explicit flag, else the previous
/// `--out` file's event-driven total.
fn resolve_baseline(args: &Args) -> Option<(f64, String)> {
    if let Some(v) = args.baseline_ms {
        let label = args
            .baseline_label
            .clone()
            .unwrap_or_else(|| "explicit baseline".into());
        return Some((v, label));
    }
    let text = std::fs::read_to_string(&args.out).ok()?;
    let doc = parse(&text).ok()?;
    let prev = doc.get("total")?.get("event_driven_median_ms")?.as_f64()?;
    let scale = doc.get("scale")?.as_str()?.to_string();
    Some((prev, format!("previous BENCH_results.json ({scale})")))
}

fn main() {
    let args = parse_args();
    let baseline = resolve_baseline(&args);
    let max_cycles = 50_000_000;
    let orgs = [
        ("loco_cc_vms_ivr", OrganizationKind::LocoCcVmsIvr),
        ("shared", OrganizationKind::Shared),
    ];

    let mut runs = Vec::new();
    let mut naive_total = Duration::ZERO;
    let mut event_total = Duration::ZERO;
    for (name, org) in orgs {
        let b = builder(org, args.quick);
        let (naive, naive_ref) = time_runs(&b, args.samples, |s| s.run_naive(max_cycles));
        let (event, event_ref) = time_runs(&b, args.samples, |s| s.run(max_cycles));
        assert_eq!(
            naive_ref, event_ref,
            "{name}: event-driven run diverged from naive stepping"
        );
        let ns = Summary::from_samples(&naive).expect("samples > 0");
        let es = Summary::from_samples(&event).expect("samples > 0");
        naive_total += ns.median;
        event_total += es.median;
        println!(
            "lu/{name:<16} event-driven {:>10.1?} (median)  naive-stepping {:>10.1?} (median)",
            es.median, ns.median
        );
        runs.push(Value::Object(vec![
            ("benchmark".into(), Value::String("lu".into())),
            ("organization".into(), Value::String(name.into())),
            ("event_driven".into(), summary_json(&es)),
            ("naive_stepping".into(), summary_json(&ns)),
            ("results_identical".into(), Value::Bool(true)),
        ]));
    }

    let mut total_fields = vec![
        ("event_driven_median_ms".into(), ms(event_total)),
        ("naive_stepping_median_ms".into(), ms(naive_total)),
    ];
    let mut baseline_value = Value::Null;
    if let Some((base_ms, label)) = &baseline {
        let speedup = base_ms / (event_total.as_secs_f64() * 1e3);
        println!(
            "campaign total           event-driven {event_total:>10.1?} vs baseline {base_ms:.1}ms \
             ({label}): speedup {speedup:.2}x"
        );
        total_fields.push(("speedup_vs_baseline".into(), Value::Number(speedup)));
        baseline_value = Value::Object(vec![
            ("median_ms".into(), Value::Number(*base_ms)),
            ("label".into(), Value::String(label.clone())),
        ]);
    } else {
        println!("campaign total           event-driven {event_total:>10.1?} (no baseline on record)");
    }

    let stall_scenarios = time_stall_scenarios(args.samples, args.quick);
    let campaign_scaling = time_campaign_scaling(args.samples);

    let doc = Value::Object(vec![
        ("schema".into(), Value::String("loco-bench-campaign/2".into())),
        (
            "campaign".into(),
            Value::String("quickstart (lu, LOCO CC+VMS+IVR vs shared)".into()),
        ),
        (
            "scale".into(),
            Value::String(if args.quick { "quick-16-core" } else { "paper-64-core" }.into()),
        ),
        ("samples_per_mode".into(), Value::Number(args.samples as f64)),
        ("baseline".into(), baseline_value),
        ("runs".into(), Value::Array(runs)),
        ("total".into(), Value::Object(total_fields)),
        ("stall_scenarios".into(), stall_scenarios),
        ("campaign_scaling".into(), campaign_scaling),
    ]);
    std::fs::write(&args.out, doc.to_pretty() + "\n").expect("write BENCH results");
    println!("wrote {}", args.out);
}
