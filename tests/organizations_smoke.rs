//! Smoke coverage of all five cache organizations: each one must run a
//! 4x4-mesh workload to completion (no deadlock), execute real memory
//! traffic, and advance its cycle count monotonically.

use loco::{Benchmark, OrganizationKind, SimulationBuilder};

const ALL_ORGANIZATIONS: [OrganizationKind; 5] = [
    OrganizationKind::Private,
    OrganizationKind::Shared,
    OrganizationKind::LocoCc,
    OrganizationKind::LocoCcVms,
    OrganizationKind::LocoCcVmsIvr,
];

#[test]
fn every_organization_runs_to_completion_on_a_4x4_mesh() {
    for org in ALL_ORGANIZATIONS {
        let builder = SimulationBuilder::new()
            .mesh(4, 4)
            .cluster(2, 2)
            .organization(org)
            .benchmark(Benchmark::Lu)
            .memory_ops_per_core(250)
            .seed(1);

        // Drive the system step by step so the cycle counter itself is
        // under test, with a hard cap standing in for deadlock detection.
        let mut system = builder.build();
        let mut last_cycle = system.cycle();
        let mut steps = 0u64;
        while !system.all_finished() {
            system.step();
            assert!(
                system.cycle() > last_cycle,
                "{org:?}: cycle count must advance monotonically"
            );
            last_cycle = system.cycle();
            steps += 1;
            assert!(
                steps < 5_000_000,
                "{org:?}: did not finish within the step budget (deadlock?)"
            );
        }

        let results = system.results();
        assert!(results.completed, "{org:?}: run must complete");
        assert!(
            results.cache.l1_accesses > 0,
            "{org:?}: must execute memory operations"
        );
        assert!(
            results.runtime_cycles >= 1_000,
            "{org:?}: a few thousand cycles of real work expected, got {}",
            results.runtime_cycles
        );
        assert!(results.instructions > 0, "{org:?}");
        // `cycle()` advances one past the step in which the last core
        // finished; `runtime_cycles` records the finish time itself.
        assert!(
            results.runtime_cycles <= last_cycle
                && last_cycle - results.runtime_cycles <= 1,
            "{org:?}: reported runtime {} must track the stepped cycle count {last_cycle}",
            results.runtime_cycles
        );
    }
}

#[test]
fn organizations_differ_in_behavior_not_just_labels() {
    // The five organizations must actually behave differently: compare
    // off-chip traffic and runtime across them for one workload.
    let mut signatures = Vec::new();
    for org in ALL_ORGANIZATIONS {
        let r = SimulationBuilder::new()
            .mesh(4, 4)
            .cluster(2, 2)
            .organization(org)
            .benchmark(Benchmark::Barnes)
            .memory_ops_per_core(400)
            .seed(3)
            .run();
        assert!(r.completed, "{org:?}");
        signatures.push((org, r.runtime_cycles, r.offchip_accesses));
    }
    let distinct: std::collections::HashSet<u64> =
        signatures.iter().map(|(_, cycles, _)| *cycles).collect();
    assert!(
        distinct.len() >= 3,
        "organizations should produce distinct runtimes: {signatures:?}"
    );
}
