#!/usr/bin/env sh
# Times the quickstart campaign (lu on full LOCO and on the shared-cache
# baseline) plus the quick figure campaign under the parallel executor at
# 1/2/4/8 workers (the thread-scaling trajectory), and records the numbers
# in BENCH_results.json, comparing against the previously committed numbers
# so the perf trajectory is tracked across PRs. All arguments are forwarded
# to the bench_campaign binary:
#
#   scripts/bench.sh                 # full 64-core campaign -> BENCH_results.json
#   scripts/bench.sh --quick --samples 1 --out target/BENCH_smoke.json
#
# See `bench_campaign --help` for --baseline-ms / --baseline-label (used once
# to seed the trajectory with the pre-PR wall clock).
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -q -p loco-bench --bin bench_campaign
exec ./target/release/bench_campaign "$@"
