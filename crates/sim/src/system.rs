//! The simulated CMP: cores, caches, directories, memory controllers and the
//! NoC, advanced cycle by cycle.

use crate::config::SystemConfig;
use crate::core::{CoreModel, CoreStatus};
use crate::results::SimResults;
use loco_cache::{
    CacheStats, DirectoryController, L1Controller, L2Controller, MemoryController, MemoryMap,
    MsgKind, Organization, Outgoing, ProtocolMsg, ResponseSource, Unit,
};
use loco_noc::{Delivered, Destination, MulticastGroupId, NetMessage, Network, NodeId};
use loco_workloads::CoreTrace;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// A protocol message waiting out its local processing delay before being
/// injected into the network at `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    ready: u64,
    seq: u64,
    node: NodeId,
    msg: ProtocolMsg,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready, self.seq).cmp(&(other.ready, other.seq))
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct BarrierTracker {
    group_sizes: HashMap<usize, usize>,
    arrivals: HashMap<(usize, u32), HashSet<usize>>,
}

impl BarrierTracker {
    /// Registers an arrival; returns `true` if the barrier is now complete.
    fn arrive(&mut self, group: usize, id: u32, core: usize) -> bool {
        let set = self.arrivals.entry((group, id)).or_default();
        set.insert(core);
        set.len() >= self.group_sizes.get(&group).copied().unwrap_or(usize::MAX)
    }

    fn release(&mut self, group: usize, id: u32) -> Vec<usize> {
        self.arrivals
            .remove(&(group, id))
            .map(|s| s.into_iter().collect())
            .unwrap_or_default()
    }
}

/// A full simulated chip multiprocessor.
pub struct CmpSystem {
    cfg: SystemConfig,
    org: Organization,
    memmap: MemoryMap,
    network: Network<ProtocolMsg>,
    cores: Vec<CoreModel>,
    l1s: Vec<L1Controller>,
    l2s: Vec<L2Controller>,
    dirs: HashMap<NodeId, DirectoryController>,
    mems: HashMap<NodeId, MemoryController>,
    vms_groups: HashMap<u64, MulticastGroupId>,
    pending: BinaryHeap<Reverse<Pending>>,
    retry: VecDeque<NetMessage<ProtocolMsg>>,
    barriers: BarrierTracker,
    now: u64,
    seq: u64,
    // System-level latency accounting (attributed at L1 fill time).
    l2_hit_latency_sum: u64,
    l2_hit_latency_count: u64,
    miss_latency_sum: u64,
    miss_latency_count: u64,
}

impl CmpSystem {
    /// Builds a system where core `i` replays `traces[i]`; all cores belong
    /// to barrier group 0.
    ///
    /// # Panics
    ///
    /// Panics if there are more traces than tiles.
    pub fn new(cfg: SystemConfig, traces: Vec<CoreTrace>) -> Self {
        let n = traces.len();
        Self::with_groups(cfg, traces, vec![0; n])
    }

    /// Builds a system with an explicit barrier/task group per core
    /// (multi-program workloads map each task instance to its own group).
    ///
    /// # Panics
    ///
    /// Panics if there are more traces than tiles or the group vector length
    /// does not match.
    pub fn with_groups(cfg: SystemConfig, mut traces: Vec<CoreTrace>, mut groups: Vec<usize>) -> Self {
        let cores_n = cfg.num_cores();
        assert!(
            traces.len() <= cores_n,
            "{} traces for a {}-core system",
            traces.len(),
            cores_n
        );
        assert_eq!(traces.len(), groups.len(), "one group per trace");
        traces.resize(cores_n, CoreTrace::default());
        groups.resize(cores_n, usize::MAX);
        let org = cfg.organization();
        let memmap = cfg.memory_map();
        let mut network = Network::new(cfg.noc_config());

        // Pre-register one multicast group per virtual mesh (one per HNid).
        let mut vms_groups = HashMap::new();
        if org.uses_vms() {
            for hnid in 0..org.num_vms() as u64 {
                let members = org.vms_members(loco_cache::LineAddr(hnid));
                let id = network.register_multicast_group(members);
                vms_groups.insert(hnid, id);
            }
        }

        let mut barriers = BarrierTracker::default();
        for (i, g) in groups.iter().enumerate() {
            if !traces[i].ops().is_empty() {
                *barriers.group_sizes.entry(*g).or_insert(0) += 1;
            }
        }

        let cores: Vec<CoreModel> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| CoreModel::new(NodeId(i as u16), t, groups[i]))
            .collect();
        let l1s: Vec<L1Controller> = (0..cores_n)
            .map(|i| L1Controller::new(NodeId(i as u16), cfg.l1, org))
            .collect();
        let l2s: Vec<L2Controller> = (0..cores_n)
            .map(|i| L2Controller::new(NodeId(i as u16), cfg.l2, org, memmap.clone()))
            .collect();
        let dirs: HashMap<NodeId, DirectoryController> = memmap
            .controllers()
            .iter()
            .map(|&n| (n, DirectoryController::new(n, cfg.dir, org)))
            .collect();
        let mems: HashMap<NodeId, MemoryController> = memmap
            .controllers()
            .iter()
            .map(|&n| (n, MemoryController::new(n, cfg.mem)))
            .collect();

        CmpSystem {
            cfg,
            org,
            memmap,
            network,
            cores,
            l1s,
            l2s,
            dirs,
            mems,
            vms_groups,
            pending: BinaryHeap::new(),
            retry: VecDeque::new(),
            barriers,
            now: 0,
            seq: 0,
            l2_hit_latency_sum: 0,
            l2_hit_latency_count: 0,
            miss_latency_sum: 0,
            miss_latency_count: 0,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Whether every core has finished its trace.
    pub fn all_finished(&self) -> bool {
        self.cores.iter().all(CoreModel::is_finished)
    }

    fn schedule(&mut self, node: NodeId, outgoing: Vec<Outgoing>) {
        for o in outgoing {
            self.seq += 1;
            self.pending.push(Reverse(Pending {
                ready: self.now + o.delay,
                seq: self.seq,
                node,
                msg: o.msg,
            }));
        }
    }

    fn to_net(&self, node: NodeId, msg: ProtocolMsg) -> NetMessage<ProtocolMsg> {
        let dest = match msg.kind {
            MsgKind::BcastGetS | MsgKind::BcastGetM => {
                let hnid = self.org.vms_id(msg.addr);
                let group = self.vms_groups[&hnid];
                Destination::Multicast(group)
            }
            _ => Destination::Unicast(msg.dst.node),
        };
        NetMessage {
            src: node,
            dest,
            vn: msg.kind.virtual_network(),
            size_bytes: msg.kind.size_bytes(),
            payload: msg,
        }
    }

    fn dispatch(&mut self, delivered: Delivered<ProtocolMsg>) {
        let node = delivered.receiver;
        let msg = delivered.msg.payload;
        let idx = node.index();
        let mut out = Vec::new();
        match msg.dst.unit {
            Unit::L1 => {
                if let Some(fill) = self.l1s[idx].handle(msg, self.now, &mut out) {
                    let latency = fill.completed_at.saturating_sub(fill.issued_at);
                    self.miss_latency_sum += latency;
                    self.miss_latency_count += 1;
                    if fill.source == ResponseSource::Home {
                        self.l2_hit_latency_sum += latency;
                        self.l2_hit_latency_count += 1;
                    }
                    self.cores[idx].on_fill();
                }
            }
            Unit::L2 => self.l2s[idx].handle(msg, self.now, &mut out),
            Unit::Dir => {
                self.dirs
                    .get_mut(&node)
                    .expect("directory at memory-controller node")
                    .handle(msg, self.now, &mut out);
            }
            Unit::Mem => {
                self.mems
                    .get_mut(&node)
                    .expect("memory controller node")
                    .handle(msg, self.now, &mut out);
            }
        }
        self.schedule(node, out);
    }

    /// Advances the system by one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        let model_barriers = self.cfg.full_system;

        // 1. Cores issue instructions.
        let mut completed_barriers: Vec<(usize, u32)> = Vec::new();
        for i in 0..self.cores.len() {
            let mut out = Vec::new();
            let status = self.cores[i].tick(now, &mut self.l1s[i], &mut out, model_barriers);
            if let CoreStatus::AtBarrier(id) = status {
                let group = self.cores[i].group();
                if self.barriers.arrive(group, id, i) {
                    completed_barriers.push((group, id));
                }
            }
            if !out.is_empty() {
                self.schedule(NodeId(i as u16), out);
            }
        }
        for (group, id) in completed_barriers {
            for core_idx in self.barriers.release(group, id) {
                self.cores[core_idx].on_barrier_release();
            }
            // Also release any cores of the group that arrive exactly now
            // (handled next cycle through the tracker being empty is fine:
            // they re-register and form the next barrier instance).
        }

        // 2. Messages whose local processing delay elapsed are injected.
        let mut to_inject: Vec<NetMessage<ProtocolMsg>> = Vec::new();
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.ready > now {
                break;
            }
            let Reverse(p) = self.pending.pop().expect("peeked element");
            to_inject.push(self.to_net(p.node, p.msg));
        }
        // Retries first (older messages), then the newly ready ones.
        let mut still_waiting = VecDeque::new();
        while let Some(m) = self.retry.pop_front() {
            if self.network.inject(m.clone()).is_err() {
                still_waiting.push_back(m);
            }
        }
        for m in to_inject {
            if self.network.inject(m.clone()).is_err() {
                still_waiting.push_back(m);
            }
        }
        self.retry = still_waiting;

        // 3. Memory controllers release DRAM responses whose latency elapsed.
        let mem_nodes: Vec<NodeId> = self.mems.keys().copied().collect();
        for node in mem_nodes {
            let mut out = Vec::new();
            self.mems
                .get_mut(&node)
                .expect("memory controller")
                .tick(now, &mut out);
            if !out.is_empty() {
                self.schedule(node, out);
            }
        }

        // 4. The fabric advances one cycle and deliveries are dispatched.
        self.network.tick();
        for delivered in self.network.eject_all() {
            self.dispatch(delivered);
        }

        self.now += 1;
    }

    /// Runs until every core finishes or `max_cycles` elapse, and returns
    /// the aggregated results.
    pub fn run(&mut self, max_cycles: u64) -> SimResults {
        while !self.all_finished() && self.now < max_cycles {
            self.step();
        }
        self.results()
    }

    /// Assembles the results accumulated so far.
    pub fn results(&self) -> SimResults {
        let mut cache = CacheStats::default();
        for l1 in &self.l1s {
            cache.merge(l1.stats());
        }
        for l2 in &self.l2s {
            cache.merge(l2.stats());
        }
        for dir in self.dirs.values() {
            cache.merge(dir.stats());
        }
        for mem in self.mems.values() {
            cache.merge(mem.stats());
        }
        cache.instructions = self.cores.iter().map(CoreModel::instructions).sum();
        cache.l2_hit_latency_sum = self.l2_hit_latency_sum;
        cache.l2_hit_latency_count = self.l2_hit_latency_count;
        let runtime = self
            .cores
            .iter()
            .filter_map(CoreModel::finished_at)
            .max()
            .unwrap_or(self.now)
            .max(
                if self.all_finished() { 0 } else { self.now },
            );
        SimResults {
            runtime_cycles: runtime,
            completed: self.all_finished(),
            avg_l2_hit_latency: if self.l2_hit_latency_count == 0 {
                0.0
            } else {
                self.l2_hit_latency_sum as f64 / self.l2_hit_latency_count as f64
            },
            avg_miss_latency: if self.miss_latency_count == 0 {
                0.0
            } else {
                self.miss_latency_sum as f64 / self.miss_latency_count as f64
            },
            avg_search_delay: cache.avg_search_delay(),
            l2_mpki: cache.l2_mpki(),
            offchip_accesses: cache.offchip_accesses(),
            instructions: cache.instructions,
            network: self.network.stats().clone(),
            cache,
        }
    }

    /// The memory-controller placement (exposed for tests and tools).
    pub fn memory_map(&self) -> &MemoryMap {
        &self.memmap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_cache::{ClusterShape, OrganizationKind};
    use loco_noc::RouterKind;
    use loco_workloads::{Benchmark, TraceGenerator};

    /// A small 16-core system so the protocol tests stay fast.
    fn small_cfg(org: OrganizationKind) -> SystemConfig {
        let mut cfg = SystemConfig::asplos_64(org);
        cfg.mesh_width = 4;
        cfg.mesh_height = 4;
        cfg.cluster = ClusterShape::new(2, 2);
        cfg
    }

    fn small_traces(mem_ops: u64, cores: usize) -> Vec<CoreTrace> {
        let spec = Benchmark::Lu.spec();
        TraceGenerator::new(7).generate(&spec, cores, mem_ops)
    }

    #[test]
    fn every_organization_runs_to_completion() {
        for org in [
            OrganizationKind::Private,
            OrganizationKind::Shared,
            OrganizationKind::LocoCc,
            OrganizationKind::LocoCcVms,
            OrganizationKind::LocoCcVmsIvr,
        ] {
            let cfg = small_cfg(org);
            let mut sys = CmpSystem::new(cfg, small_traces(150, 16));
            let r = sys.run(2_000_000);
            assert!(r.completed, "{org:?} did not complete");
            assert!(r.runtime_cycles > 0);
            assert!(r.instructions > 16 * 150);
            assert!(r.cache.l1_accesses >= 16 * 150);
            assert!(r.offchip_accesses > 0, "{org:?} never touched memory");
        }
    }

    #[test]
    fn every_router_kind_runs_to_completion() {
        for router in [RouterKind::Smart, RouterKind::Conventional, RouterKind::HighRadix] {
            let cfg = small_cfg(OrganizationKind::LocoCcVms).with_router(router);
            let mut sys = CmpSystem::new(cfg, small_traces(120, 16));
            let r = sys.run(2_000_000);
            assert!(r.completed, "{router:?} did not complete");
        }
    }

    #[test]
    fn shared_lines_are_found_on_chip_with_vms() {
        let cfg = small_cfg(OrganizationKind::LocoCcVms);
        let mut sys = CmpSystem::new(cfg, small_traces(400, 16));
        let r = sys.run(4_000_000);
        assert!(r.completed);
        assert!(r.cache.broadcasts > 0, "VMS broadcasts must occur");
        assert!(
            r.cache.remote_hits > 0,
            "some data must be found in other clusters"
        );
        assert!(r.avg_search_delay > 0.0);
    }

    #[test]
    fn ivr_migrations_happen_under_capacity_pressure() {
        // Radix has a working set much larger than one L2 slice; with the
        // slice shrunk to 4 KB the home nodes must evict, and with IVR those
        // victims migrate to other clusters instead of being dropped.
        let spec = Benchmark::Radix.spec();
        let traces = TraceGenerator::new(3).generate(&spec, 16, 600);
        let mut cfg = small_cfg(OrganizationKind::LocoCcVmsIvr);
        cfg.l2.geometry.size_bytes = 4 * 1024;
        let mut sys = CmpSystem::new(cfg, traces);
        let r = sys.run(6_000_000);
        assert!(r.completed);
        assert!(r.cache.ivr_migrations > 0, "IVR must trigger migrations");
        assert!(r.cache.ivr_accepted > 0, "some migrations must be accepted");
    }

    #[test]
    fn smart_has_lower_l2_hit_latency_than_conventional() {
        let traces = small_traces(300, 16);
        let smart = {
            let cfg = small_cfg(OrganizationKind::LocoCcVms);
            CmpSystem::new(cfg, traces.clone()).run(4_000_000)
        };
        let conv = {
            let cfg = small_cfg(OrganizationKind::LocoCcVms).with_router(RouterKind::Conventional);
            CmpSystem::new(cfg, traces).run(4_000_000)
        };
        assert!(smart.completed && conv.completed);
        assert!(
            smart.avg_l2_hit_latency < conv.avg_l2_hit_latency,
            "SMART {:.2} should beat conventional {:.2}",
            smart.avg_l2_hit_latency,
            conv.avg_l2_hit_latency
        );
        assert!(smart.runtime_cycles <= conv.runtime_cycles);
    }

    #[test]
    fn full_system_mode_with_barriers_completes() {
        let spec = Benchmark::Fft.spec();
        let traces = TraceGenerator::new(9)
            .with_barriers(true)
            .generate(&spec, 16, 300);
        let cfg = small_cfg(OrganizationKind::LocoCcVms).with_full_system(true);
        let mut sys = CmpSystem::new(cfg, traces);
        let r = sys.run(6_000_000);
        assert!(r.completed, "barrier workload must not deadlock");
    }

    #[test]
    fn empty_traces_finish_immediately() {
        let cfg = small_cfg(OrganizationKind::Shared);
        let mut sys = CmpSystem::new(cfg, vec![CoreTrace::default(); 16]);
        let r = sys.run(100);
        assert!(r.completed);
        assert!(r.runtime_cycles <= 1);
        assert_eq!(r.offchip_accesses, 0);
    }

    #[test]
    fn private_cache_misses_more_than_shared_on_shared_data() {
        // A sharing-dominated workload with the L2 slices shrunk to 8 KB:
        // private per-tile L2s replicate the shared working set and thrash,
        // while the shared LLC holds a single copy chip-wide (Figure 6).
        let spec = loco_workloads::BenchmarkSpec::new(Benchmark::Barnes)
            .private_lines(64)
            .shared_lines(2048)
            .shared_fraction(0.9)
            .reuse(0.3)
            .pattern(loco_workloads::SharingPattern::Global);
        let traces = TraceGenerator::new(5).generate(&spec, 16, 600);
        let mut pcfg = small_cfg(OrganizationKind::Private);
        pcfg.l2.geometry.size_bytes = 8 * 1024;
        let mut scfg = small_cfg(OrganizationKind::Shared);
        scfg.l2.geometry.size_bytes = 8 * 1024;
        let private = CmpSystem::new(pcfg, traces.clone()).run(8_000_000);
        let shared = CmpSystem::new(scfg, traces).run(8_000_000);
        assert!(private.completed && shared.completed);
        assert!(
            private.offchip_accesses > shared.offchip_accesses,
            "private {} should exceed shared {}",
            private.offchip_accesses,
            shared.offchip_accesses
        );
    }
}
