//! Figure 14: LOCO with different cluster sizes and topologies.

use loco_bench::timing::Criterion;
use loco_bench::{bench_group, bench_main};
use loco::{ClusterShape, ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_cluster_size");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            let shapes = [
                ClusterShape::new(2, 1),
                ClusterShape::new(4, 1),
                ClusterShape::new(2, 2),
            ];
            let figs = runner.fig14_cluster_size(&benchmarks_for(Scale::Quick), &shapes);
            assert_eq!(figs.len(), 4);
            figs
        })
    });
    group.finish();
}

bench_group!(benches, bench);
bench_main!(benches);
