//! Property-based tests of the cache substrate: the set-associative array
//! never violates its geometry, LRU eviction picks the oldest line, sharer
//! sets behave like sets, and the address→home-node map always stays inside
//! the requester's cluster.

use loco_cache::{
    Address, CacheArray, CacheGeometry, ClusterShape, Eviction, LineAddr, Organization,
    OrganizationKind, SharerSet,
};
use loco_noc::{Mesh, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

fn small_geometry(ways: usize, sets: usize) -> CacheGeometry {
    CacheGeometry {
        size_bytes: (ways * sets * 32) as u64,
        ways,
        line_bytes: 32,
        latency: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No set ever holds more lines than the associativity, regardless of
    /// the insertion sequence, and lookups after insertion always hit until
    /// an eviction removes the line.
    #[test]
    fn cache_array_never_exceeds_associativity(
        ways in 1usize..9,
        sets_exp in 0u32..4,
        lines in proptest::collection::vec(0u64..64, 1..200),
    ) {
        let sets = 1usize << sets_exp;
        let mut cache: CacheArray<u8> = CacheArray::new(small_geometry(ways, sets));
        let mut resident: HashSet<(usize, u64)> = HashSet::new();
        for (t, &line) in lines.iter().enumerate() {
            let set = (line as usize) % sets;
            match cache.insert(set, LineAddr(line), 0, t as u64) {
                Eviction::Victim(v) => {
                    prop_assert!(resident.remove(&(set, v.addr.0)), "evicted a non-resident line");
                }
                Eviction::None => {}
            }
            resident.insert((set, line));
            prop_assert!(cache.peek(set, LineAddr(line)).is_some());
        }
        prop_assert_eq!(cache.occupancy(), resident.len());
        for set in 0..sets {
            let in_set = resident.iter().filter(|(s, _)| *s == set).count();
            prop_assert!(in_set <= ways);
        }
    }

    /// The LRU victim is always the least-recently-touched line of the set.
    #[test]
    fn lru_evicts_the_oldest_line(ways in 2usize..9, touches in proptest::collection::vec(0u64..16, 1..64)) {
        let mut cache: CacheArray<u8> = CacheArray::new(small_geometry(ways, 1));
        let mut order: Vec<u64> = Vec::new(); // most recent last
        let mut now = 0u64;
        for &line in &touches {
            now += 1;
            if cache.peek(0, LineAddr(line)).is_some() {
                cache.lookup_mut(0, LineAddr(line), now);
                order.retain(|&l| l != line);
                order.push(line);
            } else {
                match cache.insert(0, LineAddr(line), 0, now) {
                    Eviction::Victim(v) => {
                        prop_assert_eq!(v.addr.0, order[0], "must evict the LRU line");
                        order.remove(0);
                    }
                    Eviction::None => {}
                }
                order.push(line);
            }
        }
    }

    /// SharerSet behaves like a set of node ids below 256.
    #[test]
    fn sharer_set_matches_hashset(ops in proptest::collection::vec((0u16..256, any::<bool>()), 0..300)) {
        let mut s = SharerSet::new();
        let mut reference: HashSet<u16> = HashSet::new();
        for (node, insert) in ops {
            if insert {
                s.insert(NodeId(node));
                reference.insert(node);
            } else {
                s.remove(NodeId(node));
                reference.remove(&node);
            }
            prop_assert_eq!(s.len(), reference.len());
            prop_assert_eq!(s.contains(NodeId(node)), reference.contains(&node));
        }
        let collected: HashSet<u16> = s.iter().map(|n| n.0).collect();
        prop_assert_eq!(collected, reference);
    }

    /// For every LOCO cluster shape, the home node of any address and any
    /// requester lies inside the requester's cluster, and the VMS for that
    /// address has exactly one member per cluster (the home of each).
    #[test]
    fn home_node_mapping_respects_clusters(
        addr in any::<u64>(),
        requester in 0u16..64,
        shape_idx in 0usize..4,
    ) {
        let shapes = [
            ClusterShape::new(4, 4),
            ClusterShape::new(4, 1),
            ClusterShape::new(8, 1),
            ClusterShape::new(2, 2),
        ];
        let org = Organization::loco(Mesh::new(8, 8), OrganizationKind::LocoCcVms, shapes[shape_idx]);
        let line = Address(addr).line(32);
        let home = org.home_node(NodeId(requester), line);
        prop_assert_eq!(org.cluster_of(home), org.cluster_of(NodeId(requester)));
        let members = org.vms_members(line);
        prop_assert_eq!(members.len(), org.num_clusters());
        let clusters: HashSet<usize> = members.iter().map(|&m| org.cluster_of(m)).collect();
        prop_assert_eq!(clusters.len(), org.num_clusters());
        prop_assert!(members.contains(&home));
    }

    /// Address field decomposition is lossless for every hnid width / set
    /// count combination used by the organizations.
    #[test]
    fn address_decomposition_is_lossless(raw in any::<u64>(), hnid_bits in 0u32..7, sets_exp in 0u32..10) {
        let sets = 1usize << sets_exp;
        let line = Address(raw).line(32);
        let rebuilt = ((line.tag(hnid_bits, sets) * sets as u64
            + line.set_index(hnid_bits, sets) as u64) << hnid_bits)
            | line.hnid(hnid_bits);
        prop_assert_eq!(rebuilt, line.0);
        prop_assert!(line.set_index(hnid_bits, sets) < sets);
    }
}
