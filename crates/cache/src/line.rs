//! Coherence states (MSI for L1, MOESI for L2) and sharer-set bit-vectors.

use loco_noc::NodeId;

/// L1 cache-line states (Table 1: MSI for the L1 cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MsiState {
    /// Invalid.
    #[default]
    I,
    /// Shared, read-only.
    S,
    /// Modified, read-write, dirty.
    M,
}

impl MsiState {
    /// Whether the line can service a load.
    pub fn can_read(self) -> bool {
        !matches!(self, MsiState::I)
    }

    /// Whether the line can service a store.
    pub fn can_write(self) -> bool {
        matches!(self, MsiState::M)
    }
}

/// L2 cache-line states (Table 1: MOESI for the L2 cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MoesiState {
    /// Invalid.
    #[default]
    I,
    /// Shared: a clean copy also held elsewhere; some other agent (or
    /// memory) owns the line.
    S,
    /// Exclusive: the only cached copy, clean.
    E,
    /// Owned: dirty, responsible for responding to reads and for the final
    /// writeback, other shared copies may exist.
    O,
    /// Modified: the only cached copy, dirty.
    M,
}

impl MoesiState {
    /// Whether this state designates the cluster/tile that must respond to a
    /// global read (the paper: "the one with ownership, i.e. in O state,
    /// responds").
    pub fn is_owner(self) -> bool {
        matches!(self, MoesiState::M | MoesiState::O | MoesiState::E)
    }

    /// Whether the line must be written back to memory when evicted.
    pub fn is_dirty(self) -> bool {
        matches!(self, MoesiState::M | MoesiState::O)
    }

    /// Whether the line holds valid data.
    pub fn is_valid(self) -> bool {
        !matches!(self, MoesiState::I)
    }

    /// The state an owner falls back to after supplying a shared copy to a
    /// reader (M/E become O so the dirty data keeps exactly one owner; O and
    /// S are unchanged).
    pub fn after_sharing(self) -> MoesiState {
        match self {
            MoesiState::M | MoesiState::O => MoesiState::O,
            MoesiState::E => MoesiState::O,
            other => other,
        }
    }
}

/// A bit-vector of sharer nodes, sized for up to 256 tiles (the largest CMP
/// evaluated in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SharerSet {
    bits: [u64; 4],
}

impl SharerSet {
    /// The empty set.
    pub fn new() -> Self {
        SharerSet::default()
    }

    /// Adds a node.
    ///
    /// # Panics
    ///
    /// Panics if the node index is 256 or larger.
    pub fn insert(&mut self, node: NodeId) {
        let i = node.index();
        assert!(i < 256, "sharer sets support up to 256 nodes");
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Removes a node.
    pub fn remove(&mut self, node: NodeId) {
        let i = node.index();
        if i < 256 {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Whether the node is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        i < 256 && self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of sharers.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    /// Removes every node.
    pub fn clear(&mut self) {
        self.bits = [0; 4];
    }

    /// Iterates over the sharers in increasing node order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..256usize).filter_map(move |i| {
            if self.bits[i / 64] & (1 << (i % 64)) != 0 {
                Some(NodeId(i as u16))
            } else {
                None
            }
        })
    }
}

impl FromIterator<NodeId> for SharerSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut s = SharerSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msi_predicates() {
        assert!(!MsiState::I.can_read());
        assert!(MsiState::S.can_read());
        assert!(!MsiState::S.can_write());
        assert!(MsiState::M.can_write());
    }

    #[test]
    fn moesi_owner_and_dirty() {
        assert!(MoesiState::M.is_owner());
        assert!(MoesiState::O.is_owner());
        assert!(MoesiState::E.is_owner());
        assert!(!MoesiState::S.is_owner());
        assert!(!MoesiState::I.is_owner());
        assert!(MoesiState::M.is_dirty());
        assert!(MoesiState::O.is_dirty());
        assert!(!MoesiState::E.is_dirty());
        assert_eq!(MoesiState::M.after_sharing(), MoesiState::O);
        assert_eq!(MoesiState::E.after_sharing(), MoesiState::O);
        assert_eq!(MoesiState::S.after_sharing(), MoesiState::S);
    }

    #[test]
    fn sharer_set_insert_remove_iter() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        s.insert(NodeId(0));
        s.insert(NodeId(63));
        s.insert(NodeId(255));
        assert_eq!(s.len(), 3);
        assert!(s.contains(NodeId(63)));
        assert!(!s.contains(NodeId(64)));
        let collected: Vec<NodeId> = s.iter().collect();
        assert_eq!(collected, vec![NodeId(0), NodeId(63), NodeId(255)]);
        s.remove(NodeId(63));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn sharer_set_from_iterator() {
        let s: SharerSet = [NodeId(1), NodeId(2), NodeId(2)].into_iter().collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "up to 256")]
    fn sharer_set_rejects_large_nodes() {
        SharerSet::new().insert(NodeId(256));
    }
}
