//! A tiny, dependency-free, seedable PRNG.
//!
//! The workspace builds offline with an empty crate registry, so it cannot
//! depend on the `rand` crate. Every randomized component (IVR victim
//! steering, synthetic trace generation, the seeded test loops) draws from
//! this [`SplitMix64`] generator instead. SplitMix64 (Steele, Lea, Flood —
//! OOPSLA 2014) passes BigCrush, has a full 2^64 period over its state, and
//! — crucially for the reproduction — is trivially portable, so the same
//! seed produces bit-identical streams on every platform and toolchain.
//!
//! This is a statistical PRNG for simulation; it is **not** cryptographic.

/// A seedable SplitMix64 pseudo-random number generator.
///
/// ```
/// use loco_noc::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Every seed is valid and
    /// yields an independent-looking stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire 2019: widen-multiply, reject the biased low region.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_splitmix64_vector() {
        // Reference values for seed 1234567 from the public-domain
        // SplitMix64 implementation by Sebastiano Vigna.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn next_below_stays_in_range_and_covers_it() {
        let mut r = SplitMix64::new(99);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SplitMix64::new(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
