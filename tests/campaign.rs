//! Integration tests of the campaign engine (plan / execute / assemble):
//! plans deduplicate across figures, the parallel executor is
//! thread-count-invariant, and the legacy `Runner` shim assembles exactly
//! the figures the campaign path does.

use loco::campaign::{CampaignPlan, Executor, FigureSpec, Scenario};
use loco::{Benchmark, ExperimentParams, Figure, OrganizationKind, Runner};

fn quick() -> ExperimentParams {
    // Shorter traces than ExperimentParams::quick(): this suite runs many
    // scenarios at several worker counts.
    ExperimentParams::quick().with_mem_ops(120)
}

const BENCHES: [Benchmark; 2] = [Benchmark::Lu, Benchmark::Barnes];

fn fig06() -> FigureSpec {
    FigureSpec::Fig06 {
        benchmarks: BENCHES.to_vec(),
    }
}

fn fig11() -> FigureSpec {
    FigureSpec::Fig11 {
        benchmarks: BENCHES.to_vec(),
    }
}

#[test]
fn composing_fig06_and_fig11_enumerates_each_scenario_once() {
    let params = quick();
    let mut plan = CampaignPlan::new();
    plan.add_figure(&fig06(), &params);
    plan.add_figure(&fig11(), &params);
    // fig06 needs {Private, Shared}, fig11 needs {Shared, LocoCc, LocoCcVms,
    // LocoCcVmsIvr}: the union is the 5 organizations, once per benchmark.
    assert_eq!(plan.len(), 5 * BENCHES.len());
    // No scenario appears twice in the plan order either.
    let mut seen = std::collections::HashSet::new();
    for s in plan.scenarios() {
        assert!(seen.insert(*s), "{} enumerated twice", s.label());
    }
    // Re-adding a figure is a no-op.
    plan.add_figure(&fig06(), &params);
    assert_eq!(plan.len(), 5 * BENCHES.len());
}

#[test]
fn one_thread_and_four_thread_executions_are_identical() {
    let params = quick();
    let specs = [
        fig06(),
        fig11(),
        FigureSpec::Fig15 {
            workloads: vec![0],
        },
    ];
    let mut plan = CampaignPlan::new();
    for spec in &specs {
        plan.add_figure(spec, &params);
    }
    let serial = Executor::new(1).execute(&params, &plan);
    let parallel = Executor::new(4).execute(&params, &plan);
    assert_eq!(serial.len(), plan.len());
    assert_eq!(parallel.len(), plan.len());
    // Identical ResultSets, scenario by scenario (SimResults has no Eq;
    // the Debug rendering covers every field bit-for-bit)...
    for scenario in plan.scenarios() {
        assert_eq!(
            format!("{:?}", serial.expect(scenario)),
            format!("{:?}", parallel.expect(scenario)),
            "scenario {} diverged across worker counts",
            scenario.label()
        );
    }
    // ...and identical assembled figures.
    let assemble = |results: &loco::ResultSet| -> Vec<Figure> {
        specs
            .iter()
            .flat_map(|s| s.assemble(&params, results))
            .collect()
    };
    assert_eq!(assemble(&serial), assemble(&parallel));
}

#[test]
fn runner_shim_matches_the_campaign_figures() {
    let params = quick();
    // Campaign path: plan both figures, execute in parallel, assemble.
    let mut plan = CampaignPlan::new();
    plan.add_figure(&fig06(), &params);
    plan.add_figure(&fig11(), &params);
    let results = Executor::new(2).execute(&params, &plan);
    let campaign_fig06 = fig06().assemble(&params, &results);
    let campaign_fig11 = fig11().assemble(&params, &results);
    // Legacy path: the sequential memoizing Runner.
    let mut runner = Runner::new(params);
    let runner_fig06 = runner.fig06_private_vs_shared(&BENCHES);
    let runner_fig11 = runner.fig11_runtime(&BENCHES);
    assert_eq!(vec![runner_fig06], campaign_fig06);
    assert_eq!(vec![runner_fig11], campaign_fig11);
    // The shim runs each scenario exactly once (the memoization contract
    // the seed Runner had), which is also the campaign plan size.
    assert_eq!(runner.simulations_run(), plan.len() as u64);
}

#[test]
fn runner_cache_is_reusable_as_a_campaign_result_set() {
    let params = quick();
    let mut runner = Runner::new(params);
    let fig = runner.fig06_private_vs_shared(&BENCHES);
    // The Runner's memoization cache is a ResultSet: assembling straight
    // from it reproduces the figure without any further simulation.
    let reassembled = fig06().assemble(&params, runner.results());
    assert_eq!(vec![fig], reassembled);
}

#[test]
fn senseless_thread_counts_are_rejected_with_a_clear_error() {
    // The `reproduce` CLI funnels `--threads` through `Executor::try_new`:
    // values that parse but make no sense (huge counts that would spawn
    // thousands of idle workers) must error loudly instead of degrading.
    use loco::campaign::{Executor as E, MAX_EXPLICIT_THREADS};
    assert_eq!(E::try_new(4).unwrap().threads(), 4);
    assert!(E::try_new(0).is_ok(), "0 = all cores is documented and valid");
    assert!(E::try_new(MAX_EXPLICIT_THREADS).is_ok());
    let err = E::try_new(1_000_000).unwrap_err();
    assert!(err.contains("1000000"), "error must name the value: {err}");
    assert!(
        err.contains(&MAX_EXPLICIT_THREADS.to_string()),
        "error must name the accepted range: {err}"
    );
}

#[test]
fn stall_stress_scenarios_ride_the_campaign_like_any_other() {
    // Figure 19's stress scenarios are ordinary plan/execute/assemble
    // citizens: deduplicated, thread-count-invariant, and composable with
    // the paper figures.
    let params = quick();
    let mut plan = CampaignPlan::new();
    plan.add_figure(&FigureSpec::Fig19Stall, &params);
    assert_eq!(plan.len(), 6, "2 stress kinds x 3 routers");
    plan.add_figure(&FigureSpec::Fig19Stall, &params);
    assert_eq!(plan.len(), 6, "re-adding must deduplicate");
    let serial = Executor::new(1).execute(&params, &plan);
    let parallel = Executor::new(4).execute(&params, &plan);
    for s in plan.scenarios() {
        assert_eq!(
            format!("{:?}", serial.expect(s)),
            format!("{:?}", parallel.expect(s)),
            "scenario {} diverged across worker counts",
            s.label()
        );
        assert!(s.label().starts_with("stress-"), "{}", s.label());
    }
    let figs = FigureSpec::Fig19Stall.assemble(&params, &serial);
    assert_eq!(
        figs,
        FigureSpec::Fig19Stall.assemble(&params, &parallel),
        "assembled stress figure diverged across worker counts"
    );
    assert_eq!(figs.len(), 1);
    assert_eq!(figs[0].series.len(), 3, "one series per router");
}

#[test]
fn executor_handles_plans_smaller_than_the_worker_count() {
    let params = quick();
    let mut plan = CampaignPlan::new();
    plan.add(Scenario::default_trace(
        &params,
        Benchmark::Lu,
        OrganizationKind::Shared,
    ));
    let results = Executor::new(8).execute(&params, &plan);
    assert_eq!(results.len(), 1);
    let empty = Executor::new(8).execute(&params, &CampaignPlan::new());
    assert!(empty.is_empty());
}
