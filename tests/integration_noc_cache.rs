//! Integration tests across the NoC and cache layers: protocol messages
//! travelling through the real fabric, VMS multicast groups derived from the
//! cache organization, and back-pressure behaviour.

use loco_cache::{ClusterShape, LineAddr, Organization, OrganizationKind};
use loco_noc::{
    Coord, Mesh, NetMessage, Network, NocConfig, NodeId, VirtualMesh, VirtualNetwork,
};

#[test]
fn organization_vms_matches_virtual_mesh_membership() {
    // The cache organization's per-line home nodes must be exactly the
    // virtual mesh the NoC broadcasts on.
    let mesh = Mesh::new(8, 8);
    let org = Organization::loco(mesh, OrganizationKind::LocoCcVms, ClusterShape::new(4, 4));
    for hnid in 0..16u64 {
        let line = LineAddr(hnid);
        let from_org: std::collections::BTreeSet<NodeId> =
            org.vms_members(line).into_iter().collect();
        let offset = Coord::new((hnid % 4) as u16, (hnid / 4) as u16);
        let vms = VirtualMesh::new(mesh, 4, 4, offset);
        let from_noc: std::collections::BTreeSet<NodeId> =
            vms.members().iter().copied().collect();
        assert_eq!(from_org, from_noc, "hnid {hnid}");
    }
}

#[test]
fn protocol_sized_messages_travel_every_fabric() {
    // A 40-byte data response (3 flits on 16-byte links) and an 8-byte
    // control request must both arrive on all three router kinds.
    for cfg in [
        NocConfig::smart_mesh(8, 8, 4),
        NocConfig::conventional_mesh(8, 8),
        NocConfig::highradix_mesh(8, 8, 4),
    ] {
        let mut net: Network<&str> = Network::new(cfg);
        net.inject(NetMessage::unicast(NodeId(0), NodeId(27), VirtualNetwork::Request, 8, "req"))
            .unwrap();
        net.inject(NetMessage::unicast(NodeId(27), NodeId(0), VirtualNetwork::Response, 40, "data"))
            .unwrap();
        let mut got = 0;
        for _ in 0..500 {
            net.tick();
            got += net.eject(NodeId(27)).len() + net.eject(NodeId(0)).len();
            if got == 2 {
                break;
            }
        }
        assert_eq!(got, 2, "{:?}", cfg.router);
    }
}

#[test]
fn vms_broadcast_over_the_real_fabric_reaches_all_home_nodes_quickly() {
    let mesh = Mesh::new(8, 8);
    let org = Organization::loco(mesh, OrganizationKind::LocoCcVms, ClusterShape::new(4, 4));
    let line = LineAddr(5);
    let members = org.vms_members(line);
    let mut net: Network<u64> = Network::new(NocConfig::smart_mesh(8, 8, 4));
    let group = net.register_multicast_group(members.clone());
    let root = org.home_node(NodeId(0), line);
    net.inject(NetMessage::multicast(root, group, VirtualNetwork::Broadcast, 8, 99))
        .unwrap();
    let mut latencies = Vec::new();
    for _ in 0..200 {
        net.tick();
        for &m in &members {
            for d in net.eject(m) {
                latencies.push(d.latency);
            }
        }
    }
    assert_eq!(latencies.len(), members.len() - 1);
    // Figure 3: the whole broadcast completes within a handful of SMART-hops
    // (8 cycles best case plus fork overheads).
    assert!(
        latencies.iter().all(|&l| l <= 24),
        "broadcast latencies {latencies:?}"
    );
}

#[test]
fn sustained_injection_backpressure_never_loses_messages() {
    let cfg = NocConfig::smart_mesh(4, 4, 4);
    let mut net: Network<u32> = Network::new(cfg);
    let mut sent = 0u32;
    let mut received = 0u32;
    let mut next_id = 0u32;
    // All nodes hammer node 15 for a while; injection failures are retried.
    let mut backlog: Vec<NetMessage<u32>> = Vec::new();
    for cycle in 0..400u32 {
        if cycle < 200 {
            for src in 0..15u16 {
                let m = NetMessage::unicast(NodeId(src), NodeId(15), VirtualNetwork::Request, 8, next_id);
                next_id += 1;
                backlog.push(m);
            }
        }
        let mut still = Vec::new();
        for m in backlog.drain(..) {
            match net.inject(m.clone()) {
                Ok(()) => sent += 1,
                Err(_) => still.push(m),
            }
        }
        backlog = still;
        net.tick();
        received += net.eject(NodeId(15)).len() as u32;
    }
    // Drain what is still in flight.
    for _ in 0..5_000 {
        if !net.is_busy() && backlog.is_empty() {
            break;
        }
        let mut still = Vec::new();
        for m in backlog.drain(..) {
            match net.inject(m.clone()) {
                Ok(()) => sent += 1,
                Err(_) => still.push(m),
            }
        }
        backlog = still;
        net.tick();
        received += net.eject(NodeId(15)).len() as u32;
    }
    assert_eq!(received, sent, "every accepted message must be delivered");
    assert!(sent >= 1_000, "the fabric should have absorbed a lot of traffic");
}

#[test]
fn conventional_fabric_is_consistently_slower_than_smart_for_protocol_traffic() {
    let run = |cfg: NocConfig| -> f64 {
        let mut net: Network<u32> = Network::new(cfg);
        let pairs: Vec<(u16, u16)> = vec![(0, 63), (7, 56), (3, 60), (12, 51), (21, 42)];
        for (i, &(s, d)) in pairs.iter().enumerate() {
            net.inject(NetMessage::unicast(
                NodeId(s),
                NodeId(d),
                VirtualNetwork::Request,
                8,
                i as u32,
            ))
            .unwrap();
        }
        let mut latencies = Vec::new();
        for _ in 0..300 {
            net.tick();
            latencies.extend(net.eject_all().into_iter().map(|d| d.latency));
        }
        assert_eq!(latencies.len(), pairs.len());
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let smart = run(NocConfig::smart_mesh(8, 8, 4));
    let conv = run(NocConfig::conventional_mesh(8, 8));
    assert!(smart * 2.0 < conv, "smart {smart:.1} vs conventional {conv:.1}");
}
