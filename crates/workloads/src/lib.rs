//! # loco-workloads — synthetic SPLASH-2 / PARSEC benchmark models
//!
//! The paper drives its evaluation with Graphite-generated traces of the
//! SPLASH-2 and PARSEC benchmark suites. Neither the benchmark binaries nor
//! the Graphite tracer are available here, so this crate substitutes
//! parameterized synthetic models of each benchmark (see DESIGN.md §3):
//! every benchmark is described by its per-thread working-set size, the
//! fraction and footprint of shared data, its read/write mix, its
//! communication pattern (neighbour-concentrated vs. chip-wide, following
//! the characterization of Barrow-Williams et al., IISWC 2009, which the
//! paper itself cites), and its synchronization density.
//!
//! From a [`BenchmarkSpec`] the [`trace::TraceGenerator`] produces per-core
//! instruction traces ([`trace::TraceOp`]) that the `loco-sim` crate replays
//! against any cache organization.
//!
//! The crate also defines the paper's multi-program consolidation workloads
//! W0–W9 (Table 2) in [`multiprogram`].
//!
//! ```rust
//! use loco_workloads::{Benchmark, TraceGenerator};
//!
//! let spec = Benchmark::Barnes.spec();
//! let traces = TraceGenerator::new(42).generate(&spec, 64, 1_000);
//! assert_eq!(traces.len(), 64);
//! assert!(traces[0].memory_ops() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod multiprogram;
pub mod trace;

pub use benchmarks::{Benchmark, BenchmarkSpec, SharingPattern, StressKind};
pub use multiprogram::{MultiProgramWorkload, TaskAssignment};
pub use trace::{CoreTrace, TraceGenerator, TraceOp};
