//! # loco-noc — cycle-driven network-on-chip models for the LOCO reproduction
//!
//! This crate implements the on-chip-network substrate that the LOCO paper
//! (Kwon, Krishna, Peh — ASPLOS 2014) builds on:
//!
//! * a **conventional** mesh NoC with a 2-cycle-per-hop router/link pipeline,
//! * the **SMART** NoC (Single-cycle Multi-hop Asynchronous Repeated
//!   Traversal): routers broadcast SMART Setup Requests (SSRs) up to
//!   `HPCmax` hops, and flits traverse the pre-set multi-hop path in a single
//!   cycle, stopping prematurely when they lose SSR arbitration to a nearer
//!   flit,
//! * a **high-radix** (Flattened-Butterfly-like) mesh where each router has
//!   dedicated express links to every router within `HPCmax` hops per
//!   dimension, at the cost of a deeper (4-stage) router pipeline,
//! * **VMS multicast**: XY-tree broadcasts over a registered set of home
//!   nodes (a *Virtual Mesh with SMART*), the mechanism LOCO uses for global
//!   data search.
//!
//! The model is packet-granular: each [`NetMessage`] occupies an output link
//! for `size_flits` cycles (serialization), and head-latency is modelled
//! cycle by cycle through router buffers, switch allocation, SSR arbitration
//! and link traversal. This mirrors GARNET's behaviour closely enough to
//! reproduce the latency/contention trends of the paper while keeping the
//! simulator tractable (see `DESIGN.md` §9).
//!
//! ## Quick example
//!
//! ```rust
//! use loco_noc::{Network, NocConfig, NetMessage, NodeId, VirtualNetwork};
//!
//! // An 8x8 SMART mesh with HPCmax = 4, as in the paper's 64-core CMP.
//! let cfg = NocConfig::smart_mesh(8, 8, 4);
//! let mut net: Network<()> = Network::new(cfg);
//! net.inject(NetMessage::unicast(NodeId(0), NodeId(63), VirtualNetwork::Request, 8, ()))
//!     .unwrap();
//! // Run until the message pops out at the far corner.
//! let delivered = loop {
//!     net.tick();
//!     let out = net.eject(NodeId(63));
//!     if !out.is_empty() {
//!         break out;
//!     }
//! };
//! // 14 hops with HPCmax=4 is 4 SMART-hops = 8 cycles in the best case
//! // (plus injection/ejection overhead at the endpoints).
//! assert!(delivered[0].latency <= 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytical;
pub mod config;
pub mod conventional;
pub mod fx;
pub mod highradix;
pub mod message;
pub mod network;
pub mod rng;
pub mod router;
pub mod smart;
pub mod stats;
pub mod topology;
pub mod vms;

pub use config::{NocConfig, RouterKind};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use message::{Delivered, Destination, MulticastGroupId, NetMessage, VirtualNetwork};
pub use network::{InjectError, Network};
pub use rng::SplitMix64;
pub use stats::{FabricCounters, NetworkStats};
pub use topology::{Coord, Direction, Mesh, NodeId};
pub use vms::VirtualMesh;
