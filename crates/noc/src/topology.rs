//! Mesh topology primitives: node identifiers, coordinates, directions and
//! XY-routing helpers.
//!
//! The LOCO paper evaluates 8x8 (64-core) and 16x16 (256-core) meshes with
//! XY dimension-ordered routing; everything in this module is generic over
//! the mesh dimensions.

use std::fmt;

/// Identifier of a tile / router in the mesh, numbered row-major from the
/// bottom-left corner: node `y * width + x`.
///
/// ```rust
/// use loco_noc::{Mesh, NodeId};
/// let mesh = Mesh::new(8, 8);
/// let n = NodeId(10);
/// assert_eq!(mesh.coord(n).x, 2);
/// assert_eq!(mesh.coord(n).y, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u16);

impl NodeId {
    /// Returns the raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u16)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A 2-D tile coordinate within the mesh. `x` grows eastwards, `y` grows
/// northwards, matching the figures in the paper (router `30` is the
/// north-west corner of a 4x4 mesh).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Coord {
    /// Column (0 = west edge).
    pub x: u16,
    /// Row (0 = south edge).
    pub y: u16,
}

impl Coord {
    /// Creates a new coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: Coord) -> u16 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Output / input port direction of a mesh router.
///
/// `Local` is the ejection/injection port connecting the router to the tile's
/// network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Direction {
    /// Towards larger `x`.
    East,
    /// Towards smaller `x`.
    West,
    /// Towards larger `y`.
    North,
    /// Towards smaller `y`.
    South,
    /// The local (NIC) port.
    Local,
}

impl Direction {
    /// All five ports of a mesh router, in a fixed order.
    pub const ALL: [Direction; 5] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
        Direction::Local,
    ];

    /// The four non-local directions.
    pub const CARDINAL: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
    ];

    /// The opposite direction (`Local` maps to itself).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::Local => Direction::Local,
        }
    }

    /// Stable small index, useful for array-indexed port tables.
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
            Direction::Local => 4,
        }
    }

    /// Whether this direction moves along the X dimension.
    pub fn is_horizontal(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "E",
            Direction::West => "W",
            Direction::North => "N",
            Direction::South => "S",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// A rectangular mesh of `width x height` tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a `width x height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        Mesh { width, height }
    }

    /// Mesh width (number of columns).
    pub fn width(self) -> u16 {
        self.width
    }

    /// Mesh height (number of rows).
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total number of nodes.
    pub fn len(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Whether the mesh contains zero nodes (never true; kept for clippy's
    /// `len`-without-`is_empty` lint).
    pub fn is_empty(self) -> bool {
        false
    }

    /// Coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord(self, node: NodeId) -> Coord {
        assert!(
            node.index() < self.len(),
            "node {node} out of range for {}x{} mesh",
            self.width,
            self.height
        );
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// NodeId at coordinate `c`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the mesh.
    pub fn node_at(self, c: Coord) -> NodeId {
        assert!(
            c.x < self.width && c.y < self.height,
            "coord {c} out of range for {}x{} mesh",
            self.width,
            self.height
        );
        NodeId(c.y * self.width + c.x)
    }

    /// Returns whether `c` lies inside the mesh.
    pub fn contains(self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// Iterator over all node ids, in index order.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u16).map(NodeId)
    }

    /// The neighbour of `node` in direction `dir`, or `None` at the mesh edge
    /// (and always `None` for `Local`).
    pub fn neighbor(self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(node);
        let n = match dir {
            Direction::East if c.x + 1 < self.width => Coord::new(c.x + 1, c.y),
            Direction::West if c.x > 0 => Coord::new(c.x - 1, c.y),
            Direction::North if c.y + 1 < self.height => Coord::new(c.x, c.y + 1),
            Direction::South if c.y > 0 => Coord::new(c.x, c.y - 1),
            _ => return None,
        };
        Some(self.node_at(n))
    }

    /// Hop (Manhattan) distance between two nodes.
    pub fn hops(self, a: NodeId, b: NodeId) -> u16 {
        self.coord(a).manhattan(self.coord(b))
    }

    /// Number of SMART-hops needed for an XY traversal from `a` to `b`
    /// with the given `hpc_max`, following the SMART-1D rule that a flit must
    /// stop at the turning router: `ceil(dx/hpc) + ceil(dy/hpc)`.
    pub fn smart_hops(self, a: NodeId, b: NodeId, hpc_max: u16) -> u16 {
        assert!(hpc_max > 0, "hpc_max must be non-zero");
        let ca = self.coord(a);
        let cb = self.coord(b);
        let dx = ca.x.abs_diff(cb.x);
        let dy = ca.y.abs_diff(cb.y);
        dx.div_ceil(hpc_max) + dy.div_ceil(hpc_max)
    }

    /// The next direction on the XY route from `from` towards `to`
    /// (X first, then Y), or `None` if already there.
    pub fn xy_next_dir(self, from: NodeId, to: NodeId) -> Option<Direction> {
        let f = self.coord(from);
        let t = self.coord(to);
        if t.x > f.x {
            Some(Direction::East)
        } else if t.x < f.x {
            Some(Direction::West)
        } else if t.y > f.y {
            Some(Direction::North)
        } else if t.y < f.y {
            Some(Direction::South)
        } else {
            None
        }
    }

    /// Full XY route (sequence of directions) from `from` to `to`.
    pub fn xy_route(self, from: NodeId, to: NodeId) -> Vec<Direction> {
        let mut route = Vec::new();
        let f = self.coord(from);
        let t = self.coord(to);
        for _ in 0..f.x.abs_diff(t.x) {
            route.push(if t.x > f.x {
                Direction::East
            } else {
                Direction::West
            });
        }
        for _ in 0..f.y.abs_diff(t.y) {
            route.push(if t.y > f.y {
                Direction::North
            } else {
                Direction::South
            });
        }
        route
    }

    /// The node reached by starting at `from` and moving `steps` hops in
    /// direction `dir`, clamped to the mesh edge.
    pub fn advance(self, from: NodeId, dir: Direction, steps: u16) -> NodeId {
        let c = self.coord(from);
        let c = match dir {
            Direction::East => Coord::new((c.x + steps).min(self.width - 1), c.y),
            Direction::West => Coord::new(c.x.saturating_sub(steps), c.y),
            Direction::North => Coord::new(c.x, (c.y + steps).min(self.height - 1)),
            Direction::South => Coord::new(c.x, c.y.saturating_sub(steps)),
            Direction::Local => c,
        };
        self.node_at(c)
    }

    /// Nodes on the straight segment starting one hop after `from` in
    /// direction `dir`, up to and including `steps` hops away (clamped at the
    /// mesh edge).
    pub fn segment(self, from: NodeId, dir: Direction, steps: u16) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = from;
        for _ in 0..steps {
            match self.neighbor(cur, dir) {
                Some(n) => {
                    out.push(n);
                    cur = n;
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_roundtrip() {
        let m = Mesh::new(8, 8);
        for n in m.nodes() {
            assert_eq!(m.node_at(m.coord(n)), n);
        }
    }

    #[test]
    fn coord_layout_matches_paper_figure() {
        // In Figure 1/2 of the paper, router "31" of a 4x4 mesh is row 3,
        // column 1.
        let m = Mesh::new(4, 4);
        let n = m.node_at(Coord::new(1, 3));
        assert_eq!(n.index(), 13);
        assert_eq!(m.coord(NodeId(13)), Coord::new(1, 3));
    }

    #[test]
    fn neighbors_at_edges() {
        let m = Mesh::new(4, 4);
        let sw = m.node_at(Coord::new(0, 0));
        assert_eq!(m.neighbor(sw, Direction::West), None);
        assert_eq!(m.neighbor(sw, Direction::South), None);
        assert_eq!(m.neighbor(sw, Direction::East), Some(m.node_at(Coord::new(1, 0))));
        assert_eq!(m.neighbor(sw, Direction::North), Some(m.node_at(Coord::new(0, 1))));
        assert_eq!(m.neighbor(sw, Direction::Local), None);
    }

    #[test]
    fn hops_and_smart_hops() {
        let m = Mesh::new(8, 8);
        let a = m.node_at(Coord::new(0, 0));
        let b = m.node_at(Coord::new(7, 7));
        assert_eq!(m.hops(a, b), 14);
        // The paper: corner-to-corner on 8x8 with HPCmax=4 is 4 SMART-hops.
        assert_eq!(m.smart_hops(a, b, 4), 4);
        // X-only traversal of 3 hops is a single SMART-hop.
        let c = m.node_at(Coord::new(3, 0));
        assert_eq!(m.smart_hops(a, c, 4), 1);
        // Same node: zero.
        assert_eq!(m.smart_hops(a, a, 4), 0);
    }

    #[test]
    fn xy_route_is_x_then_y() {
        let m = Mesh::new(8, 8);
        let a = m.node_at(Coord::new(1, 1));
        let b = m.node_at(Coord::new(4, 3));
        let route = m.xy_route(a, b);
        assert_eq!(
            route,
            vec![
                Direction::East,
                Direction::East,
                Direction::East,
                Direction::North,
                Direction::North
            ]
        );
    }

    #[test]
    fn advance_clamps_at_edge() {
        let m = Mesh::new(4, 4);
        let a = m.node_at(Coord::new(2, 2));
        assert_eq!(m.advance(a, Direction::East, 5), m.node_at(Coord::new(3, 2)));
        assert_eq!(m.advance(a, Direction::South, 10), m.node_at(Coord::new(2, 0)));
        assert_eq!(m.advance(a, Direction::Local, 3), a);
    }

    #[test]
    fn segment_stops_at_edge() {
        let m = Mesh::new(4, 4);
        let a = m.node_at(Coord::new(1, 0));
        let seg = m.segment(a, Direction::East, 4);
        assert_eq!(
            seg,
            vec![m.node_at(Coord::new(2, 0)), m.node_at(Coord::new(3, 0))]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_out_of_range_panics() {
        Mesh::new(2, 2).coord(NodeId(4));
    }
}
