//! SMART fabric: Single-cycle Multi-hop Asynchronous Repeated Traversal.
//!
//! Every cycle, switch-allocation winners at each router broadcast a SMART
//! Setup Request (SSR) up to `HPCmax` hops along their output dimension.
//! Each router on the path arbitrates among the SSRs it receives, giving
//! priority to *nearer* flits; the winner's multi-hop bypass path is pre-set
//! and the flit traverses it in a single cycle (ST+LT), being latched only at
//! the router where it stops. Losers are prematurely buffered at the router
//! where they lost and retry from there.
//!
//! The implementation follows the SMART-1D design used by the paper: flits
//! never bypass a turn — an X+Y route costs at least two SMART-hops — and
//! the best-case latency is 2 cycles per SMART-hop (SSR, then ST+LT).

use crate::config::NocConfig;
use crate::message::VirtualNetwork;
use crate::router::{
    dir_link, Arrival, Buffered, FabricEngine, FlightInfo, InputBuffers, LinkOccupancy, RoundRobin,
};
use crate::topology::{Direction, Mesh, NodeId};

const PORTS: usize = 5;

/// A granted SMART Setup Request: `flight` intends to leave `start` in
/// direction `dir` and travel `want_hops` hops this cycle.
#[derive(Debug, Clone, Copy)]
struct Ssr {
    flight: FlightInfo,
    start: NodeId,
    port: usize,
    dir: Direction,
    want_hops: u16,
}

/// The SMART-NoC fabric engine.
#[derive(Debug)]
pub struct SmartFabric {
    cfg: NocConfig,
    mesh: Mesh,
    buffers: Vec<InputBuffers>,
    arbiters: Vec<RoundRobin>,
    links: LinkOccupancy,
    in_flight: usize,
    buffer_writes: u64,
    premature_stops: u64,
}

impl SmartFabric {
    /// Builds the fabric for the given configuration.
    pub fn new(cfg: NocConfig) -> Self {
        let mesh = cfg.mesh;
        let nodes = mesh.len();
        SmartFabric {
            cfg,
            mesh,
            buffers: (0..nodes)
                .map(|_| InputBuffers::new(PORTS, cfg.vn_buffer_capacity()))
                .collect(),
            arbiters: (0..nodes * PORTS).map(|_| RoundRobin::new()).collect(),
            links: LinkOccupancy::new(nodes, PORTS),
            in_flight: 0,
            buffer_writes: 0,
            premature_stops: 0,
        }
    }

    /// Number of times a flit was stopped before completing its intended
    /// SMART-hop because it lost SSR arbitration to a nearer flit.
    pub fn premature_stops(&self) -> u64 {
        self.premature_stops
    }

    /// Desired output direction and hop count for `flight` sitting at `at`:
    /// the remaining distance in the current XY dimension, clamped to
    /// `HPCmax` (SMART-1D stops at the turn router).
    fn desired(&self, at: NodeId, flight: &FlightInfo) -> Option<(Direction, u16)> {
        let dir = self.mesh.xy_next_dir(at, flight.dest)?;
        let here = self.mesh.coord(at);
        let there = self.mesh.coord(flight.dest);
        let remaining = if dir.is_horizontal() {
            here.x.abs_diff(there.x)
        } else {
            here.y.abs_diff(there.y)
        };
        Some((dir, remaining.min(self.cfg.hpc_max)))
    }
}

impl FabricEngine for SmartFabric {
    fn can_accept(&self, node: NodeId, vn: VirtualNetwork) -> bool {
        self.buffers[node.index()].has_space(Direction::Local.index(), vn)
    }

    fn inject(&mut self, flight: FlightInfo, now: u64) {
        self.buffers[flight.src.index()].push(
            Direction::Local.index(),
            flight.vn,
            Buffered {
                flight,
                ready_at: now + 1,
            },
        );
        self.in_flight += 1;
        self.buffer_writes += 1;
    }

    fn tick(&mut self, now: u64, arrivals: &mut Vec<Arrival>) {
        // Phase 1 — local switch allocation + SSR generation.
        //
        // At each router, for each output direction, at most one ready head
        // packet wins the switch and broadcasts an SSR of length
        // min(remaining-in-dimension, HPCmax).
        let mut ssrs: Vec<Ssr> = Vec::new();
        for node in self.mesh.nodes() {
            let bufs = &self.buffers[node.index()];
            if bufs.is_empty() {
                continue;
            }
            for out in Direction::CARDINAL {
                if !self.links.is_free(node, dir_link(out), now) {
                    continue;
                }
                let mut candidates: Vec<usize> = Vec::new();
                let mut lane_of: Vec<(usize, VirtualNetwork, u16)> = Vec::new();
                for (lane_idx, (port, vn)) in bufs.lanes().enumerate() {
                    if let Some(head) = bufs.head(port, vn) {
                        if head.ready_at <= now {
                            if let Some((dir, hops)) = self.desired(node, &head.flight) {
                                if dir == out && hops > 0 {
                                    candidates.push(lane_idx);
                                    lane_of.push((port, vn, hops));
                                }
                            }
                        }
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                let arb = &mut self.arbiters[node.index() * PORTS + dir_link(out)];
                let total_lanes = PORTS * VirtualNetwork::ALL.len();
                if let Some(winner) = arb.pick(&candidates, total_lanes) {
                    let pos = candidates
                        .iter()
                        .position(|&c| c == winner)
                        .expect("winner in list");
                    let (port, vn, hops) = lane_of[pos];
                    let head = self.buffers[node.index()]
                        .head(port, vn)
                        .expect("head exists");
                    ssrs.push(Ssr {
                        flight: head.flight,
                        start: node,
                        port,
                        dir: out,
                        want_hops: hops,
                    });
                }
            }
        }

        // Phase 2 — SSR arbitration with nearer-flit priority.
        //
        // Links are claimed in rounds of increasing distance from each SSR's
        // start router: a flit claiming the link out of its own router
        // (round 1) always beats a flit trying to bypass through that router
        // (round >= 2), which is exactly the "prioritize local/nearer flits"
        // rule of the SMART paper. An SSR whose claim fails is truncated and
        // its flit stops (is prematurely buffered) at the router before the
        // contended link.
        let nodes = self.mesh.len();
        // claimed[node * 4 + dir'] = true if the link leaving `node` in a
        // cardinal direction has been claimed this cycle.
        let mut claimed = vec![false; nodes * 4];
        let claim_idx = |node: NodeId, dir: Direction| node.index() * 4 + dir_link(dir);
        // travel[i] = hops SSR i actually gets to traverse this cycle.
        let mut travel: Vec<u16> = vec![0; ssrs.len()];
        let mut active: Vec<bool> = ssrs.iter().map(|s| s.want_hops > 0).collect();
        let max_hops = self.cfg.hpc_max.max(1);
        for round in 0..max_hops {
            for (i, ssr) in ssrs.iter().enumerate() {
                if !active[i] || round >= ssr.want_hops {
                    active[i] = false;
                    continue;
                }
                // Router the flit sits at after `round` hops.
                let at = self.mesh.advance(ssr.start, ssr.dir, round);
                let idx = claim_idx(at, ssr.dir);
                if claimed[idx] {
                    // Lost to a nearer flit: stop here.
                    active[i] = false;
                    if travel[i] < ssr.want_hops && travel[i] > 0 {
                        self.premature_stops += 1;
                    }
                } else {
                    claimed[idx] = true;
                    travel[i] += 1;
                }
            }
        }
        for (i, ssr) in ssrs.iter().enumerate() {
            if travel[i] > 0 && travel[i] < ssr.want_hops {
                // Count flits truncated in the final round as premature too.
                self.premature_stops += u64::from(active[i]);
            }
        }

        // Phase 3 — single-cycle multi-hop traversal (ST + LT) of the
        // granted paths. The flit is latched at the stop router at the end of
        // the next cycle; every claimed link is held for the packet length.
        for (i, ssr) in ssrs.iter().enumerate() {
            let hops = travel[i];
            if hops == 0 {
                continue;
            }
            let buffered = self.buffers[ssr.start.index()]
                .pop(ssr.port, ssr.flight.vn)
                .expect("ssr packet present");
            let mut flight = buffered.flight;
            let flits = flight.flits as u64;
            for h in 0..hops {
                let link_node = self.mesh.advance(ssr.start, ssr.dir, h);
                self.links
                    .occupy(link_node, dir_link(ssr.dir), now + flits);
            }
            let stop = self.mesh.advance(ssr.start, ssr.dir, hops);
            let arrival_cycle = now + 1 + (flits - 1);
            flight.stops += 1;
            if stop == flight.dest {
                self.in_flight -= 1;
                arrivals.push(Arrival {
                    flight,
                    at: stop,
                    now: arrival_cycle,
                });
            } else {
                self.buffer_writes += 1;
                self.buffers[stop.index()].push(
                    ssr.dir.opposite().index(),
                    flight.vn,
                    Buffered {
                        flight,
                        ready_at: arrival_cycle + 1,
                    },
                );
            }
        }
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn buffer_writes(&self) -> u64 {
        self.buffer_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::PacketId;

    fn flight(id: u64, src: u16, dest: u16, flits: u32) -> FlightInfo {
        FlightInfo {
            id: PacketId(id),
            src: NodeId(src),
            dest: NodeId(dest),
            vn: VirtualNetwork::Request,
            flits,
            injected_at: 0,
            stops: 0,
        }
    }

    fn drain(fab: &mut SmartFabric, cycles: u64) -> Vec<Arrival> {
        let mut arrivals = Vec::new();
        for now in 0..cycles {
            fab.tick(now, &mut arrivals);
        }
        arrivals
    }

    #[test]
    fn single_smart_hop_covers_hpcmax_hops() {
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        let mut fab = SmartFabric::new(cfg);
        // 4 hops east: one SMART-hop, ~2-3 cycles total.
        fab.inject(flight(1, 0, 4, 1), 0);
        let arr = drain(&mut fab, 20);
        assert_eq!(arr.len(), 1);
        let latency = arr[0].now - arr[0].flight.injected_at;
        assert!(latency <= 3, "latency {latency}");
        assert_eq!(arr[0].flight.stops, 1);
    }

    #[test]
    fn corner_to_corner_is_about_8_cycles() {
        // Section 2: 14 hops on 8x8 with HPCmax=4 is 4 SMART-hops = 8 cycles
        // best case.
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        let mut fab = SmartFabric::new(cfg);
        fab.inject(flight(1, 0, 63, 1), 0);
        let arr = drain(&mut fab, 40);
        assert_eq!(arr.len(), 1);
        let latency = arr[0].now - arr[0].flight.injected_at;
        assert!((8..=10).contains(&latency), "latency {latency}");
        assert_eq!(arr[0].flight.stops, 4);
    }

    #[test]
    fn smart_beats_conventional_on_long_paths() {
        use crate::conventional::ConventionalFabric;
        let smart_cfg = NocConfig::smart_mesh(8, 8, 4);
        let conv_cfg = NocConfig::conventional_mesh(8, 8);
        let mut smart = SmartFabric::new(smart_cfg);
        let mut conv = ConventionalFabric::new(conv_cfg);
        smart.inject(flight(1, 0, 63, 1), 0);
        conv.inject(flight(1, 0, 63, 1), 0);
        let s = drain(&mut smart, 100)[0].now;
        let mut arrivals = Vec::new();
        for now in 0..100 {
            conv.tick(now, &mut arrivals);
        }
        let c = arrivals[0].now;
        assert!(s * 2 <= c, "smart {s} vs conventional {c}");
    }

    #[test]
    fn turning_flit_takes_two_smart_hops() {
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        let mut fab = SmartFabric::new(cfg);
        // 3 hops east + 3 hops north: SMART-1D forces a stop at the turn.
        let dest = 8 * 3 + 3;
        fab.inject(flight(1, 0, dest, 1), 0);
        let arr = drain(&mut fab, 20);
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].flight.stops, 2);
        let latency = arr[0].now;
        assert!((4..=6).contains(&latency), "latency {latency}");
    }

    #[test]
    fn nearer_flit_wins_and_farther_flit_stops_prematurely() {
        // Recreates Figure 2c: flit A from router 0 going east 3+ hops,
        // flit B injected at router 1 also going east. B is "nearer" to
        // router 1's output link, so A must stop prematurely at router 1.
        let cfg = NocConfig::smart_mesh(8, 1, 4);
        let mut fab = SmartFabric::new(cfg);
        fab.inject(flight(1, 0, 6, 1), 0); // A: wants 0 -> 4 in one SMART-hop
        fab.inject(flight(2, 1, 6, 1), 0); // B: local at router 1
        let arr = drain(&mut fab, 40);
        assert_eq!(arr.len(), 2);
        let a = arr.iter().find(|a| a.flight.id == PacketId(1)).unwrap();
        let b = arr.iter().find(|a| a.flight.id == PacketId(2)).unwrap();
        // A is delayed relative to running alone (which would be ~4 cycles).
        assert!(a.now > b.now || a.flight.stops > 2, "a {a:?} b {b:?}");
        assert!(fab.premature_stops() >= 1);
    }

    #[test]
    fn buffer_writes_counted_only_at_stops() {
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        let mut fab = SmartFabric::new(cfg);
        fab.inject(flight(1, 0, 4, 1), 0);
        drain(&mut fab, 20);
        // One injection write, no intermediate stop writes (the single
        // SMART-hop goes straight to the destination).
        assert_eq!(fab.buffer_writes(), 1);
    }
}
