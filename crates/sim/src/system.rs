//! The simulated CMP: cores, caches, directories, memory controllers and the
//! NoC.
//!
//! # Two execution modes, one semantics
//!
//! [`CmpSystem::step`] is the *naive reference*: it advances every component
//! by exactly one cycle, and its behaviour defines the simulation. On top of
//! it, [`CmpSystem::run`] is an **event-driven scheduler with cycle
//! skipping**: after each stepped cycle it computes the earliest future
//! cycle at which *any* component can act and fast-forwards the clock across
//! the dead cycles in between (e.g. the 200-cycle DRAM latency while every
//! core is stalled). [`CmpSystem::run_naive`] keeps the literal per-cycle
//! loop; the two must produce bit-identical [`SimResults`] (locked in by the
//! root `tests/equivalence.rs` suite).
//!
//! # Event-driven invariants
//!
//! Cycle skipping is exact because a skipped cycle is provably a no-op step.
//! Every time-dependent component therefore exposes its schedule:
//!
//! * **Cores** — [`CoreModel::needs_tick`] is `false` only when a tick
//!   cannot change state (finished, stalled on a fill, or parked at an
//!   already-announced barrier). Any core that needs a tick forces the next
//!   step to happen on the very next cycle.
//! * **Pending protocol messages** — the local-delay heap is keyed by its
//!   ready cycle; the earliest entry names the next injection cycle.
//! * **NoC retries** — messages bounced by back-pressure retry every cycle,
//!   so a non-empty retry queue disables skipping entirely (conservative,
//!   and rare outside saturation).
//! * **Memory controllers** — `MemoryController::next_event` is the
//!   earliest pending DRAM `fire_at`.
//! * **Network** — `Network::next_event` names the earliest cycle at which
//!   a network tick can change state *even under partial occupancy*: it
//!   folds the front of the queued-arrival heap (multi-flit releases,
//!   high-radix pipeline exits) with the fabric engine's per-head probe
//!   (`FabricEngine::next_event`), which scans every occupied (router,
//!   lane) head for the first cycle it is both switch-eligible
//!   (`ready_at`) and sees its requested output link free. The probes are
//!   conservative from below: they may name a cycle at which arbitration
//!   or downstream occupancy then denies every move — such a tick changes
//!   no state, because arbiter pointers and event counters only move when
//!   a candidate exists — but they never skip past a live event. This is
//!   the **per-component horizon contract**: skipping engages whenever
//!   *all* components agree on a future horizon, not only at global NoC
//!   drain (the pre-PR-5 behaviour), so barrier-phased and DRAM-bound
//!   workloads with stragglers in flight still fast-forward.
//!
//! The horizon fold itself short-circuits: any source whose event is due
//! *now* ends the probe immediately, so compute-dense phases pay one bitset
//! scan and congested phases stop at the first now-eligible head.
//!
//! Anyone adding new time-dependent state to the system must either expose
//! its next event in [`CmpSystem`]'s horizon computation (and keep that
//! probe free of state mutation — counters may only move in
//! `inject`/`tick`/handlers) or force per-cycle stepping while that state
//! is active, otherwise `run` silently diverges from `run_naive`. The root
//! `tests/equivalence.rs` suite — including its seeded randomized stress
//! runs over hundreds of short configurations — is the oracle for every
//! probe in this chain.

use crate::config::SystemConfig;
use crate::core::{CoreModel, CoreStatus};
use crate::results::SimResults;
use loco_cache::{
    CacheStats, DirectoryController, L1Controller, L2Controller, MemoryController, MemoryMap,
    MsgKind, Organization, Outgoing, ProtocolMsg, ResponseSource, Unit,
};
use loco_noc::{
    Delivered, Destination, FxHashMap, FxHashSet, MulticastGroupId, NetMessage, Network, NodeId,
};
use loco_workloads::CoreTrace;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A protocol message waiting out its local processing delay before being
/// injected into the network at `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    ready: u64,
    seq: u64,
    node: NodeId,
    msg: ProtocolMsg,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready, self.seq).cmp(&(other.ready, other.seq))
    }
}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct BarrierTracker {
    group_sizes: FxHashMap<usize, usize>,
    arrivals: FxHashMap<(usize, u32), FxHashSet<usize>>,
}

impl BarrierTracker {
    /// Registers an arrival; returns `true` if the barrier is now complete.
    fn arrive(&mut self, group: usize, id: u32, core: usize) -> bool {
        let set = self.arrivals.entry((group, id)).or_default();
        set.insert(core);
        set.len() >= self.group_sizes.get(&group).copied().unwrap_or(usize::MAX)
    }

    fn release(&mut self, group: usize, id: u32) -> Vec<usize> {
        self.arrivals
            .remove(&(group, id))
            .map(|s| s.into_iter().collect())
            .unwrap_or_default()
    }
}

/// A full simulated chip multiprocessor.
pub struct CmpSystem {
    cfg: SystemConfig,
    org: Organization,
    memmap: MemoryMap,
    network: Network<ProtocolMsg>,
    cores: Vec<CoreModel>,
    l1s: Vec<L1Controller>,
    l2s: Vec<L2Controller>,
    dirs: FxHashMap<NodeId, DirectoryController>,
    mems: FxHashMap<NodeId, MemoryController>,
    /// Memory-controller nodes in ascending order: the per-cycle DRAM tick
    /// iterates this instead of re-collecting (and re-ordering) map keys.
    mem_nodes: Vec<NodeId>,
    vms_groups: FxHashMap<u64, MulticastGroupId>,
    pending: BinaryHeap<Reverse<Pending>>,
    retry: VecDeque<NetMessage<ProtocolMsg>>,
    barriers: BarrierTracker,
    now: u64,
    seq: u64,
    /// Number of `step()` calls executed (diagnostic: `cycle() -
    /// steps_executed()` is how many dead cycles the event-driven scheduler
    /// skipped).
    steps_executed: u64,
    /// Cycles skipped while the NoC still held in-flight packets — skips the
    /// pre-PR-5 drain-only probe could never take. Event-driven mode only;
    /// deliberately not part of [`SimResults`] (naive runs never skip).
    skipped_while_busy: u64,
    // Persistent per-step scratch buffers: the step loop is the simulator's
    // hottest path and must not allocate in steady state.
    outgoing_scratch: Vec<Outgoing>,
    inject_scratch: Vec<NetMessage<ProtocolMsg>>,
    delivery_scratch: Vec<Delivered<ProtocolMsg>>,
    /// Bitset mirror of `CoreModel::needs_tick` per core, maintained at
    /// every transition (after a tick, on fill, on barrier release). The
    /// per-cycle core loop walks set bits instead of probing every core, and
    /// the event horizon's "any core runnable?" probe becomes O(words).
    runnable: Vec<u64>,
    /// Cores whose trace has completed (a one-way transition, counted when a
    /// core's tick first reports it), making `all_finished` O(1) instead of
    /// an O(cores) scan per cycle.
    finished_count: usize,
    // System-level latency accounting (attributed at L1 fill time).
    l2_hit_latency_sum: u64,
    l2_hit_latency_count: u64,
    miss_latency_sum: u64,
    miss_latency_count: u64,
}

impl CmpSystem {
    /// Builds a system where core `i` replays `traces[i]`; all cores belong
    /// to barrier group 0.
    ///
    /// # Panics
    ///
    /// Panics if there are more traces than tiles.
    pub fn new(cfg: SystemConfig, traces: Vec<CoreTrace>) -> Self {
        let n = traces.len();
        Self::with_groups(cfg, traces, vec![0; n])
    }

    /// Builds a system with an explicit barrier/task group per core
    /// (multi-program workloads map each task instance to its own group).
    ///
    /// # Panics
    ///
    /// Panics if there are more traces than tiles or the group vector length
    /// does not match.
    pub fn with_groups(cfg: SystemConfig, mut traces: Vec<CoreTrace>, mut groups: Vec<usize>) -> Self {
        let cores_n = cfg.num_cores();
        assert!(
            traces.len() <= cores_n,
            "{} traces for a {}-core system",
            traces.len(),
            cores_n
        );
        assert_eq!(traces.len(), groups.len(), "one group per trace");
        traces.resize(cores_n, CoreTrace::default());
        groups.resize(cores_n, usize::MAX);
        let org = cfg.organization();
        let memmap = cfg.memory_map();
        let mut network = Network::new(cfg.noc_config());

        // Pre-register one multicast group per virtual mesh (one per HNid).
        let mut vms_groups = FxHashMap::default();
        if org.uses_vms() {
            for hnid in 0..org.num_vms() as u64 {
                let members = org.vms_members(loco_cache::LineAddr(hnid));
                let id = network.register_multicast_group(members);
                vms_groups.insert(hnid, id);
            }
        }

        let mut barriers = BarrierTracker::default();
        for (i, g) in groups.iter().enumerate() {
            if !traces[i].ops().is_empty() {
                *barriers.group_sizes.entry(*g).or_insert(0) += 1;
            }
        }

        let cores: Vec<CoreModel> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| CoreModel::new(NodeId(i as u16), t, groups[i]))
            .collect();
        let l1s: Vec<L1Controller> = (0..cores_n)
            .map(|i| L1Controller::new(NodeId(i as u16), cfg.l1, org))
            .collect();
        let l2s: Vec<L2Controller> = (0..cores_n)
            .map(|i| L2Controller::new(NodeId(i as u16), cfg.l2, org, memmap.clone()))
            .collect();
        let dirs: FxHashMap<NodeId, DirectoryController> = memmap
            .controllers()
            .iter()
            .map(|&n| (n, DirectoryController::new(n, cfg.dir, org)))
            .collect();
        let mems: FxHashMap<NodeId, MemoryController> = memmap
            .controllers()
            .iter()
            .map(|&n| (n, MemoryController::new(n, cfg.mem)))
            .collect();
        let mut mem_nodes: Vec<NodeId> = memmap.controllers().to_vec();
        mem_nodes.sort_unstable();

        CmpSystem {
            cfg,
            org,
            memmap,
            network,
            cores,
            l1s,
            l2s,
            dirs,
            mems,
            mem_nodes,
            vms_groups,
            pending: BinaryHeap::new(),
            retry: VecDeque::new(),
            barriers,
            now: 0,
            seq: 0,
            steps_executed: 0,
            skipped_while_busy: 0,
            outgoing_scratch: Vec::new(),
            inject_scratch: Vec::new(),
            delivery_scratch: Vec::new(),
            // Every core starts runnable (even an empty trace needs one tick
            // to record its finish, exactly as in naive stepping).
            runnable: {
                let mut words = vec![0u64; cores_n.div_ceil(64)];
                for i in 0..cores_n {
                    words[i / 64] |= 1 << (i % 64);
                }
                words
            },
            finished_count: 0,
            l2_hit_latency_sum: 0,
            l2_hit_latency_count: 0,
            miss_latency_sum: 0,
            miss_latency_count: 0,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.now
    }

    /// Number of cycles actually stepped so far; the difference to
    /// [`CmpSystem::cycle`] is the dead time the event-driven scheduler
    /// skipped.
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Cycles the event-driven scheduler skipped while the NoC still held
    /// in-flight packets. The pre-PR-5 probe only skipped once the network
    /// had fully drained, so any non-zero value here is progress only the
    /// fine-grained per-component horizon can make (the equivalence suite
    /// asserts this stays non-zero on stall-heavy workloads).
    pub fn skipped_while_busy(&self) -> u64 {
        self.skipped_while_busy
    }

    /// Whether every core has finished its trace.
    pub fn all_finished(&self) -> bool {
        debug_assert_eq!(
            self.finished_count == self.cores.len(),
            self.cores.iter().all(CoreModel::is_finished)
        );
        self.finished_count == self.cores.len()
    }

    /// Drains `outgoing` into the pending-injection heap (the buffer is a
    /// reusable scratch; its capacity survives for the next caller).
    fn schedule(&mut self, node: NodeId, outgoing: &mut Vec<Outgoing>) {
        for o in outgoing.drain(..) {
            self.seq += 1;
            self.pending.push(Reverse(Pending {
                ready: self.now + o.delay,
                seq: self.seq,
                node,
                msg: o.msg,
            }));
        }
    }

    fn to_net(&self, node: NodeId, msg: ProtocolMsg) -> NetMessage<ProtocolMsg> {
        let dest = match msg.kind {
            MsgKind::BcastGetS | MsgKind::BcastGetM => {
                let hnid = self.org.vms_id(msg.addr);
                let group = self.vms_groups[&hnid];
                Destination::Multicast(group)
            }
            _ => Destination::Unicast(msg.dst.node),
        };
        NetMessage {
            src: node,
            dest,
            vn: msg.kind.virtual_network(),
            size_bytes: msg.kind.size_bytes(),
            payload: msg,
        }
    }

    fn dispatch(&mut self, delivered: Delivered<ProtocolMsg>, out: &mut Vec<Outgoing>) {
        let node = delivered.receiver;
        let msg = delivered.msg.payload;
        let idx = node.index();
        debug_assert!(out.is_empty());
        match msg.dst.unit {
            Unit::L1 => {
                if let Some(fill) = self.l1s[idx].handle(msg, self.now, out) {
                    let latency = fill.completed_at.saturating_sub(fill.issued_at);
                    self.miss_latency_sum += latency;
                    self.miss_latency_count += 1;
                    if fill.source == ResponseSource::Home {
                        self.l2_hit_latency_sum += latency;
                        self.l2_hit_latency_count += 1;
                    }
                    self.cores[idx].on_fill();
                    self.runnable[idx / 64] |= 1 << (idx % 64);
                }
            }
            Unit::L2 => self.l2s[idx].handle(msg, self.now, out),
            Unit::Dir => {
                self.dirs
                    .get_mut(&node)
                    .expect("directory at memory-controller node")
                    .handle(msg, self.now, out);
            }
            Unit::Mem => {
                self.mems
                    .get_mut(&node)
                    .expect("memory controller node")
                    .handle(msg, self.now, out);
            }
        }
        self.schedule(node, out);
    }

    /// Advances the system by exactly one cycle (the naive reference
    /// semantics — see the module docs).
    pub fn step(&mut self) {
        let now = self.now;
        self.steps_executed += 1;
        let model_barriers = self.cfg.full_system;

        // 1. Cores issue instructions. Quiescent cores are skipped: their
        // tick is a proven no-op (see `CoreModel::needs_tick`), so skipping
        // is exact in both execution modes. The runnable bitset mirrors
        // `needs_tick` and is walked in ascending core order, matching the
        // naive full scan.
        let mut completed_barriers: Vec<(usize, u32)> = Vec::new();
        let mut out = std::mem::take(&mut self.outgoing_scratch);
        debug_assert!(out.is_empty());
        for w in 0..self.runnable.len() {
            let mut bits = self.runnable[w];
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let status = self.cores[i].tick(now, &mut self.l1s[i], &mut out, model_barriers);
                if let CoreStatus::AtBarrier(id) = status {
                    let group = self.cores[i].group();
                    if self.barriers.arrive(group, id, i) {
                        completed_barriers.push((group, id));
                    }
                }
                if !self.cores[i].needs_tick() {
                    self.runnable[w] &= !(1 << (i % 64));
                    // A finished core leaves the runnable set for good; this
                    // is the only place the transition can be observed.
                    if self.cores[i].is_finished() {
                        self.finished_count += 1;
                    }
                }
                if !out.is_empty() {
                    self.schedule(NodeId(i as u16), &mut out);
                }
            }
        }
        for (group, id) in completed_barriers {
            for core_idx in self.barriers.release(group, id) {
                self.cores[core_idx].on_barrier_release();
                self.runnable[core_idx / 64] |= 1 << (core_idx % 64);
            }
            // Also release any cores of the group that arrive exactly now
            // (handled next cycle through the tracker being empty is fine:
            // they re-register and form the next barrier instance).
        }

        // 2. Messages whose local processing delay elapsed are injected.
        let mut to_inject = std::mem::take(&mut self.inject_scratch);
        debug_assert!(to_inject.is_empty());
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.ready > now {
                break;
            }
            let Reverse(p) = self.pending.pop().expect("peeked element");
            to_inject.push(self.to_net(p.node, p.msg));
        }
        // Retries first (older messages), then the newly ready ones. A
        // rejected message travels back out through the error, so nothing is
        // cloned speculatively on this path.
        let mut still_waiting = VecDeque::new();
        while let Some(m) = self.retry.pop_front() {
            if let Err(rejected) = self.network.inject(m) {
                still_waiting.push_back(rejected.into_message());
            }
        }
        for m in to_inject.drain(..) {
            if let Err(rejected) = self.network.inject(m) {
                still_waiting.push_back(rejected.into_message());
            }
        }
        self.inject_scratch = to_inject;
        self.retry = still_waiting;

        // 3. Memory controllers release DRAM responses whose latency elapsed.
        for i in 0..self.mem_nodes.len() {
            let node = self.mem_nodes[i];
            self.mems
                .get_mut(&node)
                .expect("memory controller")
                .tick(now, &mut out);
            if !out.is_empty() {
                self.schedule(node, &mut out);
            }
        }

        // 4. The fabric advances one cycle and deliveries are dispatched.
        self.network.tick();
        let mut deliveries = std::mem::take(&mut self.delivery_scratch);
        debug_assert!(deliveries.is_empty());
        self.network.eject_all_into(&mut deliveries);
        for delivered in deliveries.drain(..) {
            self.dispatch(delivered, &mut out);
        }
        self.delivery_scratch = deliveries;
        self.outgoing_scratch = out;

        self.now += 1;
    }

    /// Most in-flight packets the fabric may hold before the horizon stops
    /// probing it and pins to per-cycle stepping (see `next_step_cycle`).
    /// Stall-phase stragglers — the case the fine-grained horizon exists
    /// for — are a handful of packets; saturated phases hold tens to
    /// hundreds, and there a per-head probe costs more than the 1–2-cycle
    /// windows it could find. The cut-off only trades performance, never
    /// exactness.
    const BUSY_PROBE_LIMIT: usize = 8;

    /// Earliest cycle `>= self.now` at which [`CmpSystem::step`] can make
    /// progress, or `None` when no component will ever act again on its own
    /// (every remaining naive step would be a no-op).
    ///
    /// See the module docs for the per-component event sources and why the
    /// bound is exact.
    fn next_step_cycle(&self) -> Option<u64> {
        // A runnable core retires work every cycle; an unannounced barrier
        // arrival must also tick immediately. Checked first because it is
        // the cheapest probe (one bitset scan) and, during compute-dense
        // phases, short-circuits the fabric scan below.
        if self.runnable.iter().any(|&w| w != 0) {
            debug_assert!(self.cores.iter().any(CoreModel::needs_tick));
            return Some(self.now);
        }
        debug_assert!(!self.cores.iter().any(CoreModel::needs_tick));
        // Messages bounced by injection back-pressure retry every cycle.
        if !self.retry.is_empty() {
            return Some(self.now);
        }
        // Fold the timed event sources, cheapest probe first. Events can be
        // timestamped at or before `self.now` (e.g. a message scheduled with
        // zero delay during the dispatch phase of the step that just ran):
        // the naive loop would act on those on the very next cycle, so they
        // clamp to "step immediately" — and since `self.now` is the lowest
        // any candidate can fold to, a due-now source short-circuits the
        // remaining probes (in particular the per-head fabric scan, which is
        // the most expensive one and runs last).
        let now = self.now;
        let mut next = u64::MAX;
        if let Some(Reverse(p)) = self.pending.peek() {
            if p.ready <= now {
                return Some(now);
            }
            next = next.min(p.ready);
        }
        // Map iteration order is irrelevant here: the fold is a pure min.
        for mem in self.mems.values() {
            if let Some(t) = mem.next_event() {
                if t <= now {
                    return Some(now);
                }
                next = next.min(t);
            }
        }
        // The network probe covers partial occupancy: the queued-arrival
        // heap front and every buffered head's (ready, link-free) cycle.
        // Before PR 5 this was pinned to `now` whenever any packet was in
        // flight; the per-component horizon lets barrier and DRAM stalls
        // with stragglers in the fabric skip too. The probe costs one scan
        // over the occupied lanes, so it is only consulted while the fabric
        // holds few packets — the straggler regime where multi-cycle skip
        // windows actually exist. Under dense traffic events arrive nearly
        // every cycle and the scan would out-cost the skips, so the horizon
        // pins to "step now" exactly as the old drain-only probe did
        // (purely conservative: skipping less never changes results).
        if self.network.in_flight() > Self::BUSY_PROBE_LIMIT {
            return Some(now);
        }
        if let Some(t) = self.network.next_event() {
            if t <= now {
                return Some(now);
            }
            next = next.min(t);
        }
        if next == u64::MAX {
            None
        } else {
            Some(next)
        }
    }

    /// Runs until every core finishes or `max_cycles` elapse, and returns
    /// the aggregated results.
    ///
    /// This is the event-driven scheduler: dead cycles between events (DRAM
    /// waits, in-flight NoC gaps) are skipped wholesale. The results are
    /// bit-identical to [`CmpSystem::run_naive`]; see the module docs for
    /// the invariants that make the skipping exact.
    pub fn run(&mut self, max_cycles: u64) -> SimResults {
        while !self.all_finished() && self.now < max_cycles {
            self.step();
            if self.all_finished() || self.now >= max_cycles {
                break;
            }
            // Fast-forward across provably dead cycles. A fully quiescent
            // system (no future event at all) jumps straight to the cycle
            // budget, exactly where the naive no-op loop would end up.
            let target = self.next_step_cycle().unwrap_or(max_cycles).min(max_cycles);
            if target > self.now {
                if self.network.in_flight() > 0 {
                    self.skipped_while_busy += target - self.now;
                }
                self.network.advance_to(target);
                self.now = target;
            }
        }
        self.results()
    }

    /// Runs the naive per-cycle loop: [`CmpSystem::step`] for every single
    /// cycle, with no skipping. This is the reference semantics that
    /// [`CmpSystem::run`] must reproduce bit-for-bit; it is kept (and
    /// exercised by the equivalence suite) as the oracle for the
    /// event-driven scheduler.
    pub fn run_naive(&mut self, max_cycles: u64) -> SimResults {
        while !self.all_finished() && self.now < max_cycles {
            self.step();
        }
        self.results()
    }

    /// Assembles the results accumulated so far.
    pub fn results(&self) -> SimResults {
        let mut cache = CacheStats::default();
        for l1 in &self.l1s {
            cache.merge(l1.stats());
        }
        for l2 in &self.l2s {
            cache.merge(l2.stats());
        }
        for dir in self.dirs.values() {
            cache.merge(dir.stats());
        }
        for mem in self.mems.values() {
            cache.merge(mem.stats());
        }
        cache.instructions = self.cores.iter().map(CoreModel::instructions).sum();
        cache.l2_hit_latency_sum = self.l2_hit_latency_sum;
        cache.l2_hit_latency_count = self.l2_hit_latency_count;
        let runtime = self
            .cores
            .iter()
            .filter_map(CoreModel::finished_at)
            .max()
            .unwrap_or(self.now)
            .max(
                if self.all_finished() { 0 } else { self.now },
            );
        SimResults {
            runtime_cycles: runtime,
            completed: self.all_finished(),
            avg_l2_hit_latency: if self.l2_hit_latency_count == 0 {
                0.0
            } else {
                self.l2_hit_latency_sum as f64 / self.l2_hit_latency_count as f64
            },
            avg_miss_latency: if self.miss_latency_count == 0 {
                0.0
            } else {
                self.miss_latency_sum as f64 / self.miss_latency_count as f64
            },
            avg_search_delay: cache.avg_search_delay(),
            l2_mpki: cache.l2_mpki(),
            offchip_accesses: cache.offchip_accesses(),
            instructions: cache.instructions,
            network: self.network.stats(),
            cache,
        }
    }

    /// The memory-controller placement (exposed for tests and tools).
    pub fn memory_map(&self) -> &MemoryMap {
        &self.memmap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_cache::{ClusterShape, OrganizationKind};
    use loco_noc::RouterKind;
    use loco_workloads::{Benchmark, TraceGenerator};

    /// A small 16-core system so the protocol tests stay fast.
    fn small_cfg(org: OrganizationKind) -> SystemConfig {
        let mut cfg = SystemConfig::asplos_64(org);
        cfg.mesh_width = 4;
        cfg.mesh_height = 4;
        cfg.cluster = ClusterShape::new(2, 2);
        cfg
    }

    fn small_traces(mem_ops: u64, cores: usize) -> Vec<CoreTrace> {
        let spec = Benchmark::Lu.spec();
        TraceGenerator::new(7).generate(&spec, cores, mem_ops)
    }

    #[test]
    fn every_organization_runs_to_completion() {
        for org in [
            OrganizationKind::Private,
            OrganizationKind::Shared,
            OrganizationKind::LocoCc,
            OrganizationKind::LocoCcVms,
            OrganizationKind::LocoCcVmsIvr,
        ] {
            let cfg = small_cfg(org);
            let mut sys = CmpSystem::new(cfg, small_traces(150, 16));
            let r = sys.run(2_000_000);
            assert!(r.completed, "{org:?} did not complete");
            assert!(r.runtime_cycles > 0);
            assert!(r.instructions > 16 * 150);
            assert!(r.cache.l1_accesses >= 16 * 150);
            assert!(r.offchip_accesses > 0, "{org:?} never touched memory");
        }
    }

    #[test]
    fn every_router_kind_runs_to_completion() {
        for router in [RouterKind::Smart, RouterKind::Conventional, RouterKind::HighRadix] {
            let cfg = small_cfg(OrganizationKind::LocoCcVms).with_router(router);
            let mut sys = CmpSystem::new(cfg, small_traces(120, 16));
            let r = sys.run(2_000_000);
            assert!(r.completed, "{router:?} did not complete");
        }
    }

    #[test]
    fn shared_lines_are_found_on_chip_with_vms() {
        let cfg = small_cfg(OrganizationKind::LocoCcVms);
        let mut sys = CmpSystem::new(cfg, small_traces(400, 16));
        let r = sys.run(4_000_000);
        assert!(r.completed);
        assert!(r.cache.broadcasts > 0, "VMS broadcasts must occur");
        assert!(
            r.cache.remote_hits > 0,
            "some data must be found in other clusters"
        );
        assert!(r.avg_search_delay > 0.0);
    }

    #[test]
    fn ivr_migrations_happen_under_capacity_pressure() {
        // Radix has a working set much larger than one L2 slice; with the
        // slice shrunk to 4 KB the home nodes must evict, and with IVR those
        // victims migrate to other clusters instead of being dropped.
        let spec = Benchmark::Radix.spec();
        let traces = TraceGenerator::new(3).generate(&spec, 16, 600);
        let mut cfg = small_cfg(OrganizationKind::LocoCcVmsIvr);
        cfg.l2.geometry.size_bytes = 4 * 1024;
        let mut sys = CmpSystem::new(cfg, traces);
        let r = sys.run(6_000_000);
        assert!(r.completed);
        assert!(r.cache.ivr_migrations > 0, "IVR must trigger migrations");
        assert!(r.cache.ivr_accepted > 0, "some migrations must be accepted");
    }

    #[test]
    fn smart_has_lower_l2_hit_latency_than_conventional() {
        let traces = small_traces(300, 16);
        let smart = {
            let cfg = small_cfg(OrganizationKind::LocoCcVms);
            CmpSystem::new(cfg, traces.clone()).run(4_000_000)
        };
        let conv = {
            let cfg = small_cfg(OrganizationKind::LocoCcVms).with_router(RouterKind::Conventional);
            CmpSystem::new(cfg, traces).run(4_000_000)
        };
        assert!(smart.completed && conv.completed);
        assert!(
            smart.avg_l2_hit_latency < conv.avg_l2_hit_latency,
            "SMART {:.2} should beat conventional {:.2}",
            smart.avg_l2_hit_latency,
            conv.avg_l2_hit_latency
        );
        assert!(smart.runtime_cycles <= conv.runtime_cycles);
    }

    #[test]
    fn full_system_mode_with_barriers_completes() {
        let spec = Benchmark::Fft.spec();
        let traces = TraceGenerator::new(9)
            .with_barriers(true)
            .generate(&spec, 16, 300);
        let cfg = small_cfg(OrganizationKind::LocoCcVms).with_full_system(true);
        let mut sys = CmpSystem::new(cfg, traces);
        let r = sys.run(6_000_000);
        assert!(r.completed, "barrier workload must not deadlock");
    }

    #[test]
    fn event_driven_run_matches_naive_run_bit_for_bit() {
        // The root tests/equivalence.rs suite covers every organization and
        // router; this is the fast in-crate canary.
        let cfg = small_cfg(OrganizationKind::LocoCcVms);
        let traces = small_traces(200, 16);
        let event = CmpSystem::new(cfg, traces.clone()).run(2_000_000);
        let naive = CmpSystem::new(cfg, traces).run_naive(2_000_000);
        assert!(event.completed);
        assert_eq!(format!("{event:?}"), format!("{naive:?}"));
    }

    #[test]
    fn cycle_budget_is_respected_with_skipping() {
        // A budget that expires mid-flight: both modes must stop at exactly
        // the same cycle with the same partial results.
        let cfg = small_cfg(OrganizationKind::Private);
        let traces = small_traces(200, 16);
        let event = CmpSystem::new(cfg, traces.clone()).run(700);
        let naive = CmpSystem::new(cfg, traces).run_naive(700);
        assert!(!event.completed, "budget chosen to interrupt the run");
        assert_eq!(event.runtime_cycles, 700);
        assert_eq!(format!("{event:?}"), format!("{naive:?}"));
    }

    #[test]
    fn empty_traces_finish_immediately() {
        let cfg = small_cfg(OrganizationKind::Shared);
        let mut sys = CmpSystem::new(cfg, vec![CoreTrace::default(); 16]);
        let r = sys.run(100);
        assert!(r.completed);
        assert!(r.runtime_cycles <= 1);
        assert_eq!(r.offchip_accesses, 0);
    }

    #[test]
    fn private_cache_misses_more_than_shared_on_shared_data() {
        // A sharing-dominated workload with the L2 slices shrunk to 8 KB:
        // private per-tile L2s replicate the shared working set and thrash,
        // while the shared LLC holds a single copy chip-wide (Figure 6).
        let spec = loco_workloads::BenchmarkSpec::new(Benchmark::Barnes)
            .private_lines(64)
            .shared_lines(2048)
            .shared_fraction(0.9)
            .reuse(0.3)
            .pattern(loco_workloads::SharingPattern::Global);
        let traces = TraceGenerator::new(5).generate(&spec, 16, 600);
        let mut pcfg = small_cfg(OrganizationKind::Private);
        pcfg.l2.geometry.size_bytes = 8 * 1024;
        let mut scfg = small_cfg(OrganizationKind::Shared);
        scfg.l2.geometry.size_bytes = 8 * 1024;
        let private = CmpSystem::new(pcfg, traces.clone()).run(8_000_000);
        let shared = CmpSystem::new(scfg, traces).run(8_000_000);
        assert!(private.completed && shared.completed);
        assert!(
            private.offchip_accesses > shared.offchip_accesses,
            "private {} should exceed shared {}",
            private.offchip_accesses,
            shared.offchip_accesses
        );
    }
}
