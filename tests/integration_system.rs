//! End-to-end integration tests on the paper's 64-core configuration
//! (shortened traces): the qualitative relationships between the cache
//! organizations that every figure of the paper relies on.

use loco::{Benchmark, OrganizationKind, RouterKind, SimulationBuilder};

fn run_64(benchmark: Benchmark, org: OrganizationKind, mem_ops: u64) -> loco::SimResults {
    let r = SimulationBuilder::new()
        .benchmark(benchmark)
        .organization(org)
        .memory_ops_per_core(mem_ops)
        .run();
    assert!(r.completed, "{org:?} on {benchmark:?} did not complete");
    r
}

#[test]
fn all_five_organizations_complete_on_the_64_core_cmp() {
    for org in [
        OrganizationKind::Private,
        OrganizationKind::Shared,
        OrganizationKind::LocoCc,
        OrganizationKind::LocoCcVms,
        OrganizationKind::LocoCcVmsIvr,
    ] {
        let r = run_64(Benchmark::Blackscholes, org, 200);
        assert!(r.runtime_cycles > 0);
        assert!(r.instructions >= 64 * 200);
        assert!(r.cache.l1_accesses >= 64 * 200);
    }
}

#[test]
fn loco_l2_hit_latency_sits_between_private_and_shared() {
    // Figure 7: private < LOCO << shared for L2 hit latency.
    let private = run_64(Benchmark::Lu, OrganizationKind::Private, 400);
    let loco = run_64(Benchmark::Lu, OrganizationKind::LocoCcVmsIvr, 400);
    let shared = run_64(Benchmark::Lu, OrganizationKind::Shared, 400);
    assert!(
        private.avg_l2_hit_latency < loco.avg_l2_hit_latency,
        "private {:.2} < loco {:.2}",
        private.avg_l2_hit_latency,
        loco.avg_l2_hit_latency
    );
    assert!(
        loco.avg_l2_hit_latency < shared.avg_l2_hit_latency,
        "loco {:.2} < shared {:.2}",
        loco.avg_l2_hit_latency,
        shared.avg_l2_hit_latency
    );
}

#[test]
fn loco_runtime_beats_the_shared_baseline_on_neighbor_benchmarks() {
    // Figure 11: LOCO reduces run time relative to the shared cache.
    let shared = run_64(Benchmark::Lu, OrganizationKind::Shared, 400);
    let loco = run_64(Benchmark::Lu, OrganizationKind::LocoCcVmsIvr, 400);
    assert!(
        loco.runtime_cycles < shared.runtime_cycles,
        "LOCO {} should beat shared {}",
        loco.runtime_cycles,
        shared.runtime_cycles
    );
}

#[test]
fn vms_broadcasts_and_remote_hits_occur_on_shared_data() {
    let loco = run_64(Benchmark::Barnes, OrganizationKind::LocoCcVms, 400);
    assert!(loco.cache.broadcasts > 0);
    assert!(loco.cache.remote_hits > 0);
    assert!(loco.avg_search_delay > 0.0);
}

#[test]
fn smart_noc_outperforms_conventional_noc_for_loco() {
    // Figure 13: LOCO + SMART vs LOCO + conventional NoC.
    let smart = SimulationBuilder::new()
        .benchmark(Benchmark::Barnes)
        .organization(OrganizationKind::LocoCcVmsIvr)
        .router(RouterKind::Smart)
        .memory_ops_per_core(300)
        .run();
    let conv = SimulationBuilder::new()
        .benchmark(Benchmark::Barnes)
        .organization(OrganizationKind::LocoCcVmsIvr)
        .router(RouterKind::Conventional)
        .memory_ops_per_core(300)
        .run();
    assert!(smart.completed && conv.completed);
    assert!(smart.avg_l2_hit_latency < conv.avg_l2_hit_latency);
    assert!(smart.runtime_cycles < conv.runtime_cycles);
}

#[test]
fn high_radix_routers_hurt_l2_hit_latency() {
    // Figure 12a: the 4-stage high-radix pipeline raises intra-cluster hit
    // latency above SMART's.
    let smart = SimulationBuilder::new()
        .benchmark(Benchmark::Lu)
        .router(RouterKind::Smart)
        .memory_ops_per_core(300)
        .run();
    let hr = SimulationBuilder::new()
        .benchmark(Benchmark::Lu)
        .router(RouterKind::HighRadix)
        .memory_ops_per_core(300)
        .run();
    assert!(smart.avg_l2_hit_latency < hr.avg_l2_hit_latency);
}

#[test]
fn the_256_core_configuration_runs() {
    let r = SimulationBuilder::new()
        .mesh(16, 16)
        .benchmark(Benchmark::Blackscholes)
        .memory_ops_per_core(60)
        .run();
    assert!(r.completed);
    assert!(r.instructions >= 256 * 60);
}
