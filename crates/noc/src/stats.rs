//! Aggregate network statistics.

use crate::message::VirtualNetwork;

/// Counters accumulated by a [`crate::Network`] over a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkStats {
    /// Messages handed to `inject` (multicasts count once).
    pub injected_messages: u64,
    /// Copies delivered at destination NICs (a multicast to `n` members
    /// counts `n` times).
    pub delivered_copies: u64,
    /// Sum of end-to-end latencies of all delivered copies.
    pub total_latency: u64,
    /// Largest single delivery latency observed.
    pub max_latency: u64,
    /// Sum of router-buffer stops over all delivered copies.
    pub total_stops: u64,
    /// Deliveries per virtual network.
    pub per_vn_delivered: [u64; 5],
    /// Latency sum per virtual network.
    pub per_vn_latency: [u64; 5],
    /// Multicast child copies spawned at fork points.
    pub multicast_forks: u64,
}

impl NetworkStats {
    /// Records one delivered copy.
    pub fn record_delivery(&mut self, vn: VirtualNetwork, latency: u64, stops: u32) {
        self.delivered_copies += 1;
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        self.total_stops += u64::from(stops);
        self.per_vn_delivered[vn.index()] += 1;
        self.per_vn_latency[vn.index()] += latency;
    }

    /// Average delivery latency in cycles (0 if nothing delivered).
    pub fn avg_latency(&self) -> f64 {
        if self.delivered_copies == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.delivered_copies as f64
        }
    }

    /// Average latency on one virtual network.
    pub fn avg_latency_vn(&self, vn: VirtualNetwork) -> f64 {
        let n = self.per_vn_delivered[vn.index()];
        if n == 0 {
            0.0
        } else {
            self.per_vn_latency[vn.index()] as f64 / n as f64
        }
    }

    /// Average number of router stops per delivered copy.
    pub fn avg_stops(&self) -> f64 {
        if self.delivered_copies == 0 {
            0.0
        } else {
            self.total_stops as f64 / self.delivered_copies as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_empty_and_nonempty() {
        let mut s = NetworkStats::default();
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.avg_stops(), 0.0);
        s.record_delivery(VirtualNetwork::Request, 10, 2);
        s.record_delivery(VirtualNetwork::Response, 20, 4);
        assert_eq!(s.avg_latency(), 15.0);
        assert_eq!(s.avg_stops(), 3.0);
        assert_eq!(s.max_latency, 20);
        assert_eq!(s.avg_latency_vn(VirtualNetwork::Request), 10.0);
        assert_eq!(s.avg_latency_vn(VirtualNetwork::Forward), 0.0);
    }
}
