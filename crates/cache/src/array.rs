//! A generic set-associative cache array with LRU replacement and
//! last-access timestamps (the timestamps drive both LRU and the
//! inter-cluster victim-replacement age comparison of Section 3.3).

use crate::address::LineAddr;

/// Geometry of a cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheGeometry {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield at least one full set.
    pub fn sets(&self) -> usize {
        let lines = (self.size_bytes / self.line_bytes as u64) as usize;
        assert!(
            lines >= self.ways && lines % self.ways == 0,
            "cache of {} bytes with {}-byte lines cannot be {}-way",
            self.size_bytes,
            self.line_bytes,
            self.ways
        );
        lines / self.ways
    }

    /// Paper L1: 16 KB, 4-way, 32 B lines, 1-cycle access.
    pub fn asplos_l1() -> Self {
        CacheGeometry {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 32,
            latency: 1,
        }
    }

    /// Paper L2 slice: 64 KB, 8-way, 32 B lines, 4-cycle access.
    pub fn asplos_l2() -> Self {
        CacheGeometry {
            size_bytes: 64 * 1024,
            ways: 8,
            line_bytes: 32,
            latency: 4,
        }
    }
}

/// One resident cache line with caller-defined metadata `M`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Entry<M> {
    /// The line address stored in this way.
    pub addr: LineAddr,
    /// Protocol metadata (state, sharers, ...).
    pub meta: M,
    /// Cycle of the last access (LRU + IVR age).
    pub last_access: u64,
}

/// What `insert` displaced, if anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Eviction<M> {
    /// There was a free way; nothing was displaced.
    None,
    /// The LRU way was displaced; its entry is returned.
    Victim(Entry<M>),
}

/// A set-associative cache array.
///
/// The array is indexed externally: callers provide the set index (computed
/// from the address map of the organization in use) so the same array type
/// serves private, shared and LOCO slices.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheArray<M> {
    geometry: CacheGeometry,
    sets: Vec<Vec<Entry<M>>>,
}

impl<M> CacheArray<M> {
    /// Creates an empty array.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        CacheArray {
            geometry,
            sets: (0..sets).map(|_| Vec::new()).collect(),
        }
    }

    /// The array geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Looks up `addr` in `set`, updating its LRU timestamp on a hit.
    pub fn lookup_mut(&mut self, set: usize, addr: LineAddr, now: u64) -> Option<&mut Entry<M>> {
        let entry = self.sets[set].iter_mut().find(|e| e.addr == addr)?;
        entry.last_access = now;
        Some(entry)
    }

    /// Looks up `addr` in `set` without touching LRU state.
    pub fn peek(&self, set: usize, addr: LineAddr) -> Option<&Entry<M>> {
        self.sets[set].iter().find(|e| e.addr == addr)
    }

    /// Mutable peek without touching the LRU timestamp.
    pub fn peek_mut(&mut self, set: usize, addr: LineAddr) -> Option<&mut Entry<M>> {
        self.sets[set].iter_mut().find(|e| e.addr == addr)
    }

    /// Inserts `addr` into `set`, evicting the LRU entry if the set is full.
    ///
    /// If the line is already resident its metadata is replaced and no
    /// eviction occurs.
    pub fn insert(&mut self, set: usize, addr: LineAddr, meta: M, now: u64) -> Eviction<M> {
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.addr == addr) {
            e.meta = meta;
            e.last_access = now;
            return Eviction::None;
        }
        let evicted = if self.sets[set].len() >= self.geometry.ways {
            let (lru_idx, _) = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_access)
                .expect("set is non-empty");
            Eviction::Victim(self.sets[set].swap_remove(lru_idx))
        } else {
            Eviction::None
        };
        self.sets[set].push(Entry {
            addr,
            meta,
            last_access: now,
        });
        evicted
    }

    /// The entry that `insert` of a new line into `set` would displace, if
    /// the set is full (used by IVR to compare victim ages before accepting
    /// a migrated line).
    pub fn would_evict(&self, set: usize) -> Option<&Entry<M>> {
        if self.sets[set].len() >= self.geometry.ways {
            self.sets[set].iter().min_by_key(|e| e.last_access)
        } else {
            None
        }
    }

    /// Removes `addr` from `set`, returning its entry.
    pub fn invalidate(&mut self, set: usize, addr: LineAddr) -> Option<Entry<M>> {
        let idx = self.sets[set].iter().position(|e| e.addr == addr)?;
        Some(self.sets[set].swap_remove(idx))
    }

    /// Number of resident lines across all sets.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Iterates over all resident entries.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<M>> {
        self.sets.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheGeometry {
        CacheGeometry {
            size_bytes: 4 * 32 * 2, // 2 sets, 4 ways
            ways: 4,
            line_bytes: 32,
            latency: 1,
        }
    }

    #[test]
    fn geometry_sets() {
        assert_eq!(CacheGeometry::asplos_l1().sets(), 128);
        assert_eq!(CacheGeometry::asplos_l2().sets(), 256);
        assert_eq!(small().sets(), 2);
    }

    #[test]
    fn insert_lookup_and_lru_eviction() {
        let mut c: CacheArray<u32> = CacheArray::new(small());
        for i in 0..4u64 {
            assert_eq!(c.insert(0, LineAddr(i), i as u32, i), Eviction::None);
        }
        // Touch line 0 so line 1 becomes LRU.
        assert!(c.lookup_mut(0, LineAddr(0), 10).is_some());
        match c.insert(0, LineAddr(99), 99, 11) {
            Eviction::Victim(v) => assert_eq!(v.addr, LineAddr(1)),
            Eviction::None => panic!("expected an eviction"),
        }
        assert!(c.peek(0, LineAddr(1)).is_none());
        assert!(c.peek(0, LineAddr(0)).is_some());
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn reinsert_updates_metadata_without_eviction() {
        let mut c: CacheArray<u32> = CacheArray::new(small());
        c.insert(1, LineAddr(5), 1, 0);
        assert_eq!(c.insert(1, LineAddr(5), 2, 1), Eviction::None);
        assert_eq!(c.peek(1, LineAddr(5)).unwrap().meta, 2);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn would_evict_reports_lru_only_when_full() {
        let mut c: CacheArray<u32> = CacheArray::new(small());
        for i in 0..3u64 {
            c.insert(0, LineAddr(i), 0, i);
        }
        assert!(c.would_evict(0).is_none());
        c.insert(0, LineAddr(3), 0, 3);
        assert_eq!(c.would_evict(0).unwrap().addr, LineAddr(0));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c: CacheArray<u32> = CacheArray::new(small());
        c.insert(0, LineAddr(7), 0, 0);
        assert!(c.invalidate(0, LineAddr(7)).is_some());
        assert!(c.invalidate(0, LineAddr(7)).is_none());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn peek_does_not_update_lru() {
        let mut c: CacheArray<u32> = CacheArray::new(small());
        for i in 0..4u64 {
            c.insert(0, LineAddr(i), 0, i);
        }
        // Peek line 0 (oldest); it must still be the LRU victim.
        assert!(c.peek(0, LineAddr(0)).is_some());
        assert_eq!(c.would_evict(0).unwrap().addr, LineAddr(0));
    }
}
