//! # loco — Locality-Oblivious Cache Organization (ASPLOS 2014)
//!
//! A from-scratch Rust reproduction of *"Locality-Oblivious Cache
//! Organization leveraging Single-Cycle Multi-Hop NoCs"* (Kwon, Krishna,
//! Peh — ASPLOS 2014).
//!
//! LOCO is a co-design of the on-chip network and the cache-coherence
//! protocol: cores are grouped into clusters that share a distributed L2
//! (reachable in 1–2 SMART-hops, i.e. 2–4 cycles), global data search is a
//! broadcast over a *virtual mesh* (VMS) connecting the home nodes of all
//! clusters, and evicted lines migrate to other clusters instead of being
//! dropped (inter-cluster victim replacement, IVR).
//!
//! This crate is the front door of the workspace:
//!
//! * [`SimulationBuilder`] — run one workload on one configuration,
//! * [`campaign`] — the plan/execute/assemble campaign engine: enumerate
//!   the [`campaign::Scenario`]s a set of figures needs, execute them on
//!   all cores with [`campaign::Executor`], and assemble the figures from
//!   the [`campaign::ResultSet`],
//! * [`experiments::Runner`] — the sequential memoizing shim over the
//!   campaign engine (reproduce individual figures in-process),
//! * re-exports of the substrate crates (`loco-noc`, `loco-cache`,
//!   `loco-sim`, `loco-energy`, `loco-workloads`) — including
//!   [`EnergyParams`] / [`EnergyBreakdown`], the event-level energy model
//!   over the simulator's counters.
//!
//! ```rust
//! use loco::SimulationBuilder;
//! use loco::OrganizationKind;
//! use loco::Benchmark;
//!
//! // A quick 16-core LOCO run of the `lu` benchmark model.
//! let results = SimulationBuilder::new()
//!     .mesh(4, 4)
//!     .cluster(2, 2)
//!     .organization(OrganizationKind::LocoCcVmsIvr)
//!     .benchmark(Benchmark::Lu)
//!     .memory_ops_per_core(200)
//!     .run();
//! assert!(results.completed);
//! assert!(results.runtime_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod experiments;
pub mod json;
pub mod report;

pub use campaign::{CampaignPlan, Executor, FigureSpec, ResultSet, Scenario};
pub use experiments::{ExperimentParams, Runner};
pub use report::{Figure, Series};

pub use loco_cache::{
    Address, CacheGeometry, CacheStats, ClusterShape, LineAddr, MoesiState, MsiState,
    Organization, OrganizationKind,
};
pub use loco_energy::{CacheEnergy, EnergyBreakdown, EnergyParams, NetworkEnergy};
pub use loco_noc::{
    FabricCounters, FxBuildHasher, FxHashMap, FxHashSet, Mesh, NetworkStats, NocConfig, NodeId,
    RouterKind, SplitMix64, VirtualMesh,
};
pub use loco_sim::{CmpSystem, SimResults, SystemConfig};
pub use loco_workloads::{
    Benchmark, BenchmarkSpec, CoreTrace, MultiProgramWorkload, SharingPattern, StressKind,
    TraceGenerator,
};

/// A fluent facade for configuring and running one simulation.
///
/// Defaults correspond to the paper's 64-core CMP running full LOCO
/// (CC+VMS+IVR) on a SMART NoC with 4x4 clusters.
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    mesh_width: u16,
    mesh_height: u16,
    cluster: ClusterShape,
    organization: OrganizationKind,
    router: RouterKind,
    benchmark: Benchmark,
    mem_ops_per_core: u64,
    seed: u64,
    full_system: bool,
    max_cycles: u64,
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulationBuilder {
    /// Starts from the paper's 64-core LOCO configuration.
    pub fn new() -> Self {
        SimulationBuilder {
            mesh_width: 8,
            mesh_height: 8,
            cluster: ClusterShape::new(4, 4),
            organization: OrganizationKind::LocoCcVmsIvr,
            router: RouterKind::Smart,
            benchmark: Benchmark::Lu,
            mem_ops_per_core: 2_000,
            seed: 42,
            full_system: false,
            max_cycles: 50_000_000,
        }
    }

    /// Sets the mesh dimensions (e.g. `mesh(8, 8)` for 64 cores).
    pub fn mesh(mut self, width: u16, height: u16) -> Self {
        self.mesh_width = width;
        self.mesh_height = height;
        self
    }

    /// Sets the LOCO cluster shape.
    pub fn cluster(mut self, w: u16, h: u16) -> Self {
        self.cluster = ClusterShape::new(w, h);
        self
    }

    /// Sets the cache organization.
    pub fn organization(mut self, org: OrganizationKind) -> Self {
        self.organization = org;
        self
    }

    /// Sets the NoC router micro-architecture.
    pub fn router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Sets the benchmark model to replay.
    pub fn benchmark(mut self, benchmark: Benchmark) -> Self {
        self.benchmark = benchmark;
        self
    }

    /// Sets the number of memory operations generated per core.
    pub fn memory_ops_per_core(mut self, ops: u64) -> Self {
        self.mem_ops_per_core = ops;
        self
    }

    /// Sets the trace-generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the synchronization-aware full-system replay mode.
    pub fn full_system(mut self, enabled: bool) -> Self {
        self.full_system = enabled;
        self
    }

    /// Sets the simulation cycle budget.
    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = cycles;
        self
    }

    /// The [`SystemConfig`] this builder describes.
    pub fn system_config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::asplos_64(self.organization)
            .with_router(self.router)
            .with_cluster(self.cluster)
            .with_full_system(self.full_system);
        cfg.mesh_width = self.mesh_width;
        cfg.mesh_height = self.mesh_height;
        cfg
    }

    /// Builds the system (without running it), e.g. to step it manually.
    pub fn build(&self) -> CmpSystem {
        let cfg = self.system_config();
        let spec = self.benchmark.spec();
        let traces = TraceGenerator::new(self.seed)
            .with_barriers(self.full_system)
            .generate(&spec, cfg.num_cores(), self.mem_ops_per_core);
        CmpSystem::new(cfg, traces)
    }

    /// Builds and runs the simulation to completion.
    pub fn run(&self) -> SimResults {
        self.build().run(self.max_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_the_paper() {
        let b = SimulationBuilder::new();
        let cfg = b.system_config();
        assert_eq!(cfg.num_cores(), 64);
        assert_eq!(cfg.organization, OrganizationKind::LocoCcVmsIvr);
        assert_eq!(cfg.router, RouterKind::Smart);
        assert_eq!(cfg.cluster, ClusterShape::new(4, 4));
    }

    #[test]
    fn builder_runs_a_small_simulation() {
        let r = SimulationBuilder::new()
            .mesh(4, 4)
            .cluster(2, 2)
            .benchmark(Benchmark::Blackscholes)
            .memory_ops_per_core(100)
            .run();
        assert!(r.completed);
        assert!(r.instructions > 0);
    }

    #[test]
    fn builder_step_by_step_matches_run() {
        let builder = SimulationBuilder::new()
            .mesh(4, 4)
            .cluster(2, 2)
            .memory_ops_per_core(50)
            .seed(7);
        let full = builder.run();
        let mut sys = builder.build();
        while !sys.all_finished() {
            sys.step();
        }
        assert_eq!(sys.results().runtime_cycles, full.runtime_cycles);
    }
}
