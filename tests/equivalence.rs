//! The event-driven scheduler's contract: `CmpSystem::run` (cycle skipping)
//! must produce results bit-identical to `CmpSystem::run_naive` (one `step`
//! per cycle) on every organization, every router micro-architecture, and
//! the synchronization-heavy full-system mode. A skipped cycle is only legal
//! if the naive step at that cycle would have been a no-op; this suite is
//! the oracle for that claim (see the `loco_sim::system` module docs for the
//! per-component invariants).

use loco::{
    Benchmark, CmpSystem, ClusterShape, EnergyParams, OrganizationKind, RouterKind, SimResults,
    SimulationBuilder, SplitMix64, StressKind, SystemConfig, TraceGenerator,
};

const ALL_ORGS: [OrganizationKind; 5] = [
    OrganizationKind::Private,
    OrganizationKind::Shared,
    OrganizationKind::LocoCc,
    OrganizationKind::LocoCcVms,
    OrganizationKind::LocoCcVmsIvr,
];

fn builder(org: OrganizationKind) -> SimulationBuilder {
    // A small mesh keeps the naive runs fast; 300 memory ops per core is
    // enough to exercise misses, broadcasts, IVR migrations and retries.
    SimulationBuilder::new()
        .mesh(4, 4)
        .cluster(2, 2)
        .organization(org)
        .benchmark(Benchmark::Barnes)
        .memory_ops_per_core(300)
        .seed(11)
}

/// Bit-exact comparison of the full counter set, not just the latency
/// results: the structured asserts pin the cache event counters (array
/// reads/writes, tag probes, directory lookups, IVR, DRAM), the network
/// delivery stats including the fabric event counters (buffer, crossbar,
/// link, SSR events), and the integer energy breakdown derived from them.
/// The Debug rendering then covers every remaining field (float averages,
/// runtime, completion flags).
fn assert_identical(label: &str, event: &SimResults, naive: &SimResults) {
    assert_eq!(
        event.cache, naive.cache,
        "{label}: cache event counters diverged"
    );
    assert_eq!(
        event.network, naive.network,
        "{label}: network stats / fabric event counters diverged"
    );
    let params = EnergyParams::default();
    assert_eq!(
        params.breakdown(event),
        params.breakdown(naive),
        "{label}: energy breakdown diverged"
    );
    assert_eq!(
        format!("{event:?}"),
        format!("{naive:?}"),
        "{label}: event-driven results diverged from naive stepping"
    );
}

#[test]
fn every_organization_is_equivalent_under_cycle_skipping() {
    for org in ALL_ORGS {
        let b = builder(org);
        let event = b.build().run(8_000_000);
        let naive = b.build().run_naive(8_000_000);
        assert!(event.completed, "{org:?} must complete");
        assert_identical(&format!("{org:?}"), &event, &naive);
    }
}

#[test]
fn every_router_kind_is_equivalent_under_cycle_skipping() {
    for router in [RouterKind::Smart, RouterKind::Conventional, RouterKind::HighRadix] {
        let b = builder(OrganizationKind::LocoCcVms).router(router);
        let event = b.build().run(8_000_000);
        let naive = b.build().run_naive(8_000_000);
        assert!(event.completed, "{router:?} must complete");
        assert_identical(&format!("{router:?}"), &event, &naive);
    }
}

#[test]
fn full_system_barrier_mode_is_equivalent_under_cycle_skipping() {
    // Barriers are the subtlest case: a waiting core's arrival registration
    // must happen on exactly the same cycle in both modes, and a core parked
    // at an announced barrier must be skippable without losing the release.
    let b = SimulationBuilder::new()
        .mesh(4, 4)
        .cluster(2, 2)
        .organization(OrganizationKind::LocoCcVms)
        .benchmark(Benchmark::Fft)
        .memory_ops_per_core(250)
        .full_system(true)
        .seed(23);
    let event = b.build().run(8_000_000);
    let naive = b.build().run_naive(8_000_000);
    assert!(event.completed, "barrier workload must not deadlock");
    assert_identical("full-system barriers", &event, &naive);
}

#[test]
fn multiprogram_barrier_groups_are_equivalent_under_cycle_skipping() {
    // Distinct barrier groups (multi-program consolidation) exercise the
    // per-group arrival bookkeeping.
    let mut cfg = SystemConfig::asplos_64(OrganizationKind::LocoCcVmsIvr);
    cfg.mesh_width = 4;
    cfg.mesh_height = 4;
    cfg.cluster = ClusterShape::new(2, 2);
    cfg.full_system = true;
    let spec = Benchmark::Lu.spec();
    let traces = TraceGenerator::new(5).with_barriers(true).generate(&spec, 16, 200);
    let groups: Vec<usize> = (0..16).map(|i| i / 8).collect();
    let event = CmpSystem::with_groups(cfg, traces.clone(), groups.clone()).run(8_000_000);
    let naive = CmpSystem::with_groups(cfg, traces, groups).run_naive(8_000_000);
    assert!(event.completed);
    assert_identical("multi-program groups", &event, &naive);
}

#[test]
fn cycle_skipping_actually_skips_dead_cycles() {
    // Guard against the scheduler silently degenerating into the naive loop:
    // on a memory-bound run the event-driven mode must fast-forward at least
    // some DRAM dead time.
    let b = builder(OrganizationKind::Shared);
    let mut event = b.build();
    event.run(8_000_000);
    assert!(
        event.steps_executed() < event.cycle(),
        "no cycles were skipped ({} steps over {} cycles)",
        event.steps_executed(),
        event.cycle()
    );
    let mut naive = b.build();
    naive.run_naive(8_000_000);
    assert_eq!(
        naive.steps_executed(),
        naive.cycle(),
        "naive stepping must step every cycle"
    );
}

#[test]
fn truncated_runs_stop_on_the_same_cycle() {
    // A cycle budget that expires mid-flight must leave both modes in the
    // same observable state (runtime clamped to the budget, partial stats
    // identical).
    let b = builder(OrganizationKind::LocoCcVmsIvr);
    let event = b.build().run(900);
    let naive = b.build().run_naive(900);
    assert!(!event.completed, "budget chosen to interrupt the run");
    assert_eq!(event.runtime_cycles, 900);
    assert_identical("truncated run", &event, &naive);
}

// ---------------------------------------------------------------------------
// Stall-heavy stress systems: the workloads the fine-grained horizon is for.
// ---------------------------------------------------------------------------

/// The exact Figure-19 campaign configuration (small 4x4 mesh, CC+VMS,
/// stretched DRAM latency for the DRAM-bound kind), as a raw [`CmpSystem`]
/// so tests can read the scheduler's skip diagnostics.
fn stress_system(kind: StressKind, router: RouterKind, mem_ops: u64) -> CmpSystem {
    let params = loco::ExperimentParams::quick().with_mem_ops(mem_ops);
    loco::campaign::stall_stress_system(&params, kind, router)
}

#[test]
fn stall_stress_scenarios_are_equivalent_under_cycle_skipping() {
    // The barrier-phased and DRAM-bound stress workloads under every router:
    // these spend most of their run time in globally-quiet phases with
    // stragglers still inside the fabric — exactly the cycles the
    // fine-grained horizon newly skips, so they get their own equivalence
    // coverage in addition to the randomized sweep.
    for kind in StressKind::ALL {
        for router in [RouterKind::Smart, RouterKind::Conventional, RouterKind::HighRadix] {
            let event = stress_system(kind, router, 150).run(20_000_000);
            let naive = stress_system(kind, router, 150).run_naive(20_000_000);
            assert!(event.completed, "{kind:?}/{router:?} must complete");
            assert_identical(&format!("{kind:?}/{router:?}"), &event, &naive);
        }
    }
}

#[test]
fn horizon_skips_while_packets_are_in_flight() {
    // The regression trap for the fine-grained horizon: `skipped_while_busy`
    // counts cycles skipped while the NoC still held packets — skips the
    // pre-PR-5 drain-only probe could never take (it pinned the horizon to
    // "next cycle" whenever `Network::is_busy()`). If a future change quietly
    // degenerates the probe back to drain-only, this count drops to zero and
    // the assertion fails loudly.
    for kind in StressKind::ALL {
        for router in [RouterKind::Smart, RouterKind::Conventional, RouterKind::HighRadix] {
            let mut sys = stress_system(kind, router, 150);
            let r = sys.run(20_000_000);
            assert!(r.completed, "{kind:?}/{router:?} must complete");
            assert!(
                sys.steps_executed() < sys.cycle(),
                "{kind:?}/{router:?}: no cycles were skipped at all"
            );
            assert!(
                sys.skipped_while_busy() > 0,
                "{kind:?}/{router:?}: every skip waited for a full NoC drain — \
                 the horizon has degenerated to the old all-or-nothing probe \
                 ({} steps over {} cycles)",
                sys.steps_executed(),
                sys.cycle()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Seeded randomized stress: hundreds of short configurations, every knob.
// ---------------------------------------------------------------------------

fn stress_env(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        // A set-but-unparseable value must fail loudly, not silently weaken
        // the pinned CI gate back to the default.
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name}={v} is not a valid u64")),
        Err(_) => default,
    }
}

/// One randomly drawn configuration, kept printable so a failure names
/// everything needed to reproduce and minimize it.
struct RandomConfig {
    label: String,
    cfg: SystemConfig,
    traces: Vec<loco::CoreTrace>,
    groups: Vec<usize>,
    budget: u64,
}

fn random_config(rng: &mut SplitMix64) -> RandomConfig {
    const ORGS: [OrganizationKind; 5] = [
        OrganizationKind::Private,
        OrganizationKind::Shared,
        OrganizationKind::LocoCc,
        OrganizationKind::LocoCcVms,
        OrganizationKind::LocoCcVmsIvr,
    ];
    const ROUTERS: [RouterKind; 3] =
        [RouterKind::Smart, RouterKind::Conventional, RouterKind::HighRadix];
    // Meshes and cluster shapes that tile them (cluster tiles must be a
    // power of two). Small systems keep the naive reference runs fast.
    const MESHES: [(u16, u16); 3] = [(2, 2), (4, 2), (4, 4)];
    let (mw, mh) = MESHES[rng.index(MESHES.len())];
    let clusters: &[(u16, u16)] = match (mw, mh) {
        (2, 2) => &[(2, 1), (1, 2), (2, 2)],
        (4, 2) => &[(2, 1), (2, 2), (4, 2)],
        _ => &[(2, 1), (2, 2), (4, 2), (4, 4)],
    };
    let (cw, ch) = clusters[rng.index(clusters.len())];
    let org = ORGS[rng.index(ORGS.len())];
    let router = ROUTERS[rng.index(ROUTERS.len())];
    // Workload: one of the paper benchmarks or a stall-heavy stress spec.
    let spec = match rng.index(6) {
        0 => Benchmark::Barnes.spec(),
        1 => Benchmark::Fft.spec(),
        2 => Benchmark::Radix.spec(),
        3 => Benchmark::Blackscholes.spec(),
        4 => StressKind::BarrierPhased.spec(),
        _ => StressKind::DramBound.spec(),
    }
    .scaled_down(8);
    let full_system = rng.gen_bool(0.5);
    let mem_ops = 20 + rng.next_below(80);
    let seed = rng.next_u64();
    // Memory timing: from fast to brutally DRAM-bound (long stalls are the
    // phases the horizon rewrite targets).
    let latency = [60u64, 200, 800][rng.index(3)];
    let min_gap = [0u64, 4, 12][rng.index(3)];
    // Occasionally shrink the L2 to force capacity pressure and IVR.
    let shrink_l2 = rng.gen_bool(0.3);
    // Mostly run to completion; sometimes truncate mid-flight.
    let budget = if rng.gen_bool(0.25) {
        400 + rng.next_below(2600)
    } else {
        8_000_000
    };

    let mut cfg = SystemConfig::asplos_64(org)
        .with_router(router)
        .with_cluster(ClusterShape::new(cw, ch))
        .with_full_system(full_system);
    cfg.mesh_width = mw;
    cfg.mesh_height = mh;
    cfg.l1.size_bytes = (cfg.l1.size_bytes / 8).max(1024);
    cfg.l2.geometry.size_bytes = if shrink_l2 {
        4 * 1024
    } else {
        (cfg.l2.geometry.size_bytes / 8).max(2048)
    };
    cfg.mem.latency = latency;
    cfg.mem.min_gap = min_gap;

    let cores = cfg.num_cores();
    let traces = TraceGenerator::new(seed)
        .with_barriers(full_system)
        .generate(&spec, cores, mem_ops);
    // Occasionally split the cores into two barrier groups (multi-program).
    let groups: Vec<usize> = if rng.gen_bool(0.25) {
        (0..cores).map(|i| i / cores.div_ceil(2).max(1)).collect()
    } else {
        vec![0; cores]
    };
    let label = format!(
        "{mw}x{mh}/cluster{cw}x{ch}/{org:?}/{router:?}/{:?}/fs={full_system}/mem_ops={mem_ops}/\
         lat={latency}/gap={min_gap}/shrink_l2={shrink_l2}/budget={budget}/trace_seed={seed}",
        spec.benchmark
    );
    RandomConfig {
        label,
        cfg,
        traces,
        groups,
        budget,
    }
}

/// The oracle that makes the horizon refactor safe: `run` vs `run_naive`
/// across hundreds of short random configurations sweeping every axis
/// (organization, router, mesh/cluster shape, barrier mode, DRAM timing,
/// capacity pressure, truncated budgets, multi-program groups). Seed and
/// count are overridable for CI pinning and local soak runs:
/// `LOCO_STRESS_SEED` (default 0x20260728), `LOCO_STRESS_CONFIGS`
/// (default 200).
#[test]
fn randomized_short_configs_are_equivalent_under_cycle_skipping() {
    let seed = stress_env("LOCO_STRESS_SEED", 0x2026_0728);
    let configs = stress_env("LOCO_STRESS_CONFIGS", 200);
    let mut rng = SplitMix64::new(seed);
    let mut completed = 0u64;
    let mut skipped_busy = 0u64;
    for i in 0..configs {
        let rc = random_config(&mut rng);
        let mut event_sys = CmpSystem::with_groups(rc.cfg, rc.traces.clone(), rc.groups.clone());
        let event = event_sys.run(rc.budget);
        let naive = CmpSystem::with_groups(rc.cfg, rc.traces, rc.groups).run_naive(rc.budget);
        assert_identical(
            &format!("stress[{i}] seed={seed:#x} {}", rc.label),
            &event,
            &naive,
        );
        completed += u64::from(event.completed);
        skipped_busy += u64::from(event_sys.skipped_while_busy() > 0);
    }
    // Sanity on the sweep itself: most configs complete, and a healthy share
    // exercised the partial-occupancy skip path (not just full drains).
    assert!(
        completed * 2 > configs,
        "only {completed}/{configs} configs completed — the sweep is degenerate"
    );
    assert!(
        skipped_busy * 4 > configs,
        "only {skipped_busy}/{configs} configs skipped with packets in flight — \
         the randomized sweep no longer exercises the fine-grained horizon"
    );
}
