//! The global directory used by the private baseline and by LOCO CC (the
//! variant without VMS broadcasts).
//!
//! The directory is co-located with the memory controllers (Table 1 gives it
//! a 10-cycle access latency) and tracks, per line, the set of L2 slices
//! (tiles for the private baseline, cluster home nodes for LOCO CC) holding a
//! copy, plus the current owner. Requests for a busy line are queued and
//! replayed when the requester sends `Unblock` — the classic blocking
//! MOESI-CMP directory organization of GEMS.
//!
//! When no on-chip owner exists the directory performs the DRAM access
//! itself (it sits next to the memory controller) and sends the data
//! directly to the requester, charging the directory latency plus the DRAM
//! latency.

use crate::address::LineAddr;
use crate::line::SharerSet;
use crate::msg::{Agent, MsgKind, Outgoing, ProtocolMsg};
use crate::organization::Organization;
use crate::stats::CacheStats;
use loco_noc::NodeId;
use loco_noc::FxHashMap;
use std::collections::VecDeque;

/// Timing parameters of the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryConfig {
    /// Directory access latency (Table 1: 10 cycles).
    pub latency: u64,
    /// DRAM access latency charged when the directory itself must fetch the
    /// line (Table 1: 200 cycles).
    pub memory_latency: u64,
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig {
            latency: 10,
            memory_latency: 200,
        }
    }
}

#[derive(Debug, Default)]
struct DirEntry {
    sharers: SharerSet,
    owner: Option<NodeId>,
    busy: bool,
    waiting: VecDeque<ProtocolMsg>,
}

/// A global directory slice at one memory-controller node.
#[derive(Debug)]
pub struct DirectoryController {
    node: NodeId,
    org: Organization,
    cfg: DirectoryConfig,
    entries: FxHashMap<LineAddr, DirEntry>,
    stats: CacheStats,
}

impl DirectoryController {
    /// Creates the directory slice at `node`.
    pub fn new(node: NodeId, cfg: DirectoryConfig, org: Organization) -> Self {
        DirectoryController {
            node,
            org,
            cfg,
            entries: FxHashMap::default(),
            stats: CacheStats::default(),
        }
    }

    /// The memory-controller node this directory slice lives at.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Statistics (off-chip fetches performed on behalf of requesters).
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of lines currently tracked.
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }

    /// Handles a protocol message addressed to this directory.
    pub fn handle(&mut self, msg: ProtocolMsg, now: u64, out: &mut Vec<Outgoing>) {
        match msg.kind {
            MsgKind::GblGetS => self.handle_get(msg, false, now, out),
            MsgKind::GblGetM => self.handle_get(msg, true, now, out),
            MsgKind::PutL2 => {
                self.stats.dir_lookups += 1;
                let e = self.entries.entry(msg.addr).or_default();
                e.sharers.remove(msg.src.node);
                if e.owner == Some(msg.src.node) {
                    e.owner = None;
                }
            }
            MsgKind::Unblock => {
                self.stats.dir_lookups += 1;
                let replay: Vec<ProtocolMsg> = {
                    let e = self.entries.entry(msg.addr).or_default();
                    e.busy = false;
                    e.waiting.drain(..).collect()
                };
                for m in replay {
                    out.push(Outgoing::after(1, m));
                }
            }
            other => panic!("directory received unexpected message kind {other:?}"),
        }
    }

    fn handle_get(&mut self, msg: ProtocolMsg, is_write: bool, now: u64, out: &mut Vec<Outgoing>) {
        let requester_l2 = msg.src.node;
        let lat = self.cfg.latency;
        let mem_lat = self.cfg.memory_latency;
        self.stats.dir_lookups += 1;
        let entry = self.entries.entry(msg.addr).or_default();
        if entry.busy {
            entry.waiting.push_back(msg);
            return;
        }
        entry.busy = true;
        let _ = now;
        if !is_write {
            match entry.owner.filter(|&o| o != requester_l2) {
                Some(owner) => {
                    out.push(Outgoing::after(
                        lat,
                        ProtocolMsg::derived(&msg, MsgKind::FwdGetS, Agent::dir(self.node), Agent::l2(owner)),
                    ));
                }
                None => {
                    // No on-chip owner: fetch from DRAM right here.
                    self.stats.offchip_fetches += 1;
                    out.push(Outgoing::after(
                        lat + mem_lat,
                        ProtocolMsg::derived(
                            &msg,
                            MsgKind::MemData,
                            Agent::dir(self.node),
                            Agent::l2(requester_l2),
                        ),
                    ));
                    if entry.sharers.is_empty() {
                        entry.owner = Some(requester_l2);
                    }
                }
            }
            entry.sharers.insert(requester_l2);
        } else {
            // Invalidate every other sharer; they acknowledge directly to the
            // requesting L2.
            let mut acks = 0u32;
            for sharer in entry.sharers.iter().filter(|&s| s != requester_l2) {
                // The owner is handled separately below (it supplies data).
                if Some(sharer) == entry.owner {
                    continue;
                }
                acks += 1;
                self.stats.invalidations += 1;
                out.push(Outgoing::after(
                    lat,
                    ProtocolMsg::derived(&msg, MsgKind::InvL2, Agent::dir(self.node), Agent::l2(sharer)),
                ));
            }
            let data_coming = match entry.owner.filter(|&o| o != requester_l2) {
                Some(owner) => {
                    out.push(Outgoing::after(
                        lat,
                        ProtocolMsg::derived(&msg, MsgKind::FwdGetM, Agent::dir(self.node), Agent::l2(owner)),
                    ));
                    true
                }
                None => {
                    if entry.sharers.contains(requester_l2) {
                        // Upgrade: the requester already holds the data.
                        false
                    } else {
                        self.stats.offchip_fetches += 1;
                        out.push(Outgoing::after(
                            lat + mem_lat,
                            ProtocolMsg::derived(
                                &msg,
                                MsgKind::MemData,
                                Agent::dir(self.node),
                                Agent::l2(requester_l2),
                            ),
                        ));
                        true
                    }
                }
            };
            out.push(Outgoing::after(
                lat,
                ProtocolMsg::derived(
                    &msg,
                    MsgKind::DirInfo { acks, data_coming },
                    Agent::dir(self.node),
                    Agent::l2(requester_l2),
                ),
            ));
            entry.sharers.clear();
            entry.sharers.insert(requester_l2);
            entry.owner = Some(requester_l2);
        }
        let _ = &self.org;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_noc::Mesh;

    fn dir() -> DirectoryController {
        let org = Organization::private(Mesh::new(8, 8));
        DirectoryController::new(NodeId(4), DirectoryConfig::default(), org)
    }

    fn get(addr: u64, from_l2: u16, write: bool) -> ProtocolMsg {
        ProtocolMsg {
            addr: LineAddr(addr),
            kind: if write { MsgKind::GblGetM } else { MsgKind::GblGetS },
            src: Agent::l2(NodeId(from_l2)),
            dst: Agent::dir(NodeId(4)),
            requester: NodeId(from_l2),
            issued_at: 0,
        }
    }

    fn unblock(addr: u64, from_l2: u16) -> ProtocolMsg {
        ProtocolMsg {
            kind: MsgKind::Unblock,
            ..get(addr, from_l2, false)
        }
    }

    #[test]
    fn first_read_fetches_from_memory_and_grants_ownership() {
        let mut d = dir();
        let mut out = Vec::new();
        d.handle(get(7, 10, false), 0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.kind, MsgKind::MemData);
        assert_eq!(out[0].delay, 210);
        assert_eq!(d.stats().offchip_fetches, 1);
    }

    #[test]
    fn second_read_is_forwarded_to_the_owner() {
        let mut d = dir();
        let mut out = Vec::new();
        d.handle(get(7, 10, false), 0, &mut out);
        d.handle(unblock(7, 10), 5, &mut out);
        let mut out = Vec::new();
        d.handle(get(7, 20, false), 10, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.kind, MsgKind::FwdGetS);
        assert_eq!(out[0].msg.dst, Agent::l2(NodeId(10)));
        assert_eq!(d.stats().offchip_fetches, 1, "no second DRAM access");
    }

    #[test]
    fn write_invalidates_sharers_and_reports_ack_count() {
        let mut d = dir();
        let mut out = Vec::new();
        // Owner 10, sharers 20 and 30.
        d.handle(get(7, 10, false), 0, &mut out);
        d.handle(unblock(7, 10), 1, &mut out);
        d.handle(get(7, 20, false), 2, &mut out);
        d.handle(unblock(7, 20), 3, &mut out);
        d.handle(get(7, 30, false), 4, &mut out);
        d.handle(unblock(7, 30), 5, &mut out);
        let mut out = Vec::new();
        d.handle(get(7, 40, true), 10, &mut out);
        let invs: Vec<_> = out.iter().filter(|o| o.msg.kind == MsgKind::InvL2).collect();
        assert_eq!(invs.len(), 2, "sharers 20 and 30 are invalidated");
        assert!(out.iter().any(|o| o.msg.kind == MsgKind::FwdGetM
            && o.msg.dst == Agent::l2(NodeId(10))));
        let info = out
            .iter()
            .find(|o| matches!(o.msg.kind, MsgKind::DirInfo { .. }))
            .unwrap();
        assert_eq!(info.msg.kind, MsgKind::DirInfo { acks: 2, data_coming: true });
    }

    #[test]
    fn upgrade_write_by_a_sharer_needs_no_data() {
        let mut d = dir();
        let mut out = Vec::new();
        d.handle(get(9, 10, false), 0, &mut out);
        d.handle(unblock(9, 10), 1, &mut out);
        d.handle(get(9, 20, false), 2, &mut out);
        d.handle(unblock(9, 20), 3, &mut out);
        let mut out = Vec::new();
        // Node 20 (a sharer, not the owner) upgrades.
        d.handle(get(9, 20, true), 10, &mut out);
        let info = out
            .iter()
            .find(|o| matches!(o.msg.kind, MsgKind::DirInfo { .. }))
            .unwrap();
        // Data comes from the owner (node 10) via FwdGetM, so data_coming is
        // true and only the owner (not counted in acks) is contacted.
        assert_eq!(info.msg.kind, MsgKind::DirInfo { acks: 0, data_coming: true });
        assert!(out.iter().any(|o| o.msg.kind == MsgKind::FwdGetM));
    }

    #[test]
    fn busy_line_queues_until_unblock() {
        let mut d = dir();
        let mut out = Vec::new();
        d.handle(get(3, 10, false), 0, &mut out);
        let mut out = Vec::new();
        d.handle(get(3, 20, false), 1, &mut out);
        assert!(out.is_empty(), "second request queued while busy");
        let mut out = Vec::new();
        d.handle(unblock(3, 10), 2, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.kind, MsgKind::GblGetS);
        assert_eq!(out[0].msg.src, Agent::l2(NodeId(20)));
    }

    #[test]
    fn put_removes_sharer_and_owner() {
        let mut d = dir();
        let mut out = Vec::new();
        d.handle(get(3, 10, false), 0, &mut out);
        d.handle(unblock(3, 10), 1, &mut out);
        let put = ProtocolMsg {
            kind: MsgKind::PutL2,
            ..get(3, 10, false)
        };
        d.handle(put, 2, &mut out);
        // The next read must go to memory again.
        let mut out = Vec::new();
        d.handle(get(3, 20, false), 3, &mut out);
        assert_eq!(out[0].msg.kind, MsgKind::MemData);
        assert_eq!(d.stats().offchip_fetches, 2);
    }
}
