//! Figure 6: run time of private caches normalized to the distributed
//! shared cache. `cargo bench` times a reduced (16-core) campaign; the
//! full-scale numbers come from the `reproduce` binary.

use loco_bench::timing::Criterion;
use loco_bench::{bench_group, bench_main};
use loco::{ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_private_vs_shared");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            let fig = runner.fig06_private_vs_shared(&benchmarks_for(Scale::Quick));
            assert!(fig.average_of("Private Cache").unwrap() > 0.0);
            fig
        })
    });
    group.finish();
}

bench_group!(benches, bench);
bench_main!(benches);
