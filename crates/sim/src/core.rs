//! The in-order core model replaying one trace.
//!
//! The paper's target cores are 2-way in-order SPARC processors that block
//! on demand misses; we model them as 1-IPC in-order cores (non-memory
//! instructions retire one per cycle, memory instructions stall the core
//! until the L1 fill returns), which preserves the property the evaluation
//! depends on: run time is compute time plus exposed memory latency.

use loco_cache::{Address, L1Access, L1Controller, Outgoing};
use loco_noc::NodeId;
use loco_workloads::{CoreTrace, TraceOp};

/// What the core did this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStatus {
    /// Still executing.
    Running,
    /// Stalled on an outstanding memory access.
    Stalled,
    /// Waiting at a barrier (the system releases it).
    AtBarrier(u32),
    /// The trace is fully executed.
    Finished,
}

/// Synthetic address region used for barrier flag lines.
const BARRIER_FLAG_BASE: u64 = 0x4000_0000_0000;

/// An in-order core replaying a [`CoreTrace`].
#[derive(Debug)]
pub struct CoreModel {
    node: NodeId,
    trace: CoreTrace,
    /// Barrier group this core belongs to (task id for multi-program
    /// workloads, 0 otherwise).
    group: usize,
    pc: usize,
    compute_remaining: u32,
    stalled: bool,
    /// Barrier the core is waiting at (set after its flag access returns).
    waiting_barrier: Option<u32>,
    /// Whether the barrier in `waiting_barrier` has been reported to the
    /// system through a [`CoreStatus::AtBarrier`] tick at least once. Until
    /// then the core must keep ticking (the system registers the arrival
    /// from the returned status); afterwards further ticks are idempotent
    /// re-registrations and event-driven runs may skip them.
    barrier_announced: bool,
    /// Barrier access currently being performed (flag read outstanding).
    barrier_in_flight: Option<u32>,
    instructions: u64,
    finished_at: Option<u64>,
}

impl CoreModel {
    /// Creates a core at `node` replaying `trace` as part of barrier
    /// `group`.
    pub fn new(node: NodeId, trace: CoreTrace, group: usize) -> Self {
        CoreModel {
            node,
            trace,
            group,
            pc: 0,
            compute_remaining: 0,
            stalled: false,
            waiting_barrier: None,
            barrier_announced: false,
            barrier_in_flight: None,
            instructions: 0,
            finished_at: None,
        }
    }

    /// The tile this core sits on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The barrier group of this core.
    pub fn group(&self) -> usize {
        self.group
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycle at which the trace completed, if it has.
    pub fn finished_at(&self) -> Option<u64> {
        self.finished_at
    }

    /// Whether the trace is fully executed.
    pub fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }

    /// The flag address used for barrier `id` of this core's group.
    pub fn barrier_flag_address(group: usize, id: u32) -> Address {
        Address(BARRIER_FLAG_BASE + ((group as u64) << 24) + u64::from(id) * 32)
    }

    /// Notification that the outstanding L1 miss completed.
    pub fn on_fill(&mut self) {
        self.stalled = false;
        if let Some(id) = self.barrier_in_flight.take() {
            // The barrier flag access finished: now wait for the release.
            self.waiting_barrier = Some(id);
            self.barrier_announced = false;
        }
    }

    /// Notification that the barrier this core was waiting at released.
    pub fn on_barrier_release(&mut self) {
        self.waiting_barrier = None;
        self.barrier_announced = false;
    }

    /// Whether skipping this core's [`CoreModel::tick`] next cycle would
    /// change observable behaviour.
    ///
    /// `false` exactly when the tick is provably a no-op: the trace is
    /// finished, the core is stalled on an outstanding L1 fill (woken by
    /// [`CoreModel::on_fill`]), or it sits at a barrier whose arrival has
    /// already been announced (woken by [`CoreModel::on_barrier_release`]).
    /// Everything else — compute, ready memory ops, a pending finish
    /// transition, an unannounced barrier — must tick every cycle.
    pub fn needs_tick(&self) -> bool {
        !self.is_finished()
            && !self.stalled
            && (self.waiting_barrier.is_none() || !self.barrier_announced)
    }

    /// The barrier this core is currently waiting at, if any.
    pub fn waiting_barrier(&self) -> Option<u32> {
        self.waiting_barrier
    }

    /// Advances the core by one cycle.
    ///
    /// Returns the core's status after the cycle; when the status is
    /// [`CoreStatus::AtBarrier`] for the first time the caller must register
    /// the arrival with its barrier tracker.
    pub fn tick(
        &mut self,
        now: u64,
        l1: &mut L1Controller,
        out: &mut Vec<Outgoing>,
        model_barriers: bool,
    ) -> CoreStatus {
        if self.is_finished() {
            return CoreStatus::Finished;
        }
        if self.stalled {
            return CoreStatus::Stalled;
        }
        if let Some(id) = self.waiting_barrier {
            self.barrier_announced = true;
            return CoreStatus::AtBarrier(id);
        }
        if self.compute_remaining > 0 {
            self.compute_remaining -= 1;
            self.instructions += 1;
            return CoreStatus::Running;
        }
        let Some(&op) = self.trace.ops().get(self.pc) else {
            self.finished_at = Some(now);
            return CoreStatus::Finished;
        };
        match op {
            TraceOp::Compute(n) => {
                self.pc += 1;
                // The first of the n instructions retires this cycle.
                self.instructions += 1;
                self.compute_remaining = n.saturating_sub(1);
                CoreStatus::Running
            }
            TraceOp::Read(addr) | TraceOp::Write(addr) => {
                let is_write = matches!(op, TraceOp::Write(_));
                match l1.access(Address(addr), is_write, now, out) {
                    L1Access::Hit => {
                        self.pc += 1;
                        self.instructions += 1;
                        CoreStatus::Running
                    }
                    L1Access::Miss => {
                        self.pc += 1;
                        self.instructions += 1;
                        self.stalled = true;
                        CoreStatus::Stalled
                    }
                    L1Access::Busy => CoreStatus::Stalled,
                }
            }
            TraceOp::Barrier(id) => {
                self.pc += 1;
                self.instructions += 1;
                if !model_barriers {
                    return CoreStatus::Running;
                }
                // Access the barrier flag line (generates the sharing burst),
                // then wait for the release.
                let flag = Self::barrier_flag_address(self.group, id);
                match l1.access(flag, false, now, out) {
                    L1Access::Hit => {
                        self.waiting_barrier = Some(id);
                        self.barrier_announced = true;
                        CoreStatus::AtBarrier(id)
                    }
                    L1Access::Miss => {
                        self.stalled = true;
                        self.barrier_in_flight = Some(id);
                        CoreStatus::Stalled
                    }
                    L1Access::Busy => {
                        // Retry the barrier op next cycle.
                        self.pc -= 1;
                        self.instructions -= 1;
                        CoreStatus::Stalled
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_cache::{CacheGeometry, MsgKind, Organization, ProtocolMsg, ResponseSource};
    use loco_cache::{Agent, LineAddr};
    use loco_noc::Mesh;
    use loco_workloads::CoreTrace;

    fn l1() -> L1Controller {
        L1Controller::new(
            NodeId(0),
            CacheGeometry::asplos_l1(),
            Organization::shared(Mesh::new(4, 4)),
        )
    }

    fn fill_l1(c: &mut L1Controller, addr: u64, now: u64) {
        let msg = ProtocolMsg {
            addr: Address(addr).line(32),
            kind: MsgKind::DataS(ResponseSource::Home),
            src: Agent::l2(NodeId(1)),
            dst: Agent::l1(NodeId(0)),
            requester: NodeId(0),
            issued_at: 0,
        };
        let mut out = Vec::new();
        c.handle(msg, now, &mut out);
    }

    #[test]
    fn compute_ops_retire_one_instruction_per_cycle() {
        let trace = CoreTrace::from_ops(vec![TraceOp::Compute(3)]);
        let mut core = CoreModel::new(NodeId(0), trace, 0);
        let mut l1 = l1();
        let mut out = Vec::new();
        for now in 0..3 {
            assert_eq!(core.tick(now, &mut l1, &mut out, false), CoreStatus::Running);
        }
        assert_eq!(core.tick(3, &mut l1, &mut out, false), CoreStatus::Finished);
        assert_eq!(core.instructions(), 3);
        assert_eq!(core.finished_at(), Some(3));
    }

    #[test]
    fn memory_miss_stalls_until_fill() {
        let trace = CoreTrace::from_ops(vec![TraceOp::Read(0x1000), TraceOp::Compute(1)]);
        let mut core = CoreModel::new(NodeId(0), trace, 0);
        let mut l1 = l1();
        let mut out = Vec::new();
        assert_eq!(core.tick(0, &mut l1, &mut out, false), CoreStatus::Stalled);
        assert_eq!(out.len(), 1, "L1 miss request issued");
        assert_eq!(core.tick(1, &mut l1, &mut out, false), CoreStatus::Stalled);
        fill_l1(&mut l1, 0x1000, 10);
        core.on_fill();
        assert_eq!(core.tick(11, &mut l1, &mut out, false), CoreStatus::Running);
        assert_eq!(core.tick(12, &mut l1, &mut out, false), CoreStatus::Finished);
    }

    #[test]
    fn barriers_are_skipped_when_not_modelled() {
        let trace = CoreTrace::from_ops(vec![TraceOp::Barrier(1), TraceOp::Compute(1)]);
        let mut core = CoreModel::new(NodeId(0), trace, 0);
        let mut l1 = l1();
        let mut out = Vec::new();
        assert_eq!(core.tick(0, &mut l1, &mut out, false), CoreStatus::Running);
        assert_eq!(core.tick(1, &mut l1, &mut out, false), CoreStatus::Running);
        assert_eq!(core.tick(2, &mut l1, &mut out, false), CoreStatus::Finished);
    }

    #[test]
    fn barrier_waits_for_release_in_fullsystem_mode() {
        let trace = CoreTrace::from_ops(vec![TraceOp::Barrier(1), TraceOp::Compute(1)]);
        let mut core = CoreModel::new(NodeId(0), trace, 3);
        let mut l1 = l1();
        let mut out = Vec::new();
        // The flag access misses; the core stalls.
        assert_eq!(core.tick(0, &mut l1, &mut out, true), CoreStatus::Stalled);
        let flag = CoreModel::barrier_flag_address(3, 1);
        assert_eq!(out[0].msg.addr, LineAddr(flag.0 / 32));
        fill_l1(&mut l1, flag.0, 5);
        core.on_fill();
        // Now the core reports it is at the barrier until released.
        assert_eq!(core.tick(6, &mut l1, &mut out, true), CoreStatus::AtBarrier(1));
        assert_eq!(core.tick(7, &mut l1, &mut out, true), CoreStatus::AtBarrier(1));
        core.on_barrier_release();
        assert_eq!(core.tick(8, &mut l1, &mut out, true), CoreStatus::Running);
        assert_eq!(core.tick(9, &mut l1, &mut out, true), CoreStatus::Finished);
    }

    #[test]
    fn distinct_groups_use_distinct_flag_lines() {
        let a = CoreModel::barrier_flag_address(0, 1);
        let b = CoreModel::barrier_flag_address(1, 1);
        let c = CoreModel::barrier_flag_address(0, 2);
        assert_ne!(a.line(32), b.line(32));
        assert_ne!(a.line(32), c.line(32));
    }
}
