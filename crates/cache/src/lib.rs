//! # loco-cache — cache hierarchy and coherence substrate for LOCO
//!
//! This crate implements the memory-system side of the LOCO reproduction
//! (Kwon, Krishna, Peh — ASPLOS 2014):
//!
//! * set-associative [`array::CacheArray`]s with LRU replacement and
//!   IVR-ready last-access timestamps,
//! * MSI [`l1::L1Controller`]s and MOESI [`l2::L2Controller`]s (the *home
//!   node* controllers) exchanging [`msg::ProtocolMsg`]s,
//! * the five cache [`organization::Organization`]s evaluated by the paper —
//!   private, distributed shared, LOCO CC, LOCO CC+VMS and
//!   LOCO CC+VMS+IVR — and their address→home-node maps,
//! * the global [`directory::DirectoryController`] (private baseline and
//!   LOCO CC) and off-chip [`mem::MemoryController`]s,
//! * inter-cluster victim replacement (IVR, Section 3.3) inside the L2
//!   controller.
//!
//! The controllers are pure message-driven state machines: they never touch
//! a network directly. The `loco-sim` crate wires them to the `loco-noc`
//! fabric and drives the cycle loop.
//!
//! ```rust
//! use loco_cache::organization::{ClusterShape, Organization, OrganizationKind};
//! use loco_cache::address::LineAddr;
//! use loco_noc::{Mesh, NodeId};
//!
//! // The paper's 64-core CMP with 4x4 LOCO clusters.
//! let org = Organization::loco(
//!     Mesh::new(8, 8),
//!     OrganizationKind::LocoCcVmsIvr,
//!     ClusterShape::new(4, 4),
//! );
//! // The home node of a line is always inside the requester's cluster.
//! let home = org.home_node(NodeId(0), LineAddr(0x2a));
//! assert_eq!(org.cluster_of(home), org.cluster_of(NodeId(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod array;
pub mod directory;
pub mod l1;
pub mod l2;
pub mod line;
pub mod mem;
pub mod msg;
pub mod organization;
pub mod stats;

pub use address::{Address, LineAddr};
pub use array::{CacheArray, CacheGeometry, Entry, Eviction};
pub use directory::{DirectoryConfig, DirectoryController};
pub use l1::{L1Access, L1Controller, L1Fill};
pub use l2::{L2Config, L2Controller, L2Meta};
pub use line::{MoesiState, MsiState, SharerSet};
pub use mem::{MemoryConfig, MemoryController};
pub use msg::{Agent, MsgKind, Outgoing, ProtocolMsg, ResponseSource, Unit};
pub use organization::{ClusterShape, MemoryMap, Organization, OrganizationKind};
pub use stats::CacheStats;
