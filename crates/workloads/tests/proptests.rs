//! Property-based tests of the workload generator: determinism, trace
//! shape, and address-space separation hold for arbitrary benchmark
//! parameters, thread counts and seeds.

use loco_workloads::{Benchmark, BenchmarkSpec, SharingPattern, TraceGenerator, TraceOp};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::Barnes),
        Just(Benchmark::Blackscholes),
        Just(Benchmark::Lu),
        Just(Benchmark::Radix),
        Just(Benchmark::Swaptions),
        Just(Benchmark::Fft),
        Just(Benchmark::WaterSpatial),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator is a pure function of (spec, seed, threads, length).
    #[test]
    fn generation_is_deterministic(b in arb_benchmark(), seed in any::<u64>(), threads in 1usize..9, ops in 1u64..400) {
        let spec = b.spec();
        let x = TraceGenerator::new(seed).generate(&spec, threads, ops);
        let y = TraceGenerator::new(seed).generate(&spec, threads, ops);
        prop_assert_eq!(x, y);
    }

    /// Every generated trace has exactly the requested number of memory
    /// operations, at least that many instructions, and addresses aligned to
    /// the 32-byte line size... (addresses are line-granular by design).
    #[test]
    fn trace_shape_is_consistent(b in arb_benchmark(), seed in any::<u64>(), threads in 1usize..5, ops in 1u64..300) {
        let spec = b.spec();
        let traces = TraceGenerator::new(seed).generate(&spec, threads, ops);
        prop_assert_eq!(traces.len(), threads);
        for t in &traces {
            prop_assert_eq!(t.memory_ops(), ops);
            prop_assert!(t.instructions() >= ops);
            for op in t.ops() {
                if let TraceOp::Read(a) | TraceOp::Write(a) = op {
                    prop_assert_eq!(a % 32, 0, "addresses are line aligned");
                }
            }
        }
    }

    /// The store fraction of the generated trace tracks the spec within a
    /// loose statistical tolerance.
    #[test]
    fn write_fraction_is_respected(seed in any::<u64>(), wf in 0.05f64..0.95) {
        let spec = BenchmarkSpec::new(Benchmark::Lu).write_fraction(wf);
        let traces = TraceGenerator::new(seed).generate(&spec, 1, 3_000);
        let writes = traces[0]
            .ops()
            .iter()
            .filter(|o| matches!(o, TraceOp::Write(_)))
            .count() as f64;
        let measured = writes / 3_000.0;
        prop_assert!((measured - wf).abs() < 0.08, "asked {wf:.2}, measured {measured:.2}");
    }

    /// Purely-private benchmarks (shared fraction zero) never produce an
    /// address shared by two threads, regardless of the sharing pattern.
    #[test]
    fn zero_shared_fraction_means_disjoint_threads(
        seed in any::<u64>(),
        threads in 2usize..6,
        pattern in prop_oneof![Just(SharingPattern::Neighbor), Just(SharingPattern::Global)],
    ) {
        let spec = BenchmarkSpec::new(Benchmark::Swaptions)
            .shared_fraction(0.0)
            .pattern(pattern)
            .private_lines(256);
        let traces = TraceGenerator::new(seed).generate(&spec, threads, 500);
        let mut seen: Vec<HashSet<u64>> = Vec::new();
        for t in &traces {
            let lines: HashSet<u64> = t
                .ops()
                .iter()
                .filter_map(|o| match o {
                    TraceOp::Read(a) | TraceOp::Write(a) => Some(a / 32),
                    _ => None,
                })
                .collect();
            for other in &seen {
                prop_assert!(lines.is_disjoint(other));
            }
            seen.push(lines);
        }
    }

    /// Task offsets give disjoint address spaces for any pair of task ids.
    #[test]
    fn task_offsets_never_collide(seed in any::<u64>(), t1 in 0u64..64, t2 in 0u64..64) {
        prop_assume!(t1 != t2);
        let spec = Benchmark::Barnes.spec();
        let a = TraceGenerator::new(seed).with_task_offset(t1).generate(&spec, 1, 300);
        let b = TraceGenerator::new(seed).with_task_offset(t2).generate(&spec, 1, 300);
        let lines = |t: &loco_workloads::CoreTrace| -> HashSet<u64> {
            t.ops()
                .iter()
                .filter_map(|o| match o {
                    TraceOp::Read(a) | TraceOp::Write(a) => Some(*a),
                    _ => None,
                })
                .collect()
        };
        prop_assert!(lines(&a[0]).is_disjoint(&lines(&b[0])));
    }
}
