//! Cluster-size exploration (the scenario behind Figure 14): sweep LOCO's
//! cluster shape for a few benchmark models and report the latency /
//! miss-rate / runtime trade-off, showing that the best cluster size is
//! application-dependent.
//!
//! ```text
//! cargo run --release -p loco --example cluster_size_explorer
//! ```

use loco::{Benchmark, ClusterShape, OrganizationKind, RouterKind, SimulationBuilder};

fn main() {
    let shapes = [
        ClusterShape::new(4, 1),
        ClusterShape::new(8, 1),
        ClusterShape::new(4, 4),
    ];
    let benchmarks = [Benchmark::Swaptions, Benchmark::WaterSpatial, Benchmark::Radix];
    println!("LOCO cluster-size exploration — 64 cores, SMART NoC (HPCmax=4)\n");
    println!(
        "{:<16} {:>10} {:>14} {:>10} {:>14}",
        "benchmark", "cluster", "hit lat (cyc)", "MPKI", "runtime (cyc)"
    );
    for &benchmark in &benchmarks {
        for &shape in &shapes {
            let r = SimulationBuilder::new()
                .benchmark(benchmark)
                .organization(OrganizationKind::LocoCcVmsIvr)
                .router(RouterKind::Smart)
                .cluster(shape.w, shape.h)
                .memory_ops_per_core(800)
                .run();
            assert!(r.completed);
            println!(
                "{:<16} {:>7}x{:<2} {:>14.2} {:>10.2} {:>14}",
                benchmark.name(),
                shape.w,
                shape.h,
                r.avg_l2_hit_latency,
                r.l2_mpki,
                r.runtime_cycles
            );
        }
        println!();
    }
    println!("Smaller clusters lower hit latency but raise the miss rate;");
    println!("the best choice depends on the benchmark (Figure 14 of the paper).");
}
