//! Shared router infrastructure used by all three fabric engines
//! (conventional, SMART, high-radix): input-port buffers, in-flight packet
//! descriptors, round-robin arbitration state and link-occupancy tracking.

use crate::message::VirtualNetwork;
use crate::stats::FabricCounters;
use crate::topology::{Direction, NodeId};
use std::collections::VecDeque;

/// Unique identifier of a packet (or of one multicast child copy) while it is
/// inside the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// Routing/timing descriptor of a packet in flight. The payload itself stays
/// in the [`crate::Network`]'s packet table; engines only move these
/// light-weight descriptors through router buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightInfo {
    /// Packet identity (keys into the network's packet table).
    pub id: PacketId,
    /// Node where this packet (copy) entered the network.
    pub src: NodeId,
    /// Destination router of the current segment.
    pub dest: NodeId,
    /// Virtual network.
    pub vn: VirtualNetwork,
    /// Number of flits (serialization cycles per link).
    pub flits: u32,
    /// Cycle the original message was injected.
    pub injected_at: u64,
    /// Number of routers at which the packet has been buffered so far.
    pub stops: u32,
}

/// A packet that reached the destination router of its current segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// The packet descriptor.
    pub flight: FlightInfo,
    /// Router at which it arrived (always `flight.dest`).
    pub at: NodeId,
    /// Cycle of arrival.
    pub now: u64,
}

/// One buffered packet, not eligible for switch allocation before
/// `ready_at` (models link traversal and serialization of body flits).
#[derive(Debug, Clone, Copy)]
pub struct Buffered {
    /// Packet descriptor.
    pub flight: FlightInfo,
    /// First cycle at which the packet may compete for the switch.
    pub ready_at: u64,
}

/// Input buffers of one router: one FIFO per (input port, virtual network).
/// Capacity is `vcs_per_vn * vc_depth` packets per FIFO, mirroring the VC
/// organization of Table 1 at packet granularity.
#[derive(Debug, Clone)]
pub struct InputBuffers {
    queues: Vec<VecDeque<Buffered>>,
    ports: usize,
    capacity: usize,
    total: usize,
    /// Bit `i` set iff lane `i` (see [`InputBuffers::lanes`] for the
    /// numbering) holds at least one packet. The per-cycle engine loops walk
    /// set bits instead of probing every lane.
    occupied: u32,
}

impl InputBuffers {
    /// Creates buffers for a router with `ports` input ports.
    ///
    /// # Panics
    ///
    /// Panics if the lane count exceeds the 32-bit occupancy mask.
    pub fn new(ports: usize, capacity: usize) -> Self {
        assert!(ports * VirtualNetwork::ALL.len() <= 32, "too many lanes");
        InputBuffers {
            queues: vec![VecDeque::new(); ports * VirtualNetwork::ALL.len()],
            ports,
            capacity,
            total: 0,
            occupied: 0,
        }
    }

    fn idx(&self, port: usize, vn: VirtualNetwork) -> usize {
        debug_assert!(port < self.ports);
        port * VirtualNetwork::ALL.len() + vn.index()
    }

    /// Whether the FIFO for (`port`, `vn`) has room for another packet.
    pub fn has_space(&self, port: usize, vn: VirtualNetwork) -> bool {
        self.queues[self.idx(port, vn)].len() < self.capacity
    }

    /// Current occupancy of the FIFO for (`port`, `vn`).
    pub fn occupancy(&self, port: usize, vn: VirtualNetwork) -> usize {
        self.queues[self.idx(port, vn)].len()
    }

    /// Pushes a packet, regardless of capacity (capacity is enforced by the
    /// engines at allocation time; premature SMART stops are allowed to
    /// overflow and are tracked in the statistics).
    pub fn push(&mut self, port: usize, vn: VirtualNetwork, b: Buffered) {
        let idx = self.idx(port, vn);
        self.queues[idx].push_back(b);
        self.total += 1;
        self.occupied |= 1 << idx;
    }

    /// Head of the FIFO for (`port`, `vn`).
    pub fn head(&self, port: usize, vn: VirtualNetwork) -> Option<&Buffered> {
        self.queues[self.idx(port, vn)].front()
    }

    /// Pops the head of the FIFO for (`port`, `vn`).
    pub fn pop(&mut self, port: usize, vn: VirtualNetwork) -> Option<Buffered> {
        let idx = self.idx(port, vn);
        let popped = self.queues[idx].pop_front();
        if popped.is_some() {
            self.total -= 1;
            if self.queues[idx].is_empty() {
                self.occupied &= !(1 << idx);
            }
        }
        popped
    }

    /// Total number of packets buffered in this router (O(1)).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Whether the router holds no packets at all (cheap early-out for the
    /// per-cycle engine loops).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of input ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Iterates over every `(port, vn)` pair.
    pub fn lanes(&self) -> impl Iterator<Item = (usize, VirtualNetwork)> + '_ {
        (0..self.ports).flat_map(|p| VirtualNetwork::ALL.into_iter().map(move |vn| (p, vn)))
    }

    /// Iterates over the non-empty lanes only, as `(lane index, port, vn)`,
    /// in the same ascending order as [`InputBuffers::lanes`]. This is the
    /// hot-path variant: a mostly-idle router costs one bit walk instead of
    /// 25 queue probes.
    pub fn occupied_lanes(&self) -> impl Iterator<Item = (usize, usize, VirtualNetwork)> {
        let mut mask = self.occupied;
        std::iter::from_fn(move || {
            if mask == 0 {
                return None;
            }
            let lane = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let vns = VirtualNetwork::ALL.len();
            Some((lane, lane / vns, VirtualNetwork::ALL[lane % vns]))
        })
    }
}

/// A dense bitset over router indices tracking which routers currently hold
/// at least one buffered packet. The per-cycle engine loops walk set bits
/// instead of touching every router's (cache-cold) buffer struct; with a
/// handful of packets in flight on a 64–256 node mesh this is the difference
/// between O(active) and O(nodes) per cycle.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    words: Vec<u64>,
}

impl ActiveSet {
    /// Creates an empty set over `n` routers.
    pub fn new(n: usize) -> Self {
        ActiveSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Marks router `i` as holding packets.
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Marks router `i` as empty.
    pub fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Iterates the marked router indices in ascending order (matching a
    /// full scan in node order, so arbitration sequencing is unchanged).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }
}

/// Round-robin arbitration pointer over an arbitrary number of requesters.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    last: usize,
}

impl RoundRobin {
    /// Creates a fresh arbiter.
    pub fn new() -> Self {
        RoundRobin::default()
    }

    /// Picks one of `candidates` (indices into some requester space),
    /// starting the search just after the previous winner so that grants
    /// rotate fairly.
    pub fn pick(&mut self, candidates: &[usize], space: usize) -> Option<usize> {
        if candidates.is_empty() || space == 0 {
            return None;
        }
        let start = (self.last + 1) % space;
        let winner = candidates
            .iter()
            .copied()
            .min_by_key(|&c| (c + space - start) % space)?;
        self.last = winner;
        Some(winner)
    }
}

/// Tracks when each unidirectional link becomes free again (a packet of `n`
/// flits holds its links for `n` cycles).
#[derive(Debug, Clone)]
pub struct LinkOccupancy {
    busy_until: Vec<u64>,
    links_per_node: usize,
}

impl LinkOccupancy {
    /// Creates occupancy tracking for `nodes` routers with `links_per_node`
    /// outgoing links each.
    pub fn new(nodes: usize, links_per_node: usize) -> Self {
        LinkOccupancy {
            busy_until: vec![0; nodes * links_per_node],
            links_per_node,
        }
    }

    fn idx(&self, node: NodeId, link: usize) -> usize {
        debug_assert!(link < self.links_per_node);
        node.index() * self.links_per_node + link
    }

    /// Whether the given outgoing link of `node` is free at `now`.
    pub fn is_free(&self, node: NodeId, link: usize, now: u64) -> bool {
        self.busy_until[self.idx(node, link)] <= now
    }

    /// First cycle at which the given outgoing link of `node` is free again
    /// (`is_free(node, link, t)` holds for every `t >= free_at(node, link)`).
    pub fn free_at(&self, node: NodeId, link: usize) -> u64 {
        self.busy_until[self.idx(node, link)]
    }

    /// Marks the link busy until `until`.
    pub fn occupy(&mut self, node: NodeId, link: usize, until: u64) {
        let idx = self.idx(node, link);
        self.busy_until[idx] = self.busy_until[idx].max(until);
    }
}

/// Helper mapping a cardinal direction to a link slot index (0..4).
pub fn dir_link(dir: Direction) -> usize {
    dir.index()
}

/// Common interface of the three fabric engines (conventional, SMART,
/// high-radix). The [`crate::Network`] front-end owns payloads and multicast
/// expansion; engines only move [`FlightInfo`] descriptors.
pub trait FabricEngine {
    /// Whether the injection queue at `node` for `vn` can accept a packet.
    fn can_accept(&self, node: NodeId, vn: VirtualNetwork) -> bool;

    /// Places a packet into the source router's local input port. The caller
    /// must have checked [`FabricEngine::can_accept`].
    fn inject(&mut self, flight: FlightInfo, now: u64);

    /// Advances the fabric by one cycle, appending packets that reached their
    /// segment destination to `arrivals`.
    fn tick(&mut self, now: u64, arrivals: &mut Vec<Arrival>);

    /// Event-horizon probe for event-driven simulation: the earliest cycle
    /// `>= now` at which [`FabricEngine::tick`] *might* change fabric state,
    /// or `None` when the fabric is empty and can never act again on its
    /// own. Engines compute it per occupied (router, lane) head — the first
    /// cycle the head is switch-eligible *and* its requested output link is
    /// free — so the bound is meaningful under partial occupancy, not only
    /// at full drain.
    ///
    /// The bound must be conservative from below — it may name a cycle at
    /// which nothing ends up moving (e.g. a head packet that will lose
    /// arbitration or find a downstream buffer full), but it must never skip
    /// past a cycle at which a move, an arbiter update, a counter increment
    /// or any other state change would have occurred. Ticking at a cycle
    /// where no candidate exists is a no-op by construction (arbiter
    /// pointers and event counters only advance when a candidate wins),
    /// which is what makes cycle skipping exact. This probe is
    /// **load-bearing** for `CmpSystem`'s scheduler (via
    /// `Network::next_event`): the root `tests/equivalence.rs` randomized
    /// stress suite cross-checks it against naive per-cycle stepping, and
    /// it must never mutate state (the event-energy counters inherit the
    /// run/run_naive bit-identity from that rule).
    fn next_event(&self, now: u64) -> Option<u64>;

    /// Number of packets currently inside the fabric.
    fn in_flight(&self) -> usize;

    /// The micro-architectural event counters accumulated so far (buffer
    /// reads/writes, crossbar traversals, link hops, SSR events). These are
    /// the raw inputs of the event-energy model; engines must only update
    /// them from `inject`/`tick` (never from `next_event` or other read-only
    /// probes), which is what keeps them bit-identical between event-driven
    /// and naive execution.
    fn counters(&self) -> &FabricCounters;

    /// Total number of router-buffer writes so far (a proxy for buffer
    /// energy and for SMART premature stops).
    fn buffer_writes(&self) -> u64 {
        self.counters().buffer_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fi(id: u64) -> FlightInfo {
        FlightInfo {
            id: PacketId(id),
            src: NodeId(0),
            dest: NodeId(1),
            vn: VirtualNetwork::Request,
            flits: 1,
            injected_at: 0,
            stops: 0,
        }
    }

    #[test]
    fn buffers_fifo_order_and_capacity() {
        let mut b = InputBuffers::new(5, 2);
        assert!(b.has_space(0, VirtualNetwork::Request));
        b.push(0, VirtualNetwork::Request, Buffered { flight: fi(1), ready_at: 0 });
        b.push(0, VirtualNetwork::Request, Buffered { flight: fi(2), ready_at: 0 });
        assert!(!b.has_space(0, VirtualNetwork::Request));
        assert_eq!(b.head(0, VirtualNetwork::Request).unwrap().flight.id, PacketId(1));
        assert_eq!(b.pop(0, VirtualNetwork::Request).unwrap().flight.id, PacketId(1));
        assert_eq!(b.pop(0, VirtualNetwork::Request).unwrap().flight.id, PacketId(2));
        assert!(b.pop(0, VirtualNetwork::Request).is_none());
    }

    #[test]
    fn occupied_lanes_tracks_nonempty_queues_in_lane_order() {
        let mut b = InputBuffers::new(5, 4);
        assert_eq!(b.occupied_lanes().count(), 0);
        b.push(3, VirtualNetwork::Response, Buffered { flight: fi(1), ready_at: 0 });
        b.push(0, VirtualNetwork::Request, Buffered { flight: fi(2), ready_at: 0 });
        b.push(0, VirtualNetwork::Request, Buffered { flight: fi(3), ready_at: 0 });
        let lanes: Vec<(usize, usize, VirtualNetwork)> = b.occupied_lanes().collect();
        assert_eq!(
            lanes,
            vec![
                (0, 0, VirtualNetwork::Request),
                (3 * VirtualNetwork::ALL.len() + VirtualNetwork::Response.index(), 3, VirtualNetwork::Response),
            ]
        );
        // Lane indices agree with `lanes()` enumeration order.
        for (lane, port, vn) in b.occupied_lanes() {
            assert_eq!(b.lanes().nth(lane), Some((port, vn)));
        }
        b.pop(0, VirtualNetwork::Request);
        assert_eq!(b.occupied_lanes().count(), 2, "one packet left in the lane");
        b.pop(0, VirtualNetwork::Request);
        assert_eq!(b.occupied_lanes().count(), 1);
        b.pop(3, VirtualNetwork::Response);
        assert_eq!(b.occupied_lanes().count(), 0);
    }

    #[test]
    fn buffers_are_per_lane() {
        let mut b = InputBuffers::new(5, 1);
        b.push(0, VirtualNetwork::Request, Buffered { flight: fi(1), ready_at: 0 });
        assert!(b.has_space(0, VirtualNetwork::Response));
        assert!(b.has_space(1, VirtualNetwork::Request));
        assert_eq!(b.total(), 1);
    }

    #[test]
    fn active_set_iterates_set_bits_in_ascending_order() {
        let mut a = ActiveSet::new(130);
        assert_eq!(a.iter().count(), 0);
        for i in [5, 0, 129, 64, 63] {
            a.set(i);
        }
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 5, 63, 64, 129]);
        a.clear(64);
        a.clear(0);
        a.set(5); // idempotent
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5, 63, 129]);
    }

    #[test]
    fn round_robin_rotates() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.pick(&[0, 1, 2], 3), Some(1));
        assert_eq!(rr.pick(&[0, 1, 2], 3), Some(2));
        assert_eq!(rr.pick(&[0, 1, 2], 3), Some(0));
        assert_eq!(rr.pick(&[2], 3), Some(2));
        assert_eq!(rr.pick(&[], 3), None);
    }

    #[test]
    fn link_occupancy_blocks_until_free() {
        let mut l = LinkOccupancy::new(4, 5);
        assert!(l.is_free(NodeId(2), 0, 0));
        l.occupy(NodeId(2), 0, 3);
        assert!(!l.is_free(NodeId(2), 0, 2));
        assert!(l.is_free(NodeId(2), 0, 3));
        // Other links unaffected.
        assert!(l.is_free(NodeId(2), 1, 0));
        assert!(l.is_free(NodeId(3), 0, 0));
    }
}
