//! Virtual Meshes with SMART (VMS) and XY-tree multicast routing.
//!
//! LOCO creates, for every home-node offset (`HNid`), a *virtual mesh*
//! connecting the corresponding home node of every cluster. Global data
//! searches and invalidations are broadcast over this virtual mesh using an
//! XY-tree: the request travels east and west along the root's row of home
//! nodes; every home node reached horizontally forks north and south along
//! its column of home nodes; every home node on the tree also ejects a copy
//! (Section 3.2, Figure 3 of the paper).
//!
//! [`VirtualMesh`] computes home-node membership from a cluster geometry;
//! [`MulticastTree`] provides the generic fork/continue decisions used by the
//! network for any registered multicast group whose members form a grid.

use crate::topology::{Coord, Direction, Mesh, NodeId};
use crate::fx::FxHashMap;

/// The set of home nodes (one per cluster) that share a given home-node
/// offset, i.e. one virtual mesh of the LOCO design.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VirtualMesh {
    mesh: Mesh,
    cluster_w: u16,
    cluster_h: u16,
    offset: Coord,
    members: Vec<NodeId>,
}

impl VirtualMesh {
    /// Builds the virtual mesh for the home-node `offset` (coordinates within
    /// a cluster) of a chip partitioned into `cluster_w x cluster_h`
    /// clusters.
    ///
    /// # Panics
    ///
    /// Panics if the cluster does not evenly tile the mesh or the offset lies
    /// outside the cluster.
    pub fn new(mesh: Mesh, cluster_w: u16, cluster_h: u16, offset: Coord) -> Self {
        assert!(
            cluster_w > 0
                && cluster_h > 0
                && mesh.width() % cluster_w == 0
                && mesh.height() % cluster_h == 0,
            "clusters of {cluster_w}x{cluster_h} must evenly tile the {}x{} mesh",
            mesh.width(),
            mesh.height()
        );
        assert!(
            offset.x < cluster_w && offset.y < cluster_h,
            "home-node offset {offset} outside {cluster_w}x{cluster_h} cluster"
        );
        let mut members = Vec::new();
        let mut cy = 0;
        while cy < mesh.height() {
            let mut cx = 0;
            while cx < mesh.width() {
                members.push(mesh.node_at(Coord::new(cx + offset.x, cy + offset.y)));
                cx += cluster_w;
            }
            cy += cluster_h;
        }
        VirtualMesh {
            mesh,
            cluster_w,
            cluster_h,
            offset,
            members,
        }
    }

    /// The home nodes forming this virtual mesh, in row-major order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of clusters (= number of members).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the virtual mesh has no members (never true for a valid
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The home node of this virtual mesh inside the cluster containing
    /// `node`.
    pub fn home_for(&self, node: NodeId) -> NodeId {
        let c = self.mesh.coord(node);
        let base_x = (c.x / self.cluster_w) * self.cluster_w;
        let base_y = (c.y / self.cluster_h) * self.cluster_h;
        self.mesh
            .node_at(Coord::new(base_x + self.offset.x, base_y + self.offset.y))
    }

    /// Worst-case number of SMART-hops of a broadcast over this virtual mesh
    /// (the longest root-to-leaf path in the XY tree), assuming each
    /// home-to-home segment fits in one SMART-hop.
    pub fn broadcast_depth(&self, root: NodeId) -> u16 {
        let rc = self.mesh.coord(root);
        let cols = self.mesh.width() / self.cluster_w;
        let rows = self.mesh.height() / self.cluster_h;
        let root_col = rc.x / self.cluster_w;
        let root_row = rc.y / self.cluster_h;
        let horiz = root_col.max(cols - 1 - root_col);
        let vert = root_row.max(rows - 1 - root_row);
        horiz + vert
    }
}

/// Generic XY-tree multicast routing over an arbitrary grid-aligned set of
/// nodes. This is what the network consults to decide where a broadcast flit
/// forks at each member router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastTree {
    members: Vec<NodeId>,
    /// For each member: nearest member strictly east / west in the same row,
    /// and strictly north / south in the same column.
    next: FxHashMap<NodeId, [Option<NodeId>; 4]>,
}

impl MulticastTree {
    /// Builds the tree-routing tables for `members` of `mesh`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(mesh: Mesh, members: Vec<NodeId>) -> Self {
        assert!(!members.is_empty(), "multicast group must not be empty");
        let mut next: FxHashMap<NodeId, [Option<NodeId>; 4]> = FxHashMap::default();
        for &m in &members {
            let mc = mesh.coord(m);
            let mut slots: [Option<NodeId>; 4] = [None; 4];
            for &o in &members {
                if o == m {
                    continue;
                }
                let oc = mesh.coord(o);
                if oc.y == mc.y && oc.x > mc.x {
                    // East: nearest larger x.
                    if slots[Direction::East.index()]
                        .map(|cur| mesh.coord(cur).x > oc.x)
                        .unwrap_or(true)
                    {
                        slots[Direction::East.index()] = Some(o);
                    }
                }
                if oc.y == mc.y && oc.x < mc.x {
                    if slots[Direction::West.index()]
                        .map(|cur| mesh.coord(cur).x < oc.x)
                        .unwrap_or(true)
                    {
                        slots[Direction::West.index()] = Some(o);
                    }
                }
                if oc.x == mc.x && oc.y > mc.y {
                    if slots[Direction::North.index()]
                        .map(|cur| mesh.coord(cur).y > oc.y)
                        .unwrap_or(true)
                    {
                        slots[Direction::North.index()] = Some(o);
                    }
                }
                if oc.x == mc.x && oc.y < mc.y {
                    if slots[Direction::South.index()]
                        .map(|cur| mesh.coord(cur).y < oc.y)
                        .unwrap_or(true)
                    {
                        slots[Direction::South.index()] = Some(o);
                    }
                }
            }
            next.insert(m, slots);
        }
        MulticastTree { members, next }
    }

    /// Group members.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Whether `node` is a member of the group.
    pub fn contains(&self, node: NodeId) -> bool {
        self.next.contains_key(&node)
    }

    /// The next members to forward to from `at`, given the direction the
    /// flit was travelling when it arrived (`None` at the broadcast root).
    ///
    /// Horizontal travellers continue horizontally and fork north/south;
    /// vertical travellers only continue vertically; the root fans out in all
    /// four directions. Every member also delivers a local copy (handled by
    /// the caller).
    pub fn children(&self, at: NodeId, travelling: Option<Direction>) -> Vec<(Direction, NodeId)> {
        let Some(slots) = self.next.get(&at) else {
            return Vec::new();
        };
        let dirs: &[Direction] = match travelling {
            None => &[
                Direction::East,
                Direction::West,
                Direction::North,
                Direction::South,
            ],
            Some(Direction::East) => &[Direction::East, Direction::North, Direction::South],
            Some(Direction::West) => &[Direction::West, Direction::North, Direction::South],
            Some(Direction::North) => &[Direction::North],
            Some(Direction::South) => &[Direction::South],
            Some(Direction::Local) => &[],
        };
        dirs.iter()
            .filter_map(|&d| slots[d.index()].map(|n| (d, n)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn vms_members_of_8x8_with_4x4_clusters() {
        // Figure 1: a 64-core chip with 4x4 clusters has 4 clusters, so each
        // VMS has 4 home nodes.
        let mesh = Mesh::new(8, 8);
        let vms = VirtualMesh::new(mesh, 4, 4, Coord::new(1, 1));
        assert_eq!(vms.len(), 4);
        let expect: HashSet<NodeId> = [
            mesh.node_at(Coord::new(1, 1)),
            mesh.node_at(Coord::new(5, 1)),
            mesh.node_at(Coord::new(1, 5)),
            mesh.node_at(Coord::new(5, 5)),
        ]
        .into_iter()
        .collect();
        assert_eq!(vms.members().iter().copied().collect::<HashSet<_>>(), expect);
    }

    #[test]
    fn vms_4x1_clusters_give_16_members() {
        let mesh = Mesh::new(8, 8);
        let vms = VirtualMesh::new(mesh, 4, 1, Coord::new(2, 0));
        assert_eq!(vms.len(), 16);
    }

    #[test]
    fn home_for_maps_any_node_to_its_cluster_home() {
        let mesh = Mesh::new(8, 8);
        let vms = VirtualMesh::new(mesh, 4, 4, Coord::new(3, 3));
        // A node in the north-east cluster maps to that cluster's home.
        let n = mesh.node_at(Coord::new(6, 7));
        assert_eq!(vms.home_for(n), mesh.node_at(Coord::new(7, 7)));
        // A node in the south-west cluster.
        let n = mesh.node_at(Coord::new(0, 2));
        assert_eq!(vms.home_for(n), mesh.node_at(Coord::new(3, 3)));
    }

    #[test]
    #[should_panic(expected = "evenly tile")]
    fn vms_rejects_non_tiling_cluster() {
        VirtualMesh::new(Mesh::new(8, 8), 3, 4, Coord::new(0, 0));
    }

    #[test]
    fn broadcast_tree_covers_all_members_exactly_once() {
        let mesh = Mesh::new(8, 8);
        let vms = VirtualMesh::new(mesh, 4, 4, Coord::new(1, 1));
        let tree = MulticastTree::new(mesh, vms.members().to_vec());
        // Walk the tree from each possible root and check coverage.
        for &root in vms.members() {
            let mut visited = HashSet::new();
            let mut frontier = vec![(root, None)];
            while let Some((node, travelling)) = frontier.pop() {
                assert!(visited.insert(node), "node {node} visited twice");
                for (dir, child) in tree.children(node, travelling) {
                    frontier.push((child, Some(dir)));
                }
            }
            assert_eq!(visited.len(), vms.len(), "root {root}");
        }
    }

    #[test]
    fn broadcast_tree_covers_16_member_vms() {
        let mesh = Mesh::new(16, 16);
        let vms = VirtualMesh::new(mesh, 4, 4, Coord::new(2, 1));
        let tree = MulticastTree::new(mesh, vms.members().to_vec());
        let root = vms.members()[5];
        let mut visited = HashSet::new();
        let mut frontier = vec![(root, None)];
        while let Some((node, travelling)) = frontier.pop() {
            assert!(visited.insert(node));
            for (dir, child) in tree.children(node, travelling) {
                frontier.push((child, Some(dir)));
            }
        }
        assert_eq!(visited.len(), 16);
    }

    #[test]
    fn vertical_travellers_do_not_fork_horizontally() {
        let mesh = Mesh::new(8, 8);
        let vms = VirtualMesh::new(mesh, 4, 4, Coord::new(0, 0));
        let tree = MulticastTree::new(mesh, vms.members().to_vec());
        let lower_left = mesh.node_at(Coord::new(0, 0));
        let children = tree.children(lower_left, Some(Direction::South));
        assert!(children.is_empty());
        let upper_left = mesh.node_at(Coord::new(0, 4));
        let children = tree.children(upper_left, Some(Direction::North));
        assert!(children.is_empty());
    }

    #[test]
    fn broadcast_depth_matches_figure3() {
        // Figure 3: a corner-rooted broadcast over a 4-cluster VMS finishes
        // in 2 tree levels (the paper counts 4 SMART-hops because each level
        // has X and Y components; our depth counts levels per dimension).
        let mesh = Mesh::new(8, 8);
        let vms = VirtualMesh::new(mesh, 4, 4, Coord::new(1, 1));
        let corner_home = mesh.node_at(Coord::new(1, 1));
        assert_eq!(vms.broadcast_depth(corner_home), 2);
        let mesh16 = Mesh::new(16, 16);
        let vms16 = VirtualMesh::new(mesh16, 4, 4, Coord::new(1, 1));
        let corner_home = mesh16.node_at(Coord::new(1, 1));
        assert_eq!(vms16.broadcast_depth(corner_home), 6);
    }
}
