//! Physical addresses and the address→home-node mapping of Figure 1.
//!
//! The paper statically maps a cache line to the home node *inside a
//! cluster* using the least-significant bits of the block address (the
//! `HNid` field), and to an L2 set using the bits above it:
//!
//! ```text
//!   | Tag | Index | HNid | Offset |
//! ```

use std::fmt;

/// A full byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Address(pub u64);

/// A cache-line address (byte address with the block offset stripped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LineAddr(pub u64);

impl Address {
    /// The line containing this address, for `line_bytes`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn line(self, line_bytes: u32) -> LineAddr {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }
}

impl LineAddr {
    /// The first byte address of this line.
    pub fn base(self, line_bytes: u32) -> Address {
        Address(self.0 << line_bytes.trailing_zeros())
    }

    /// The `HNid` field: the least-significant `bits` bits of the line
    /// address, used to pick the home node inside a cluster.
    pub fn hnid(self, bits: u32) -> u64 {
        if bits == 0 {
            0
        } else {
            self.0 & ((1 << bits) - 1)
        }
    }

    /// The set-index field for an L2 slice with `sets` sets, skipping the
    /// `hnid_bits` used for home-node interleaving.
    pub fn set_index(self, hnid_bits: u32, sets: usize) -> usize {
        ((self.0 >> hnid_bits) % sets as u64) as usize
    }

    /// The tag (everything above the set-index field).
    pub fn tag(self, hnid_bits: u32, sets: usize) -> u64 {
        (self.0 >> hnid_bits) / sets as u64
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

impl From<u64> for Address {
    fn from(v: u64) -> Self {
        Address(v)
    }
}

impl From<u64> for LineAddr {
    fn from(v: u64) -> Self {
        LineAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction_strips_offset() {
        let a = Address(0x1234);
        assert_eq!(a.line(32), LineAddr(0x1234 >> 5));
        assert_eq!(a.line(32).base(32), Address(0x1220));
    }

    #[test]
    fn hnid_uses_low_bits_of_line_address() {
        let l = LineAddr(0b1011_0110);
        assert_eq!(l.hnid(4), 0b0110);
        assert_eq!(l.hnid(0), 0);
        assert_eq!(l.hnid(2), 0b10);
    }

    #[test]
    fn set_index_and_tag_partition_the_address() {
        let sets = 32;
        let hnid_bits = 4;
        for raw in [0u64, 1, 0x37, 0x1234, 0xffff_ffff, 0xdead_beef_cafe] {
            let l = LineAddr(raw);
            let rebuilt = (l.tag(hnid_bits, sets) * sets as u64 + l.set_index(hnid_bits, sets) as u64)
                << hnid_bits
                | l.hnid(hnid_bits as u32);
            assert_eq!(rebuilt, raw);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_size_panics() {
        Address(0).line(48);
    }
}
