//! The network front-end: payload ownership, multicast expansion, ejection
//! queues and statistics, on top of one of the three fabric engines.

use crate::config::{NocConfig, RouterKind};
use crate::conventional::ConventionalFabric;
use crate::fx::FxHashMap;
use crate::highradix::HighRadixFabric;
use crate::message::{Delivered, Destination, MulticastGroupId, NetMessage, VirtualNetwork};
use crate::router::{Arrival, FabricEngine, FlightInfo, PacketId};
use crate::smart::SmartFabric;
use crate::stats::NetworkStats;
use crate::topology::{Direction, NodeId};
use crate::vms::MulticastTree;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Error returned by [`Network::inject`] when the source NIC's injection
/// buffer has no space this cycle. It hands the rejected message back to the
/// caller, so retry queues never need to clone speculatively on the hot
/// injection path.
pub struct InjectError<P>(NetMessage<P>);

impl<P> InjectError<P> {
    /// The rejected message, returned by value for a later retry.
    pub fn into_message(self) -> NetMessage<P> {
        self.0
    }

    /// A view of the rejected message.
    pub fn message(&self) -> &NetMessage<P> {
        &self.0
    }
}

impl<P> fmt::Debug for InjectError<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("InjectError(injection buffer full)")
    }
}

impl<P> fmt::Display for InjectError<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("injection buffer full")
    }
}

impl<P> std::error::Error for InjectError<P> {}

enum Fabric {
    Conventional(ConventionalFabric),
    Smart(SmartFabric),
    HighRadix(HighRadixFabric),
}

impl Fabric {
    fn as_engine(&mut self) -> &mut dyn FabricEngine {
        match self {
            Fabric::Conventional(f) => f,
            Fabric::Smart(f) => f,
            Fabric::HighRadix(f) => f,
        }
    }

    fn as_engine_ref(&self) -> &dyn FabricEngine {
        match self {
            Fabric::Conventional(f) => f,
            Fabric::Smart(f) => f,
            Fabric::HighRadix(f) => f,
        }
    }
}

struct PacketRecord<P> {
    msg: NetMessage<P>,
    /// For multicast copies: the direction this copy travels on the XY tree
    /// (None at the root copy spawned by `inject`).
    travelling: Option<Direction>,
}

/// One fabric arrival waiting out its (multi-flit) release time, ordered for
/// the min-heap by `(release cycle, insertion order)`. All arrivals released
/// at one tick share the same release cycle, so the insertion-order tiebreak
/// makes the heap pop order bit-identical to the old in-order scan of the
/// in-flight list.
struct QueuedArrival {
    seq: u64,
    arrival: Arrival,
}

impl PartialEq for QueuedArrival {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for QueuedArrival {}
impl Ord for QueuedArrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival.now, self.seq).cmp(&(other.arrival.now, other.seq))
    }
}
impl PartialOrd for QueuedArrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A cycle-driven on-chip network carrying messages with payload type `P`.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Network<P> {
    cfg: NocConfig,
    fabric: Fabric,
    cycle: u64,
    groups: Vec<MulticastTree>,
    packets: FxHashMap<PacketId, PacketRecord<P>>,
    next_packet: u64,
    pending: BinaryHeap<Reverse<QueuedArrival>>,
    next_arrival_seq: u64,
    /// Scratch buffer handed to the fabric each tick (avoids a per-cycle
    /// allocation on the hot path).
    arrivals_scratch: Vec<Arrival>,
    /// Scratch for arrivals that complete in the very tick they are produced
    /// (the common single-flit case) — they bypass the heap entirely.
    due_scratch: Vec<Arrival>,
    eject_queues: Vec<VecDeque<Delivered<P>>>,
    /// Total messages sitting in `eject_queues` (lets `eject_all` skip the
    /// per-node scan on quiet cycles).
    ejectable: usize,
    stats: NetworkStats,
}

impl<P: Clone> Network<P> {
    /// Builds a network for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NocConfig::validate`].
    pub fn new(cfg: NocConfig) -> Self {
        cfg.validate().expect("invalid NoC configuration");
        let fabric = match cfg.router {
            RouterKind::Conventional => Fabric::Conventional(ConventionalFabric::new(cfg)),
            RouterKind::Smart => Fabric::Smart(SmartFabric::new(cfg)),
            RouterKind::HighRadix => Fabric::HighRadix(HighRadixFabric::new(cfg)),
        };
        Network {
            cfg,
            fabric,
            cycle: 0,
            groups: Vec::new(),
            packets: FxHashMap::default(),
            next_packet: 0,
            pending: BinaryHeap::new(),
            next_arrival_seq: 0,
            arrivals_scratch: Vec::new(),
            due_scratch: Vec::new(),
            eject_queues: (0..cfg.mesh.len()).map(|_| VecDeque::new()).collect(),
            ejectable: 0,
            stats: NetworkStats::default(),
        }
    }

    /// The configuration this network was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Registers a multicast group (e.g. the home nodes of a virtual mesh)
    /// and returns its id for use in [`Destination::Multicast`].
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn register_multicast_group(&mut self, members: Vec<NodeId>) -> MulticastGroupId {
        let id = MulticastGroupId(self.groups.len() as u32);
        self.groups.push(MulticastTree::new(self.cfg.mesh, members));
        id
    }

    /// Members of a previously registered multicast group.
    ///
    /// # Panics
    ///
    /// Panics if the group id was not returned by this network.
    pub fn multicast_members(&self, group: MulticastGroupId) -> &[NodeId] {
        self.groups[group.0 as usize].members()
    }

    /// Whether the injection port at `node` can accept a message on `vn`
    /// this cycle.
    pub fn can_inject(&self, node: NodeId, vn: VirtualNetwork) -> bool {
        self.fabric.as_engine_ref().can_accept(node, vn)
    }

    /// Injects a message.
    ///
    /// Unicast messages whose source equals their destination are delivered
    /// locally with a 1-cycle latency without entering the fabric.
    ///
    /// # Errors
    ///
    /// Returns [`InjectError`] — carrying the rejected message back to the
    /// caller — if the source injection buffer is full; the caller should
    /// retry on a later cycle (this is how back-pressure propagates into the
    /// cache controllers).
    ///
    /// # Panics
    ///
    /// Panics if a multicast destination names an unregistered group or the
    /// source is not a member of the group.
    pub fn inject(&mut self, msg: NetMessage<P>) -> Result<(), InjectError<P>> {
        match msg.dest {
            Destination::Unicast(dest) if dest == msg.src => {
                self.stats.injected_messages += 1;
                let delivered = Delivered {
                    receiver: dest,
                    injected_at: self.cycle,
                    ejected_at: self.cycle + 1,
                    latency: 1,
                    stops: 0,
                    msg,
                };
                self.stats
                    .record_delivery(delivered.msg.vn, 1, 0);
                self.eject_queues[dest.index()].push_back(delivered);
                self.ejectable += 1;
                Ok(())
            }
            Destination::Unicast(dest) => {
                if !self.can_inject(msg.src, msg.vn) {
                    return Err(InjectError(msg));
                }
                self.stats.injected_messages += 1;
                let flight = self.new_flight(&msg, msg.src, dest, 0);
                self.packets.insert(
                    flight.id,
                    PacketRecord {
                        msg,
                        travelling: None,
                    },
                );
                self.fabric.as_engine().inject(flight, self.cycle);
                Ok(())
            }
            Destination::Multicast(group) => {
                assert!(
                    (group.0 as usize) < self.groups.len(),
                    "unregistered multicast group {group:?}"
                );
                if !self.can_inject(msg.src, msg.vn) {
                    return Err(InjectError(msg));
                }
                assert!(
                    self.groups[group.0 as usize].contains(msg.src),
                    "multicast source {} is not a member of its group",
                    msg.src
                );
                self.stats.injected_messages += 1;
                let children = self.groups[group.0 as usize].children(msg.src, None);
                for (dir, next) in children {
                    let flight = self.new_flight(&msg, msg.src, next, 0);
                    self.packets.insert(
                        flight.id,
                        PacketRecord {
                            msg: msg.clone(),
                            travelling: Some(dir),
                        },
                    );
                    self.stats.multicast_forks += 1;
                    self.fabric.as_engine().inject(flight, self.cycle);
                }
                Ok(())
            }
        }
    }

    fn new_flight(&mut self, msg: &NetMessage<P>, src: NodeId, dest: NodeId, stops: u32) -> FlightInfo {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        FlightInfo {
            id,
            src,
            dest,
            vn: msg.vn,
            flits: self.cfg.flits_for(msg.size_bytes),
            injected_at: self.cycle,
            stops,
        }
    }

    /// Advances the network by one cycle.
    pub fn tick(&mut self) {
        let mut arrivals = std::mem::take(&mut self.arrivals_scratch);
        let mut due = std::mem::take(&mut self.due_scratch);
        debug_assert!(arrivals.is_empty() && due.is_empty());
        self.fabric.as_engine().tick(self.cycle, &mut arrivals);
        // Fabric arrival times are always in the future (`> self.cycle`);
        // those due on the very next cycle — the common single-flit case —
        // bypass the heap. Heap entries released this tick are all timed at
        // exactly `cycle + 1` too (earlier ones were released last tick) and
        // carry smaller sequence numbers, so "heap first, then fresh
        // arrivals in production order" reproduces the naive in-order scan
        // of the old in-flight list bit for bit.
        for arrival in arrivals.drain(..) {
            debug_assert!(arrival.now > self.cycle);
            if arrival.now == self.cycle + 1 {
                due.push(arrival);
            } else {
                let seq = self.next_arrival_seq;
                self.next_arrival_seq += 1;
                self.pending.push(Reverse(QueuedArrival { seq, arrival }));
            }
        }
        self.arrivals_scratch = arrivals;
        self.cycle += 1;
        // Release arrivals whose (possibly multi-flit) arrival time has been
        // reached — an O(log n) heap pop per due arrival instead of the old
        // O(in-flight) re-partition of the whole list every cycle.
        while let Some(Reverse(q)) = self.pending.peek() {
            if q.arrival.now > self.cycle {
                break;
            }
            let Reverse(q) = self.pending.pop().expect("peeked element");
            self.complete(q.arrival);
        }
        for i in 0..due.len() {
            self.complete(due[i]);
        }
        due.clear();
        self.due_scratch = due;
    }

    /// Earliest cycle `>= self.cycle` at which [`Network::tick`] can change
    /// state (release a queued arrival or move a packet inside the fabric),
    /// or `None` when the network is fully quiescent. Event-driven callers
    /// use this to skip dead cycles via [`Network::advance_to`].
    ///
    /// The bound holds under *partial occupancy*: the queued-arrival heap
    /// front (multi-flit releases, high-radix pipeline exits) is folded with
    /// the fabric engine's per-head probe, so a network holding blocked or
    /// serializing packets still reports a future horizon instead of
    /// degenerating to "busy". Already-delivered messages waiting in
    /// ejection queues are not events — ticking never changes them — so
    /// callers that skip must drain ejections first (debug-checked by
    /// [`Network::advance_to`]).
    pub fn next_event(&self) -> Option<u64> {
        // An arrival with release time `t` is completed by the tick that
        // runs *during* cycle `t - 1` (tick increments the clock first), so
        // that is the cycle the caller must not skip past.
        let pending = self
            .pending
            .peek()
            .map(|Reverse(q)| q.arrival.now.saturating_sub(1).max(self.cycle));
        let fabric = self.fabric.as_engine_ref().next_event(self.cycle);
        match (pending, fabric) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fast-forwards the network clock to `cycle` without simulating the
    /// cycles in between.
    ///
    /// The caller must guarantee the skipped range is dead time: no cycle in
    /// `self.cycle..cycle` may be one at which [`Network::tick`] would have
    /// changed state (i.e. `cycle` must not exceed [`Network::next_event`]),
    /// and all ejection queues must have been drained. Both are debug-checked.
    pub fn advance_to(&mut self, cycle: u64) {
        debug_assert!(cycle >= self.cycle, "advance_to must move forward");
        debug_assert!(
            self.next_event().is_none_or(|e| e >= cycle),
            "advance_to would skip a live network event"
        );
        debug_assert!(self.ejectable == 0, "advance_to with undelivered ejections");
        self.cycle = cycle;
    }

    fn complete(&mut self, arrival: Arrival) {
        let record = self
            .packets
            .remove(&arrival.flight.id)
            .expect("arrival for unknown packet");
        let latency = arrival.now.saturating_sub(arrival.flight.injected_at);
        self.stats
            .record_delivery(record.msg.vn, latency, arrival.flight.stops);
        // Multicast: spawn children before delivering this copy.
        if let (Destination::Multicast(group), Some(dir)) = (record.msg.dest, record.travelling) {
            let children = self.groups[group.0 as usize].children(arrival.at, Some(dir));
            for (cdir, next) in children {
                let flight = FlightInfo {
                    id: PacketId(self.next_packet),
                    src: arrival.at,
                    dest: next,
                    vn: record.msg.vn,
                    flits: arrival.flight.flits,
                    injected_at: arrival.flight.injected_at,
                    stops: arrival.flight.stops,
                };
                self.next_packet += 1;
                self.packets.insert(
                    flight.id,
                    PacketRecord {
                        msg: record.msg.clone(),
                        travelling: Some(cdir),
                    },
                );
                self.stats.multicast_forks += 1;
                self.fabric.as_engine().inject(flight, self.cycle);
            }
        }
        let delivered = Delivered {
            receiver: arrival.at,
            injected_at: arrival.flight.injected_at,
            ejected_at: arrival.now,
            latency,
            stops: arrival.flight.stops,
            msg: record.msg,
        };
        self.eject_queues[arrival.at.index()].push_back(delivered);
        self.ejectable += 1;
    }

    /// Drains all messages delivered at `node`.
    pub fn eject(&mut self, node: NodeId) -> Vec<Delivered<P>> {
        let drained: Vec<Delivered<P>> = self.eject_queues[node.index()].drain(..).collect();
        self.ejectable -= drained.len();
        drained
    }

    /// Drains all delivered messages across every node into `out`
    /// (allocation-free once `out` has warmed up its capacity).
    pub fn eject_all_into(&mut self, out: &mut Vec<Delivered<P>>) {
        if self.ejectable == 0 {
            return;
        }
        out.reserve(self.ejectable);
        for q in &mut self.eject_queues {
            while let Some(d) = q.pop_front() {
                out.push(d);
            }
        }
        self.ejectable = 0;
    }

    /// Drains all delivered messages across every node.
    pub fn eject_all(&mut self) -> Vec<Delivered<P>> {
        let mut out = Vec::new();
        self.eject_all_into(&mut out);
        out
    }

    /// Whether any packet is still inside the fabric or waiting in an
    /// ejection queue.
    pub fn is_busy(&self) -> bool {
        self.in_flight() > 0 || self.ejectable > 0
    }

    /// Number of packets currently travelling through the fabric (including
    /// arrivals not yet released to an ejection queue), excluding already
    /// delivered messages waiting to be ejected.
    pub fn in_flight(&self) -> usize {
        self.fabric.as_engine_ref().in_flight() + self.pending.len()
    }

    /// Aggregate statistics: a snapshot of the front-end delivery stats with
    /// the fabric's live event counters folded into
    /// [`NetworkStats::fabric`].
    pub fn stats(&self) -> NetworkStats {
        let mut stats = self.stats.clone();
        stats.fabric = *self.fabric.as_engine_ref().counters();
        stats
    }

    /// The fabric's micro-architectural event counters (the raw inputs of
    /// the event-energy model).
    pub fn fabric_counters(&self) -> &crate::stats::FabricCounters {
        self.fabric.as_engine_ref().counters()
    }

    /// Total router-buffer writes performed by the fabric (a proxy for
    /// buffer energy; SMART's raison d'être is keeping this low).
    pub fn buffer_writes(&self) -> u64 {
        self.fabric.as_engine_ref().buffer_writes()
    }
}

impl<P> fmt::Debug for Network<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("cfg", &self.cfg)
            .field("cycle", &self.cycle)
            .field("in_flight", &self.packets.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Coord, Mesh};
    use crate::vms::VirtualMesh;

    fn run_until_quiet<P: Clone>(net: &mut Network<P>, limit: u64) {
        let mut cycles = 0;
        loop {
            net.tick();
            cycles += 1;
            assert!(cycles < limit, "network did not drain within {limit} cycles");
            if net.in_flight() == 0 {
                break;
            }
        }
    }

    #[test]
    fn unicast_delivery_on_all_router_kinds() {
        for cfg in [
            NocConfig::smart_mesh(8, 8, 4),
            NocConfig::conventional_mesh(8, 8),
            NocConfig::highradix_mesh(8, 8, 4),
        ] {
            let mut net: Network<u32> = Network::new(cfg);
            net.inject(NetMessage::unicast(
                NodeId(0),
                NodeId(63),
                VirtualNetwork::Request,
                8,
                7,
            ))
            .unwrap();
            let mut got = Vec::new();
            for _ in 0..200 {
                net.tick();
                got.extend(net.eject(NodeId(63)));
                if !got.is_empty() {
                    break;
                }
            }
            assert_eq!(got.len(), 1, "router {:?}", cfg.router);
            assert_eq!(got[0].msg.payload, 7);
            assert!(got[0].latency > 0);
        }
    }

    #[test]
    fn self_message_is_delivered_locally() {
        let mut net: Network<&str> = Network::new(NocConfig::smart_mesh(4, 4, 4));
        net.inject(NetMessage::unicast(
            NodeId(5),
            NodeId(5),
            VirtualNetwork::Response,
            40,
            "hi",
        ))
        .unwrap();
        let got = net.eject(NodeId(5));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].latency, 1);
    }

    #[test]
    fn vms_broadcast_reaches_every_other_home_node() {
        let mesh = Mesh::new(8, 8);
        let vms = VirtualMesh::new(mesh, 4, 4, Coord::new(1, 1));
        let mut net: Network<u8> = Network::new(NocConfig::smart_mesh(8, 8, 4));
        let group = net.register_multicast_group(vms.members().to_vec());
        let root = vms.home_for(NodeId(0));
        net.inject(NetMessage::multicast(
            root,
            group,
            VirtualNetwork::Broadcast,
            8,
            1,
        ))
        .unwrap();
        run_until_quiet(&mut net, 500);
        let mut receivers = Vec::new();
        for &m in vms.members() {
            for d in net.eject(m) {
                receivers.push(d.receiver);
                // Figure 3: the whole broadcast completes within a handful of
                // SMART-hops; allow some slack for fork arbitration.
                assert!(d.latency <= 20, "latency {}", d.latency);
            }
        }
        receivers.sort_unstable();
        let mut expected: Vec<NodeId> = vms
            .members()
            .iter()
            .copied()
            .filter(|&m| m != root)
            .collect();
        expected.sort_unstable();
        assert_eq!(receivers, expected);
    }

    #[test]
    fn broadcast_on_16_cluster_vms_covers_all() {
        let mesh = Mesh::new(16, 16);
        let vms = VirtualMesh::new(mesh, 4, 4, Coord::new(0, 0));
        let mut net: Network<u8> = Network::new(NocConfig::smart_mesh(16, 16, 4));
        let group = net.register_multicast_group(vms.members().to_vec());
        let root = vms.members()[0];
        net.inject(NetMessage::multicast(
            root,
            group,
            VirtualNetwork::Broadcast,
            8,
            0,
        ))
        .unwrap();
        run_until_quiet(&mut net, 2000);
        let delivered: usize = vms.members().iter().map(|&m| net.eject(m).len()).sum();
        assert_eq!(delivered, 15);
    }

    #[test]
    fn stats_accumulate() {
        let mut net: Network<u8> = Network::new(NocConfig::smart_mesh(4, 4, 4));
        for i in 0..4u16 {
            net.inject(NetMessage::unicast(
                NodeId(i),
                NodeId(15 - i),
                VirtualNetwork::Request,
                8,
                0,
            ))
            .unwrap();
        }
        run_until_quiet(&mut net, 500);
        net.eject_all();
        assert_eq!(net.stats().injected_messages, 4);
        assert_eq!(net.stats().delivered_copies, 4);
        assert!(net.stats().avg_latency() > 0.0);
        // The snapshot carries the fabric's event counters.
        let stats = net.stats();
        assert_eq!(stats.fabric, *net.fabric_counters());
        assert!(stats.fabric.ssr_broadcasts >= 4, "SMART fabric issues SSRs");
        assert!(stats.fabric.buffer_writes >= 4, "one write per injection");
    }

    #[test]
    fn backpressure_limits_injection() {
        let cfg = NocConfig::smart_mesh(4, 4, 4);
        let mut net: Network<u8> = Network::new(cfg);
        let mut accepted = 0;
        // Flood a single source without ever ticking; eventually the
        // injection queue fills up.
        for _ in 0..1000 {
            match net.inject(NetMessage::unicast(
                NodeId(0),
                NodeId(15),
                VirtualNetwork::Request,
                8,
                0,
            )) {
                Ok(()) => accepted += 1,
                Err(e) => {
                    // The rejected message comes back by value for retry.
                    assert_eq!(e.message().src, NodeId(0));
                    assert_eq!(e.into_message().dest, Destination::Unicast(NodeId(15)));
                    break;
                }
            }
        }
        assert!(accepted >= cfg.vn_buffer_capacity() as u64);
        assert!(accepted < 1000);
    }

    #[test]
    fn next_event_tracks_queued_arrivals_and_quiescence() {
        let mut net: Network<u8> = Network::new(NocConfig::smart_mesh(8, 8, 4));
        assert_eq!(net.next_event(), None, "an empty network has no events");
        net.inject(NetMessage::unicast(
            NodeId(0),
            NodeId(4),
            VirtualNetwork::Request,
            8,
            9,
        ))
        .unwrap();
        // The injected packet becomes switch-eligible at cycle 1.
        assert_eq!(net.next_event(), Some(1));
        net.advance_to(1);
        run_until_quiet(&mut net, 50);
        assert_eq!(net.eject(NodeId(4)).len(), 1);
        assert_eq!(net.next_event(), None, "drained network is quiescent again");
    }
}
