//! # loco-bench — benchmark harness for the LOCO reproduction
//!
//! Two entry points:
//!
//! * the `reproduce` binary regenerates every table and figure of the
//!   paper's evaluation (`cargo run --release -p loco-bench --bin reproduce
//!   -- --help`),
//! * the benches under `benches/` (built on the in-tree [`timing`] harness)
//!   time a reduced version of each figure's simulation campaign so that
//!   `cargo bench` exercises every experiment end to end.
//!
//! The library part only hosts shared helpers for those two front-ends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use loco::{Benchmark, ExperimentParams};

/// Which experiment scale a harness invocation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 16-core smoke scale (seconds).
    Quick,
    /// The paper's 64-core CMP.
    Cores64,
    /// The paper's 256-core CMP.
    Cores256,
}

impl Scale {
    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "64" => Some(Scale::Cores64),
            "256" => Some(Scale::Cores256),
            _ => None,
        }
    }

    /// The experiment parameters for this scale.
    pub fn params(self) -> ExperimentParams {
        match self {
            Scale::Quick => ExperimentParams::quick(),
            Scale::Cores64 => ExperimentParams::paper_64(),
            Scale::Cores256 => ExperimentParams::paper_256(),
        }
    }

    /// Scale label used in output paths.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Cores64 => "64",
            Scale::Cores256 => "256",
        }
    }
}

/// The benchmark list used by a scale (the full 8-benchmark suite for the
/// paper scales, a 3-benchmark subset for the quick scale).
pub fn benchmarks_for(scale: Scale) -> Vec<Benchmark> {
    match scale {
        Scale::Quick => vec![Benchmark::Lu, Benchmark::Blackscholes, Benchmark::Barnes],
        _ => Benchmark::TRACE_DRIVEN.to_vec(),
    }
}

/// The benchmark list for the full-system figure.
pub fn fullsystem_benchmarks_for(scale: Scale) -> Vec<Benchmark> {
    match scale {
        Scale::Quick => vec![Benchmark::Lu, Benchmark::Fft],
        _ => Benchmark::FULL_SYSTEM.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("64"), Some(Scale::Cores64));
        assert_eq!(Scale::parse("256"), Some(Scale::Cores256));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn scales_map_to_params() {
        assert_eq!(Scale::Quick.params().num_cores(), 16);
        assert_eq!(Scale::Cores64.params().num_cores(), 64);
        assert_eq!(Scale::Cores256.params().num_cores(), 256);
    }

    #[test]
    fn benchmark_lists_are_nonempty() {
        for s in [Scale::Quick, Scale::Cores64, Scale::Cores256] {
            assert!(!benchmarks_for(s).is_empty());
            assert!(!fullsystem_benchmarks_for(s).is_empty());
        }
        assert_eq!(benchmarks_for(Scale::Cores64).len(), 8);
        assert_eq!(fullsystem_benchmarks_for(Scale::Cores64).len(), 11);
    }
}
