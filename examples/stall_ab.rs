//! Cross-PR A/B driver for the event-driven scheduler on its target
//! workloads: times `CmpSystem::run` on the two stall-heavy stress
//! configurations (barrier-phased, DRAM-bound — the Figure-19 scenarios)
//! and prints an FNV fingerprint of the results, so two binaries from
//! different PRs can be timed back-to-back on the same machine *and*
//! checked for bit-identical simulations (the PR-4 clock-drift protocol:
//! never compare wall-clocks across sessions, re-measure the old binary).
//!
//! ```sh
//! cargo run --release --example stall_ab
//! ```
//!
//! For binaries predating `StressKind` (PR 4 and earlier), build the same
//! configurations by hand from the spec constants in
//! `loco_workloads::StressKind::spec` and the overrides in
//! `loco::campaign::stall_stress_system` — the fingerprints must match.

use loco::campaign::stall_stress_system;
use loco::{ExperimentParams, RouterKind, StressKind};
use std::time::Instant;

fn main() {
    let params = ExperimentParams::quick().with_mem_ops(2_000);
    for kind in StressKind::ALL {
        let mut times = Vec::new();
        let mut fingerprint = String::new();
        let mut diag = String::new();
        for _ in 0..5 {
            let mut sys = stall_stress_system(&params, kind, RouterKind::Smart);
            let start = Instant::now();
            let r = sys.run(50_000_000);
            times.push(start.elapsed().as_secs_f64() * 1e3);
            let this = format!("{r:?}");
            assert!(
                fingerprint.is_empty() || fingerprint == this,
                "{}: nondeterministic results within one binary",
                kind.name()
            );
            fingerprint = this;
            diag = format!(
                "steps {} cycles {} busy-skipped {}",
                sys.steps_executed(),
                sys.cycle(),
                sys.skipped_while_busy()
            );
        }
        println!("  {diag}");
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let h = fingerprint.bytes().fold(0xcbf29ce484222325u64, |a, b| {
            (a ^ b as u64).wrapping_mul(0x100000001b3)
        });
        println!(
            "{}: median {:.1}ms (runs {:?}) results-fnv {h:#018x}",
            kind.name(),
            times[times.len() / 2],
            times.iter().map(|t| format!("{t:.1}")).collect::<Vec<_>>()
        );
    }
}
