//! Figure 13: LOCO run time under SMART, conventional and high-radix NoCs.

use criterion::{criterion_group, criterion_main, Criterion};
use loco::{ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_noc_runtime");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            runner.fig13_noc_runtime(&benchmarks_for(Scale::Quick))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
