//! The energy subsystem's contracts: the event-level [`EnergyBreakdown`] is
//! a pure integer fold over the simulation's counters, so it must be
//! (a) locked against accidental drift by a golden fingerprint,
//! (b) bit-identical between the event-driven scheduler and naive stepping,
//! (c) byte-identical across executor thread counts when assembled into the
//! campaign's energy figures (fig17/fig18), and
//! (d) reproduce the headline trend the model exists for: SMART spends far
//! less router-buffer energy than a conventional hop-by-hop NoC.

use loco::campaign::{CampaignPlan, Executor, FigureSpec};
use loco::{
    Benchmark, EnergyBreakdown, EnergyParams, ExperimentParams, Figure, OrganizationKind,
    RouterKind, SimulationBuilder,
};
use std::hash::{BuildHasher, Hash, Hasher};

fn builder(org: OrganizationKind) -> SimulationBuilder {
    // Mirrors tests/equivalence.rs: small mesh, enough memory ops to
    // exercise broadcasts, IVR migrations and DRAM traffic.
    SimulationBuilder::new()
        .mesh(4, 4)
        .cluster(2, 2)
        .organization(org)
        .benchmark(Benchmark::Barnes)
        .memory_ops_per_core(300)
        .seed(11)
}

fn breakdown(org: OrganizationKind) -> EnergyBreakdown {
    EnergyParams::default().breakdown(&builder(org).run())
}

/// An order-sensitive 64-bit fingerprint of a breakdown (all-integer fields,
/// so this is exact).
fn fingerprint(b: &EnergyBreakdown) -> u64 {
    let mut h = loco::FxBuildHasher::default().build_hasher();
    format!("{b:?}").hash(&mut h);
    h.finish()
}

#[test]
fn golden_energy_fingerprint() {
    // Locked in when the energy subsystem landed. The breakdown is a pure
    // function of the seed, the default EnergyParams and the event
    // counters; if an intentional counter or cost change invalidates it,
    // update the constant and call the change out in the PR.
    let b = breakdown(OrganizationKind::LocoCcVmsIvr);
    assert!(b.instructions > 0 && b.runtime_cycles > 0);
    assert_eq!(
        fingerprint(&b),
        0x67e8_8553_93d8_984c,
        "fingerprint {:#x}",
        fingerprint(&b)
    );
}

#[test]
fn energy_is_identical_between_run_and_run_naive() {
    let params = EnergyParams::default();
    for org in [
        OrganizationKind::Shared,
        OrganizationKind::LocoCcVmsIvr,
    ] {
        let b = builder(org);
        let event = params.breakdown(&b.build().run(8_000_000));
        let naive = params.breakdown(&b.build().run_naive(8_000_000));
        // EnergyBreakdown is integer-only (`Eq`): this comparison is exact.
        assert_eq!(event, naive, "{org:?}: energy diverged across run modes");
        assert!(event.total_fj() > 0);
    }
}

#[test]
fn energy_figures_are_thread_count_invariant() {
    let params = ExperimentParams::quick().with_mem_ops(120);
    let specs = [
        FigureSpec::Fig17Energy {
            benchmarks: vec![Benchmark::Lu, Benchmark::Barnes],
        },
        FigureSpec::Fig18Edp {
            benchmarks: vec![Benchmark::Lu],
            shapes: vec![loco::ClusterShape::new(2, 2), loco::ClusterShape::new(4, 1)],
        },
    ];
    let mut plan = CampaignPlan::new();
    for spec in &specs {
        plan.add_figure(spec, &params);
    }
    let serial = Executor::new(1).execute(&params, &plan);
    let parallel = Executor::new(4).execute(&params, &plan);
    let energy = EnergyParams::default();
    for scenario in plan.scenarios() {
        assert_eq!(
            energy.breakdown(serial.expect(scenario)),
            energy.breakdown(parallel.expect(scenario)),
            "scenario {} energy diverged across worker counts",
            scenario.label()
        );
    }
    let assemble = |results: &loco::ResultSet| -> Vec<Figure> {
        specs
            .iter()
            .flat_map(|s| s.assemble(&params, results))
            .collect()
    };
    assert_eq!(assemble(&serial), assemble(&parallel));
}

#[test]
fn smart_spends_less_buffer_energy_than_conventional() {
    // The SSR diagnostics and the energy model must agree on SMART's whole
    // point: multi-hop bypass keeps flits out of router buffers. Same
    // traces, same organization, only the router changes.
    let energy = EnergyParams::default();
    let smart = builder(OrganizationKind::LocoCcVms).run();
    let conv = builder(OrganizationKind::LocoCcVms)
        .router(RouterKind::Conventional)
        .run();
    let smart_e = energy.network_energy(&smart.network);
    let conv_e = energy.network_energy(&conv.network);
    // On this small 4x4 mesh SMART-hops are short, so the gap is modest but
    // must be clearly there (the 8x8 paper mesh widens it).
    assert!(
        smart_e.buffer_fj < conv_e.buffer_fj * 4 / 5,
        "SMART buffers {} fJ vs conventional {} fJ",
        smart_e.buffer_fj,
        conv_e.buffer_fj
    );
    // SMART pays for it with SSR wire energy the conventional NoC does not
    // have; the bypass/stop split must show actual bypassing.
    assert!(smart_e.ssr_fj > 0);
    assert_eq!(conv_e.ssr_fj, 0);
    assert!(smart.network.fabric.bypass_hops > smart.network.fabric.premature_stops);
    assert_eq!(conv.network.fabric.bypass_hops, 0);
}

#[test]
fn overriding_energy_params_scales_the_breakdown() {
    let results = builder(OrganizationKind::Shared).run();
    let base = EnergyParams::default().breakdown(&results);
    let mut doubled_dram = EnergyParams::default();
    doubled_dram.dram_access_fj *= 2;
    let b = doubled_dram.breakdown(&results);
    assert_eq!(b.dram_fj, base.dram_fj * 2);
    assert_eq!(b.network, base.network, "other components unaffected");
    assert_eq!(b.cache, base.cache);
}
