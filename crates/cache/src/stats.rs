//! Cache-hierarchy statistics: the raw counters from which every figure of
//! the paper's evaluation is derived.


/// Counters collected across the L1s, home L2s, directory and memory
/// controllers of one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Instructions executed (filled in by the core models).
    pub instructions: u64,
    /// L1 data accesses.
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses (requests sent to a home L2).
    pub l1_misses: u64,
    /// Requests processed by home L2 slices.
    pub l2_accesses: u64,
    /// Requests that found the line resident at the home L2.
    pub l2_hits: u64,
    /// Requests that missed at the home L2 and triggered a global search or
    /// memory fetch.
    pub l2_misses: u64,
    /// Sum of L1-issue→L1-fill latencies for requests satisfied at the home
    /// L2 (the paper's "L2 hit latency").
    pub l2_hit_latency_sum: u64,
    /// Number of samples in `l2_hit_latency_sum`.
    pub l2_hit_latency_count: u64,
    /// Sum of home-L2-miss→data-arrival latencies for lines found on chip in
    /// another cluster/tile (the paper's "on-chip data search delay").
    pub search_delay_sum: u64,
    /// Number of samples in `search_delay_sum`.
    pub search_delay_count: u64,
    /// DRAM fetches.
    pub offchip_fetches: u64,
    /// DRAM writebacks.
    pub offchip_writebacks: u64,
    /// Invalidation messages sent to L1s or L2s.
    pub invalidations: u64,
    /// IVR migration messages sent.
    pub ivr_migrations: u64,
    /// IVR migrations accepted by the receiving home node.
    pub ivr_accepted: u64,
    /// IVR migrations denied (older than the local victim) and re-steered.
    pub ivr_denied: u64,
    /// IVR chains that hit the hop threshold and were written back.
    pub ivr_writebacks: u64,
    /// Read requests satisfied by a remote cluster/tile (on-chip sharing).
    pub remote_hits: u64,
    /// VMS broadcasts issued.
    pub broadcasts: u64,
    // --- Event counters for the energy model (`loco-energy`). These count
    // micro-architectural array/structure activations, not protocol
    // outcomes; each is multiplied by a per-event cost in `EnergyParams`.
    /// L1 tag-array probes (every core-side access and every invalidation).
    pub l1_tag_probes: u64,
    /// L1 data-array reads (load hits, dirty victim/invalidation read-outs).
    pub l1_data_reads: u64,
    /// L1 data-array writes (store hits and line fills).
    pub l1_data_writes: u64,
    /// L2 tag-array probes (requests, writebacks, broadcasts, IVR arrivals).
    pub l2_tag_probes: u64,
    /// L2 data-array reads (every data-bearing reply or writeback sourced
    /// from the array).
    pub l2_data_reads: u64,
    /// L2 data-array writes (line installs, L1 writeback deposits).
    pub l2_data_writes: u64,
    /// Global-directory lookups (gets, evictions, unblocks).
    pub dir_lookups: u64,
}

impl CacheStats {
    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.instructions += other.instructions;
        self.l1_accesses += other.l1_accesses;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_accesses += other.l2_accesses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.l2_hit_latency_sum += other.l2_hit_latency_sum;
        self.l2_hit_latency_count += other.l2_hit_latency_count;
        self.search_delay_sum += other.search_delay_sum;
        self.search_delay_count += other.search_delay_count;
        self.offchip_fetches += other.offchip_fetches;
        self.offchip_writebacks += other.offchip_writebacks;
        self.invalidations += other.invalidations;
        self.ivr_migrations += other.ivr_migrations;
        self.ivr_accepted += other.ivr_accepted;
        self.ivr_denied += other.ivr_denied;
        self.ivr_writebacks += other.ivr_writebacks;
        self.remote_hits += other.remote_hits;
        self.broadcasts += other.broadcasts;
        self.l1_tag_probes += other.l1_tag_probes;
        self.l1_data_reads += other.l1_data_reads;
        self.l1_data_writes += other.l1_data_writes;
        self.l2_tag_probes += other.l2_tag_probes;
        self.l2_data_reads += other.l2_data_reads;
        self.l2_data_writes += other.l2_data_writes;
        self.dir_lookups += other.dir_lookups;
    }

    /// L2 misses per thousand instructions (Figure 8).
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Average L1-issue→fill latency of requests satisfied at the home L2
    /// (Figure 7 reports this relative to a private cache).
    pub fn avg_l2_hit_latency(&self) -> f64 {
        if self.l2_hit_latency_count == 0 {
            0.0
        } else {
            self.l2_hit_latency_sum as f64 / self.l2_hit_latency_count as f64
        }
    }

    /// Average delay to locate and fetch data cached on chip in another
    /// cluster (Figure 9).
    pub fn avg_search_delay(&self) -> f64 {
        if self.search_delay_count == 0 {
            0.0
        } else {
            self.search_delay_sum as f64 / self.search_delay_count as f64
        }
    }

    /// Total off-chip accesses: fetches plus writebacks (Figure 10).
    pub fn offchip_accesses(&self) -> u64 {
        self.offchip_fetches + self.offchip_writebacks
    }

    /// L1 hit rate.
    pub fn l1_hit_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_hits as f64 / self.l1_accesses as f64
        }
    }

    /// Home-L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_hits as f64 / self.l2_accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CacheStats {
            instructions: 10_000,
            l2_misses: 50,
            l2_hit_latency_sum: 900,
            l2_hit_latency_count: 100,
            search_delay_sum: 4000,
            search_delay_count: 50,
            offchip_fetches: 30,
            offchip_writebacks: 10,
            l1_accesses: 1000,
            l1_hits: 900,
            ..CacheStats::default()
        };
        assert_eq!(s.l2_mpki(), 5.0);
        assert_eq!(s.avg_l2_hit_latency(), 9.0);
        assert_eq!(s.avg_search_delay(), 80.0);
        assert_eq!(s.offchip_accesses(), 40);
        assert!((s.l1_hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = CacheStats::default();
        assert_eq!(s.l2_mpki(), 0.0);
        assert_eq!(s.avg_l2_hit_latency(), 0.0);
        assert_eq!(s.avg_search_delay(), 0.0);
        assert_eq!(s.l1_hit_rate(), 0.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = CacheStats {
            instructions: 1,
            l1_accesses: 2,
            offchip_fetches: 3,
            broadcasts: 4,
            l1_tag_probes: 5,
            l1_data_reads: 6,
            l1_data_writes: 7,
            l2_tag_probes: 8,
            l2_data_reads: 9,
            l2_data_writes: 10,
            dir_lookups: 11,
            ..CacheStats::default()
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.instructions, 2);
        assert_eq!(a.l1_accesses, 4);
        assert_eq!(a.offchip_fetches, 6);
        assert_eq!(a.broadcasts, 8);
        assert_eq!(a.l1_tag_probes, 10);
        assert_eq!(a.l1_data_reads, 12);
        assert_eq!(a.l1_data_writes, 14);
        assert_eq!(a.l2_tag_probes, 16);
        assert_eq!(a.l2_data_reads, 18);
        assert_eq!(a.l2_data_writes, 20);
        assert_eq!(a.dir_lookups, 22);
    }
}
