//! Ablation studies of LOCO's design parameters beyond the paper's figures:
//!
//! * `HPCmax` (how many hops a SMART path covers per cycle),
//! * the IVR migration-chain threshold (the paper fixes it at 4),
//! * the SMART vs conventional gap as cluster size grows.
//!
//! These correspond to the "design choices" called out in DESIGN.md §7.

use loco_bench::timing::{BenchmarkId, Criterion};
use loco_bench::{bench_group, bench_main};
use loco::{Benchmark, OrganizationKind, SimulationBuilder};

fn loco_run(hpc_max: u16, ivr_threshold: u8, mem_ops: u64) -> u64 {
    let mut cfg = SimulationBuilder::new()
        .mesh(4, 4)
        .cluster(2, 2)
        .organization(OrganizationKind::LocoCcVmsIvr)
        .benchmark(Benchmark::Radix)
        .memory_ops_per_core(mem_ops)
        .system_config();
    cfg.hpc_max = hpc_max;
    cfg.l2.ivr_threshold = ivr_threshold;
    let spec = Benchmark::Radix.spec();
    let traces = loco::TraceGenerator::new(42).generate(&spec, cfg.num_cores(), mem_ops);
    let mut sys = loco::CmpSystem::new(cfg, traces);
    sys.run(10_000_000).runtime_cycles
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hpcmax");
    group.sample_size(10);
    for hpc in [1u16, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(hpc), &hpc, |b, &hpc| {
            b.iter(|| loco_run(hpc, 4, 150))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_ivr_threshold");
    group.sample_size(10);
    for threshold in [1u8, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threshold), &threshold, |b, &t| {
            b.iter(|| loco_run(4, t, 150))
        });
    }
    group.finish();
}

bench_group!(benches, bench);
bench_main!(benches);
