//! Network messages, virtual networks and delivery records.

use crate::topology::NodeId;

/// The five virtual networks (message classes) of Table 1.
///
/// Separating message classes onto disjoint virtual networks is the standard
/// protocol-level deadlock-avoidance technique used by GEMS/GARNET and
/// assumed by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum VirtualNetwork {
    /// L1→L2 and L2→directory/memory requests.
    Request,
    /// Forwarded requests / invalidations (directory→sharer, home→home).
    Forward,
    /// Data and acknowledgement responses.
    Response,
    /// Writebacks and victim migrations (IVR).
    Writeback,
    /// VMS broadcasts (global search / global invalidation).
    Broadcast,
}

impl VirtualNetwork {
    /// All virtual networks, in a fixed order.
    pub const ALL: [VirtualNetwork; 5] = [
        VirtualNetwork::Request,
        VirtualNetwork::Forward,
        VirtualNetwork::Response,
        VirtualNetwork::Writeback,
        VirtualNetwork::Broadcast,
    ];

    /// Stable index for array-indexed per-VN state.
    pub fn index(self) -> usize {
        match self {
            VirtualNetwork::Request => 0,
            VirtualNetwork::Forward => 1,
            VirtualNetwork::Response => 2,
            VirtualNetwork::Writeback => 3,
            VirtualNetwork::Broadcast => 4,
        }
    }
}

/// Identifier of a multicast group registered with
/// [`crate::Network::register_multicast_group`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MulticastGroupId(pub u32);

/// Where a message is going.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Destination {
    /// A single node.
    Unicast(NodeId),
    /// Every member of a registered multicast group except the source,
    /// delivered via an XY-tree over the group members (the VMS broadcast of
    /// Section 3.2 of the paper).
    Multicast(MulticastGroupId),
}

/// A message handed to the network for delivery.
///
/// The payload type `P` is opaque to the network; the cache/coherence layer
/// instantiates it with its protocol message type. Multicast delivery clones
/// the payload for every receiver, hence the `Clone` bound on most network
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetMessage<P> {
    /// Injecting node.
    pub src: NodeId,
    /// Destination (unicast or registered multicast group).
    pub dest: Destination,
    /// Virtual network this message travels on.
    pub vn: VirtualNetwork,
    /// Message size in bytes (header + optional data payload); determines the
    /// number of flits.
    pub size_bytes: u32,
    /// Opaque payload forwarded to the receiver.
    pub payload: P,
}

impl<P> NetMessage<P> {
    /// Convenience constructor for a unicast message.
    pub fn unicast(src: NodeId, dest: NodeId, vn: VirtualNetwork, size_bytes: u32, payload: P) -> Self {
        NetMessage {
            src,
            dest: Destination::Unicast(dest),
            vn,
            size_bytes,
            payload,
        }
    }

    /// Convenience constructor for a multicast message over a registered
    /// group.
    pub fn multicast(
        src: NodeId,
        group: MulticastGroupId,
        vn: VirtualNetwork,
        size_bytes: u32,
        payload: P,
    ) -> Self {
        NetMessage {
            src,
            dest: Destination::Multicast(group),
            vn,
            size_bytes,
            payload,
        }
    }
}

/// A message delivered at its destination NIC, with timing information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered<P> {
    /// The original message (for multicasts, `msg.dest` still names the
    /// group; `receiver` identifies which member this copy reached).
    pub msg: NetMessage<P>,
    /// Node at which this copy was ejected.
    pub receiver: NodeId,
    /// Cycle at which the message was injected.
    pub injected_at: u64,
    /// Cycle at which the message was ejected.
    pub ejected_at: u64,
    /// End-to-end network latency in cycles (`ejected_at - injected_at`).
    pub latency: u64,
    /// Number of routers at which the packet was buffered (excluding the
    /// source), i.e. the number of "stops"; for SMART this counts premature
    /// stops plus intended SMART-hop boundaries.
    pub stops: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vn_indices_are_unique_and_dense() {
        let mut seen = [false; 5];
        for vn in VirtualNetwork::ALL {
            assert!(!seen[vn.index()]);
            seen[vn.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn constructors_fill_fields() {
        let m = NetMessage::unicast(NodeId(1), NodeId(2), VirtualNetwork::Request, 8, 42u32);
        assert_eq!(m.dest, Destination::Unicast(NodeId(2)));
        assert_eq!(m.payload, 42);
        let b = NetMessage::multicast(
            NodeId(1),
            MulticastGroupId(7),
            VirtualNetwork::Broadcast,
            8,
            "x",
        );
        assert_eq!(b.dest, Destination::Multicast(MulticastGroupId(7)));
    }
}
