//! Figure 10: off-chip memory accesses with and without inter-cluster
//! victim replacement, normalized to the shared cache.

use criterion::{criterion_group, criterion_main, Criterion};
use loco::{ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_offchip");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            runner.fig10_offchip(&benchmarks_for(Scale::Quick))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
