//! The target-system configuration of Table 1 and its builders.

use loco_cache::{
    CacheGeometry, ClusterShape, DirectoryConfig, L2Config, MemoryConfig, MemoryMap, Organization,
    OrganizationKind,
};
use loco_noc::{Mesh, NocConfig, RouterKind};

/// Complete configuration of a simulated CMP.
///
/// The `asplos_64` / `asplos_256` constructors reproduce Table 1 of the
/// paper: 2-way in-order cores, 16 KB 4-way L1s (1 cycle), 64 KB 8-way
/// inclusive L2 slices (4 cycles), MSI/MOESI coherence, an 8x8 or 16x16 mesh
/// with 5 VNs x 4 VCs and 16-byte links, `HPCmax` = 4, a 10-cycle directory
/// and four 200-cycle memory controllers on the chip edges.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemConfig {
    /// Mesh width in tiles.
    pub mesh_width: u16,
    /// Mesh height in tiles.
    pub mesh_height: u16,
    /// Cache organization under test.
    pub organization: OrganizationKind,
    /// LOCO cluster shape (ignored for the private/shared baselines).
    pub cluster: ClusterShape,
    /// Router micro-architecture of the NoC.
    pub router: RouterKind,
    /// Maximum hops per cycle (SMART) / express-link span (high-radix).
    pub hpc_max: u16,
    /// L1 geometry.
    pub l1: CacheGeometry,
    /// L2 slice configuration.
    #[cfg_attr(feature = "serde", serde(skip, default = "default_l2"))]
    pub l2: L2Config,
    /// Global directory configuration.
    #[cfg_attr(feature = "serde", serde(skip, default = "default_dir"))]
    pub dir: DirectoryConfig,
    /// Memory-controller configuration.
    #[cfg_attr(feature = "serde", serde(skip, default = "default_mem"))]
    pub mem: MemoryConfig,
    /// Model barrier synchronization (full-system replay mode).
    pub full_system: bool,
}

#[cfg(feature = "serde")]
fn default_l2() -> L2Config {
    L2Config::default()
}
#[cfg(feature = "serde")]
fn default_dir() -> DirectoryConfig {
    DirectoryConfig::default()
}
#[cfg(feature = "serde")]
fn default_mem() -> MemoryConfig {
    MemoryConfig::default()
}

impl SystemConfig {
    /// The paper's 64-core CMP (8x8 mesh, SMART NoC, 4x4 clusters).
    pub fn asplos_64(organization: OrganizationKind) -> Self {
        SystemConfig {
            mesh_width: 8,
            mesh_height: 8,
            organization,
            cluster: ClusterShape::new(4, 4),
            router: RouterKind::Smart,
            hpc_max: 4,
            l1: CacheGeometry::asplos_l1(),
            l2: L2Config::default(),
            dir: DirectoryConfig::default(),
            mem: MemoryConfig::default(),
            full_system: false,
        }
    }

    /// The paper's 256-core CMP (16x16 mesh, SMART NoC, 4x4 clusters).
    pub fn asplos_256(organization: OrganizationKind) -> Self {
        SystemConfig {
            mesh_width: 16,
            mesh_height: 16,
            ..Self::asplos_64(organization)
        }
    }

    /// Replaces the router micro-architecture (Figures 12 and 13 compare
    /// SMART against conventional and high-radix NoCs).
    pub fn with_router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// Replaces the LOCO cluster shape (Figure 14 compares 4x1, 8x1, 4x4).
    pub fn with_cluster(mut self, cluster: ClusterShape) -> Self {
        self.cluster = cluster;
        self
    }

    /// Enables the synchronization-aware full-system replay mode
    /// (Figure 16).
    pub fn with_full_system(mut self, enabled: bool) -> Self {
        self.full_system = enabled;
        self
    }

    /// Number of cores / tiles.
    pub fn num_cores(&self) -> usize {
        self.mesh_width as usize * self.mesh_height as usize
    }

    /// The mesh.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(self.mesh_width, self.mesh_height)
    }

    /// The cache organization object for this configuration.
    pub fn organization(&self) -> Organization {
        match self.organization {
            OrganizationKind::Private => Organization::private(self.mesh()),
            OrganizationKind::Shared => Organization::shared(self.mesh()),
            kind => Organization::loco(self.mesh(), kind, self.cluster),
        }
    }

    /// The memory-controller placement.
    pub fn memory_map(&self) -> MemoryMap {
        MemoryMap::asplos(self.mesh())
    }

    /// The NoC configuration.
    pub fn noc_config(&self) -> NocConfig {
        match self.router {
            RouterKind::Smart => NocConfig::smart_mesh(self.mesh_width, self.mesh_height, self.hpc_max),
            RouterKind::Conventional => NocConfig::conventional_mesh(self.mesh_width, self.mesh_height),
            RouterKind::HighRadix => {
                NocConfig::highradix_mesh(self.mesh_width, self.mesh_height, self.hpc_max)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_64_core_configuration() {
        let c = SystemConfig::asplos_64(OrganizationKind::LocoCcVms);
        assert_eq!(c.num_cores(), 64);
        assert_eq!(c.l1.size_bytes, 16 * 1024);
        assert_eq!(c.l1.ways, 4);
        assert_eq!(c.l1.latency, 1);
        assert_eq!(c.l2.geometry.size_bytes, 64 * 1024);
        assert_eq!(c.l2.geometry.ways, 8);
        assert_eq!(c.l2.geometry.latency, 4);
        assert_eq!(c.l1.line_bytes, 32);
        assert_eq!(c.dir.latency, 10);
        assert_eq!(c.mem.latency, 200);
        assert_eq!(c.hpc_max, 4);
        assert_eq!(c.memory_map().controllers().len(), 4);
        let noc = c.noc_config();
        assert_eq!(noc.virtual_networks, 5);
        assert_eq!(noc.vcs_per_vn, 4);
        assert_eq!(noc.link_bytes, 16);
    }

    #[test]
    fn table1_256_core_configuration() {
        let c = SystemConfig::asplos_256(OrganizationKind::Shared);
        assert_eq!(c.num_cores(), 256);
        assert_eq!(c.mesh().width(), 16);
    }

    #[test]
    fn builders_adjust_router_and_cluster() {
        let c = SystemConfig::asplos_64(OrganizationKind::LocoCcVmsIvr)
            .with_router(RouterKind::HighRadix)
            .with_cluster(ClusterShape::new(8, 1))
            .with_full_system(true);
        assert_eq!(c.router, RouterKind::HighRadix);
        assert_eq!(c.cluster, ClusterShape::new(8, 1));
        assert!(c.full_system);
        assert_eq!(c.organization().num_clusters(), 8);
    }

    #[test]
    fn organization_construction_respects_kind() {
        assert_eq!(
            SystemConfig::asplos_64(OrganizationKind::Private)
                .organization()
                .num_clusters(),
            64
        );
        assert_eq!(
            SystemConfig::asplos_64(OrganizationKind::Shared)
                .organization()
                .num_clusters(),
            1
        );
        assert_eq!(
            SystemConfig::asplos_64(OrganizationKind::LocoCc)
                .organization()
                .num_clusters(),
            4
        );
    }
}
