#!/usr/bin/env sh
# One-shot verification gate for this workspace, exactly as the offline
# environment allows (no network, empty registry cache). Every PR must keep
# this green.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo test --doc"
cargo test --doc -q --offline

echo "==> cargo build --workspace --all-targets (benches, examples, reproduce)"
cargo build --workspace --all-targets --offline

echo "==> equivalence suite (event-driven == naive stepping, bit for bit)"
cargo test -q --offline --test equivalence

echo "==> randomized equivalence stress suite (pinned seed, 250 short random configs)"
LOCO_STRESS_SEED=538510120 LOCO_STRESS_CONFIGS=250 \
    cargo test -q --offline --test equivalence randomized_short_configs

echo "==> energy suite (golden breakdown fingerprint, run/run_naive and thread invariance)"
cargo test -q --offline --test energy

echo "==> parallel campaign smoke (reproduce: 4-thread output == 1-thread output, byte for byte)"
cargo build --release --offline -q -p loco-bench --bin reproduce
./target/release/reproduce --params quick --threads 4 --json target/campaign_t4.json > target/campaign_t4.txt 2>/dev/null
./target/release/reproduce --params quick --threads 1 --json target/campaign_t1.json > target/campaign_t1.txt 2>/dev/null
cmp target/campaign_t1.txt target/campaign_t4.txt
cmp target/campaign_t1.json target/campaign_t4.json

echo "==> energy-figure smoke (fig17/fig18 on quick params, 1-vs-4-thread byte identity)"
./target/release/reproduce --params quick --figures fig17,fig18 --threads 4 --json target/energy_t4.json > target/energy_t4.txt 2>/dev/null
./target/release/reproduce --params quick --figures fig17,fig18 --threads 1 --json target/energy_t1.json > target/energy_t1.txt 2>/dev/null
cmp target/energy_t1.txt target/energy_t4.txt
cmp target/energy_t1.json target/energy_t4.json
./target/release/reproduce --list-figures > target/figures.txt
grep -q "^fig17" target/figures.txt || { echo "fig17 missing from --list-figures"; exit 1; }
grep -q "^fig18" target/figures.txt || { echo "fig18 missing from --list-figures"; exit 1; }
grep -q "^fig19" target/figures.txt || { echo "fig19 missing from --list-figures"; exit 1; }

echo "==> stall-heavy figure smoke (fig19 stress scenarios, 1-vs-2-thread byte identity)"
./target/release/reproduce --params quick --figures fig19 --threads 2 --json target/stall_t2.json > target/stall_t2.txt 2>/dev/null
./target/release/reproduce --params quick --figures fig19 --threads 1 --json target/stall_t1.json > target/stall_t1.txt 2>/dev/null
cmp target/stall_t1.txt target/stall_t2.txt
cmp target/stall_t1.json target/stall_t2.json

echo "==> CLI rejects senseless --threads values"
if ./target/release/reproduce --params quick --threads 1000000 >/dev/null 2>target/threads_err.txt; then
    echo "reproduce accepted --threads 1000000"; exit 1
fi
grep -q "makes no sense" target/threads_err.txt || { echo "missing --threads error message"; exit 1; }

echo "==> bench smoke (--quick campaign, timings to target/)"
sh scripts/bench.sh --quick --samples 1 --out target/BENCH_smoke.json

echo "==> verify OK"
