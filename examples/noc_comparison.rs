//! NoC comparison (the scenario behind Figures 12 and 13): the same LOCO
//! cache organization is run over the SMART NoC, a conventional
//! 2-cycle-per-hop NoC and high-radix (Flattened-Butterfly-like) routers,
//! showing that LOCO's performance is hinged on SMART's single-cycle
//! multi-hop traversals.
//!
//! ```text
//! cargo run --release -p loco --example noc_comparison
//! ```

use loco::{Benchmark, OrganizationKind, RouterKind, SimulationBuilder};

fn main() {
    let routers = [
        RouterKind::Smart,
        RouterKind::Conventional,
        RouterKind::HighRadix,
    ];
    let benchmark = Benchmark::Barnes;
    println!(
        "LOCO (CC+VMS+IVR) under three NoCs — {}, 64 cores\n",
        benchmark.name()
    );
    println!(
        "{:<22} {:>14} {:>16} {:>14}",
        "NoC", "hit lat (cyc)", "search delay", "runtime (cyc)"
    );
    let mut smart_runtime = None;
    for router in routers {
        let r = SimulationBuilder::new()
            .benchmark(benchmark)
            .organization(OrganizationKind::LocoCcVmsIvr)
            .router(router)
            .memory_ops_per_core(800)
            .run();
        assert!(r.completed);
        println!(
            "{:<22} {:>14.2} {:>16.2} {:>14}",
            router.label(),
            r.avg_l2_hit_latency,
            r.avg_search_delay,
            r.runtime_cycles
        );
        if router == RouterKind::Smart {
            smart_runtime = Some(r.runtime_cycles);
        } else if let Some(s) = smart_runtime {
            println!(
                "{:<22} {:>14} {:>16} {:>13.1}%",
                "  vs SMART", "", "",
                100.0 * (r.runtime_cycles as f64 / s as f64 - 1.0)
            );
        }
    }
    println!("\nWithout SMART's virtual single-cycle multi-hop paths, every hop");
    println!("(conventional) or every stop (high-radix 4-stage pipeline) adds");
    println!("latency to intra-cluster hits and VMS broadcasts alike.");
}
