//! Figure 16: full-system (synchronization-aware) simulation of LOCO.

use criterion::{criterion_group, criterion_main, Criterion};
use loco::{ExperimentParams, Runner};
use loco_bench::{fullsystem_benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_fullsystem");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            let benches = fullsystem_benchmarks_for(Scale::Quick);
            let mpki = runner.fig16_mpki(&benches);
            let runtime = runner.fig16_runtime(&benches);
            (mpki, runtime)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
