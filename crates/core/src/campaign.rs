//! The campaign engine: **plan → execute → assemble**.
//!
//! The paper's evaluation is one large sweep of independent simulations
//! (5 cache organizations × 3 NoCs × benchmarks × cluster shapes across
//! Figures 6–16). This module decouples the three phases that the old
//! monolithic `Runner` fused together:
//!
//! 1. **Plan** — every figure is described by a [`FigureSpec`] whose
//!    [`FigureSpec::enumerate`] pass is *pure*: it returns the [`Scenario`]s
//!    the figure needs, without running anything. Scenarios from several
//!    figures are deduplicated into one [`CampaignPlan`] (composing fig06
//!    and fig11 over the same matrix enumerates each shared scenario once).
//! 2. **Execute** — an [`Executor`] shards the plan across
//!    `std::thread::scope` workers pulling jobs from an atomic index. Each
//!    worker constructs its own `TraceGenerator` and `CmpSystem` (every
//!    scenario is an independent, fully deterministic simulation), and the
//!    results are merged into a [`ResultSet`] — a `Scenario`-keyed map of
//!    `Arc<SimResults>` — **in plan order**, so the result set is identical
//!    whatever the worker count or completion order.
//! 3. **Assemble** — [`FigureSpec::assemble`] is pure again: it reads a
//!    completed [`ResultSet`] and builds the [`Figure`]s. Figures assembled
//!    from an 8-thread execution are byte-identical to a 1-thread one
//!    (locked in by `tests/campaign.rs` and the `scripts/verify.sh` smoke).
//!
//! The legacy [`crate::Runner`] survives as a thin shim over these layers:
//! its memoization cache *is* a [`ResultSet`], and its `figNN_*` methods are
//! `enumerate → run-missing → assemble`.
//!
//! # `Send` invariant
//!
//! The executor relies on [`CmpSystem`], `TraceGenerator` and
//! [`SimResults`] being [`Send`] — they are plain owned data (no `Rc`, no
//! `RefCell`, no raw pointers anywhere in the workspace), and the
//! `assert_send` checks below turn any future regression into a compile
//! error. Anyone adding interior mutability or shared handles to the
//! simulator must keep these types `Send` (or consciously remove the
//! parallel executor).

use crate::experiments::ExperimentParams;
use crate::report::{Figure, Series};
use loco_cache::{ClusterShape, OrganizationKind};
use loco_energy::{EnergyBreakdown, EnergyParams};
use loco_noc::{FxHashMap, FxHashSet, RouterKind};
use loco_sim::{CmpSystem, SimResults, SystemConfig};
use loco_workloads::{Benchmark, MultiProgramWorkload, StressKind, TraceGenerator};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

// Compile-time lock-in of the `Send` bounds the executor needs (see the
// module docs). These calls are never executed; they fail to *compile* if a
// bound regresses.
fn assert_send<T: Send>() {}
#[allow(dead_code)]
fn send_invariants() {
    assert_send::<CmpSystem>();
    assert_send::<SimResults>();
    assert_send::<TraceGenerator>();
    assert_send::<Scenario>();
    assert_send::<ResultSet>();
}

/// One fully-specified simulation configuration — the unit of work of a
/// campaign and the key of a [`ResultSet`].
///
/// This is the public promotion of the old private `RunKey`: everything that
/// distinguishes one run from another at fixed [`ExperimentParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// A single-benchmark trace-driven (or full-system) run.
    Trace {
        /// The benchmark model to replay.
        benchmark: Benchmark,
        /// The cache organization.
        org: OrganizationKind,
        /// The NoC router micro-architecture.
        router: RouterKind,
        /// The LOCO cluster shape.
        cluster: ClusterShape,
        /// Whether the synchronization-aware full-system mode is on.
        full_system: bool,
    },
    /// A Table-2 multi-program consolidation workload (Figure 15). The
    /// cluster shape follows the paper (it matches the per-task thread
    /// count) and is derived from the workload, not stored here.
    MultiProgram {
        /// Index into Table 2 (0–9, `MultiProgramWorkload::table2_entry`).
        workload: usize,
        /// The cache organization.
        org: OrganizationKind,
    },
    /// A stall-heavy stress run (Figure 19): a small 4x4 mesh under full
    /// LOCO (CC+VMS), either barrier-phased (full-system replay, a barrier
    /// every few memory ops) or DRAM-bound (huge working set, the DRAM
    /// latency stretched to 800 cycles). These are ROADMAP's named blind
    /// spot — workloads whose run time is dominated by globally-quiet
    /// phases with stragglers still in the NoC, where the event-driven
    /// scheduler's fine-grained horizon pays off. The mesh and memory
    /// timing are fixed by the scenario (not by [`ExperimentParams`]) so
    /// the stress stays stall-shaped at every campaign scale.
    StallStress {
        /// Barrier-phased or DRAM-bound.
        kind: StressKind,
        /// The NoC router micro-architecture.
        router: RouterKind,
    },
}

impl Scenario {
    /// The figures' most common shape: SMART NoC, the campaign's default
    /// cluster, trace-driven.
    pub fn default_trace(
        params: &ExperimentParams,
        benchmark: Benchmark,
        org: OrganizationKind,
    ) -> Self {
        Scenario::Trace {
            benchmark,
            org,
            router: RouterKind::Smart,
            cluster: params.cluster,
            full_system: false,
        }
    }

    /// A short human-readable label (diagnostics, panic messages).
    pub fn label(&self) -> String {
        match self {
            Scenario::Trace {
                benchmark,
                org,
                router,
                cluster,
                full_system,
            } => format!(
                "{}/{}/{}/{}x{}{}",
                benchmark.name(),
                org.label(),
                router.label(),
                cluster.w,
                cluster.h,
                if *full_system { "/full-system" } else { "" }
            ),
            Scenario::MultiProgram { workload, org } => {
                format!("W{}/{}", workload, org.label())
            }
            Scenario::StallStress { kind, router } => {
                format!("stress-{}/{}", kind.name(), router.label())
            }
        }
    }
}

/// Runs one [`Scenario`] from scratch: generates the traces, builds the
/// system and simulates. Pure with respect to its inputs — the same
/// `(params, scenario)` pair always produces bit-identical [`SimResults`]
/// (the foundation of the thread-count invariance guarantee).
pub fn run_scenario(params: &ExperimentParams, scenario: Scenario) -> SimResults {
    match scenario {
        Scenario::Trace {
            benchmark,
            org,
            router,
            cluster,
            full_system,
        } => {
            let spec = params.scaled_spec(benchmark);
            let traces = TraceGenerator::new(params.seed)
                .with_barriers(full_system)
                .generate(&spec, params.num_cores(), params.mem_ops_per_core);
            let cfg = params.system(org, router, cluster, full_system);
            let mut sys = CmpSystem::new(cfg, traces);
            sys.run(params.max_cycles)
        }
        Scenario::MultiProgram { workload, org } => {
            run_multiprogram_workload(params, &MultiProgramWorkload::table2_entry(workload), org)
        }
        Scenario::StallStress { kind, router } => run_stall_stress(params, kind, router),
    }
}

/// Builds (without running) the system of one stall-heavy stress scenario:
/// a fixed 16-core (4x4) mesh with 2x2 LOCO clusters under CC+VMS, working
/// set and caches scaled together exactly as trace scenarios are.
/// DRAM-bound runs stretch the memory latency to 800 cycles (min gap 8) so
/// nearly the whole run is exposed off-chip stall; barrier-phased runs
/// enable the full-system replay mode. Exposed so the bench harness and the
/// equivalence suite can drive the exact campaign configuration manually
/// (e.g. to read the scheduler's skip diagnostics or to time `run` against
/// `run_naive`).
pub fn stall_stress_system(
    params: &ExperimentParams,
    kind: StressKind,
    router: RouterKind,
) -> CmpSystem {
    let scale = params.working_set_scale.max(1);
    let spec = kind.spec().scaled_down(scale);
    let full_system = kind.full_system();
    let mut cfg = SystemConfig::asplos_64(OrganizationKind::LocoCcVms)
        .with_router(router)
        .with_cluster(ClusterShape::new(2, 2))
        .with_full_system(full_system);
    cfg.mesh_width = 4;
    cfg.mesh_height = 4;
    cfg.l1.size_bytes = (cfg.l1.size_bytes / scale).max(1024);
    cfg.l2.geometry.size_bytes = (cfg.l2.geometry.size_bytes / scale).max(2048);
    if kind == StressKind::DramBound {
        cfg.mem.latency = 800;
        cfg.mem.min_gap = 8;
    }
    let traces = TraceGenerator::new(params.seed)
        .with_barriers(full_system)
        .generate(&spec, cfg.num_cores(), params.mem_ops_per_core);
    CmpSystem::new(cfg, traces)
}

/// Runs one stall-heavy stress scenario (see [`stall_stress_system`]).
pub fn run_stall_stress(params: &ExperimentParams, kind: StressKind, router: RouterKind) -> SimResults {
    stall_stress_system(params, kind, router).run(params.max_cycles)
}

/// Runs one multi-program workload under one organization. The cluster size
/// follows the paper: it matches the per-task thread count (4x1, 8x1 or
/// 4x4); below 64 cores (the `quick()` mesh) the campaign's default cluster
/// is used and the workload is truncated to fit.
pub fn run_multiprogram_workload(
    params: &ExperimentParams,
    workload: &MultiProgramWorkload,
    org: OrganizationKind,
) -> SimResults {
    let threads = workload.threads_per_task();
    let cluster = if params.num_cores() < 64 {
        params.cluster
    } else {
        match threads {
            4 => ClusterShape::new(4, 1),
            8 => ClusterShape::new(8, 1),
            _ => ClusterShape::new(4, 4),
        }
    };
    let mut traces = workload.generate_traces_scaled(
        params.mem_ops_per_core,
        params.seed,
        params.working_set_scale.max(1),
    );
    let mut groups: Vec<usize> = Vec::new();
    for a in workload.assign_cores() {
        for _ in &a.cores {
            groups.push(a.task_id);
        }
    }
    // The quick() configuration has fewer cores than the 64-core workload
    // definition: truncate to fit.
    if params.num_cores() < traces.len() {
        traces.truncate(params.num_cores());
        groups.truncate(params.num_cores());
    }
    let cfg = params.system(org, RouterKind::Smart, cluster, false);
    let mut sys = CmpSystem::with_groups(cfg, traces, groups);
    sys.run(params.max_cycles)
}

/// A deduplicated, ordered set of [`Scenario`]s — the output of the plan
/// phase and the input of the execute phase.
///
/// Scenarios keep their first-seen order, so a plan composed from the same
/// figures in the same order is always identical (and so is everything
/// derived from it downstream).
#[derive(Debug, Default, Clone)]
pub struct CampaignPlan {
    scenarios: Vec<Scenario>,
    seen: FxHashSet<Scenario>,
}

impl CampaignPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one scenario; returns `true` if it was not already planned.
    pub fn add(&mut self, scenario: Scenario) -> bool {
        if self.seen.insert(scenario) {
            self.scenarios.push(scenario);
            true
        } else {
            false
        }
    }

    /// Adds every scenario of an iterator (duplicates are dropped).
    pub fn extend(&mut self, scenarios: impl IntoIterator<Item = Scenario>) {
        for s in scenarios {
            self.add(s);
        }
    }

    /// Adds everything a figure needs.
    pub fn add_figure(&mut self, spec: &FigureSpec, params: &ExperimentParams) {
        self.extend(spec.enumerate(params));
    }

    /// The planned scenarios, in first-seen order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of distinct scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

/// Completed simulation results, keyed by [`Scenario`].
///
/// Results are shared via [`Arc`], so memoized reuse (the `Runner` shim, a
/// figure reading the same baseline run eight times) never deep-clones a
/// `SimResults` again.
#[derive(Debug, Default, Clone)]
pub struct ResultSet {
    map: FxHashMap<Scenario, Arc<SimResults>>,
}

impl ResultSet {
    /// An empty result set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) one result.
    pub fn insert(&mut self, scenario: Scenario, result: Arc<SimResults>) {
        self.map.insert(scenario, result);
    }

    /// The result of one scenario, if present.
    pub fn get(&self, scenario: &Scenario) -> Option<&SimResults> {
        self.map.get(scenario).map(Arc::as_ref)
    }

    /// The shared handle of one scenario's result, if present.
    pub fn get_arc(&self, scenario: &Scenario) -> Option<&Arc<SimResults>> {
        self.map.get(scenario)
    }

    /// The result of one scenario.
    ///
    /// # Panics
    ///
    /// Panics (with the scenario's label) if the scenario was never
    /// executed — i.e. the plan the caller executed did not cover the
    /// figure being assembled.
    pub fn expect(&self, scenario: &Scenario) -> &SimResults {
        self.get(scenario)
            .unwrap_or_else(|| panic!("no result for scenario {} — was it planned?", scenario.label()))
    }

    /// Number of completed scenarios.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no results are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(scenario, result)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Scenario, &Arc<SimResults>)> {
        self.map.iter()
    }
}

/// Executes a [`CampaignPlan`] across a pool of worker threads.
///
/// Workers pull scenario indices from a shared atomic counter, run each
/// scenario in a private, freshly-built `CmpSystem`, and deposit the result
/// into that scenario's slot. The final [`ResultSet`] is assembled from the
/// slots in plan order, so the outcome is bit-identical for any worker
/// count (`tests/campaign.rs` locks this in).
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

/// Largest explicit worker count [`Executor::try_new`] accepts. Worker
/// threads beyond the scenario count never run anything, and a parse-able
/// but senseless `--threads` value (say, millions) would otherwise silently
/// degrade into thousands of idle OS threads; front-ends should reject it
/// loudly instead (the `reproduce` CLI does).
pub const MAX_EXPLICIT_THREADS: usize = 1024;

impl Executor {
    /// An executor with an explicit worker count (`0` means "all cores",
    /// i.e. `std::thread::available_parallelism`).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        Executor { threads }
    }

    /// Like [`Executor::new`], but rejects worker counts that parse yet make
    /// no sense (anything above [`MAX_EXPLICIT_THREADS`]) instead of
    /// silently spawning that many OS threads. `0` still means "all cores".
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending value and the
    /// accepted range.
    pub fn try_new(threads: usize) -> Result<Self, String> {
        if threads > MAX_EXPLICIT_THREADS {
            return Err(format!(
                "{threads} worker threads makes no sense (accepted: 0 for all \
                 cores, or 1..={MAX_EXPLICIT_THREADS})"
            ));
        }
        Ok(Self::new(threads))
    }

    /// An executor using every available core.
    pub fn all_cores() -> Self {
        Self::new(0)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every scenario of the plan and returns the completed results.
    pub fn execute(&self, params: &ExperimentParams, plan: &CampaignPlan) -> ResultSet {
        let scenarios = plan.scenarios();
        let n = scenarios.len();
        let workers = self.threads.min(n).max(1);
        let mut slots: Vec<Option<Arc<SimResults>>> = Vec::with_capacity(n);
        if workers <= 1 {
            // Inline fast path: no thread or lock overhead for sequential
            // execution (also what the Runner shim uses implicitly).
            slots.extend(
                scenarios
                    .iter()
                    .map(|&s| Some(Arc::new(run_scenario(params, s)))),
            );
        } else {
            let locked: Vec<Mutex<Option<Arc<SimResults>>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let result = Arc::new(run_scenario(params, scenarios[i]));
                        *locked[i].lock().expect("slot lock") = Some(result);
                    });
                }
            });
            slots.extend(
                locked
                    .into_iter()
                    .map(|m| m.into_inner().expect("slot lock")),
            );
        }
        let mut results = ResultSet::new();
        for (i, &scenario) in scenarios.iter().enumerate() {
            let r = slots[i].take().expect("every planned scenario was executed");
            results.insert(scenario, r);
        }
        results
    }
}

/// A declarative description of one figure of the paper: which scenarios it
/// needs ([`FigureSpec::enumerate`]) and how the figure is built from their
/// results ([`FigureSpec::assemble`]). Both passes are pure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FigureSpec {
    /// Figure 6: private-cache runtime normalized to the shared cache.
    Fig06 {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
    },
    /// Figure 7: L2 hit-latency increase over the private baseline.
    Fig07 {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
    },
    /// Figure 8: L2 MPKI, shared cache vs LOCO.
    Fig08 {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
    },
    /// Figure 9: on-chip search delay, directory indirection vs VMS.
    Fig09 {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
    },
    /// Figure 10: normalized off-chip accesses, with and without IVR.
    Fig10 {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
    },
    /// Figure 11: runtime of each LOCO feature vs the shared cache.
    Fig11 {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
    },
    /// Figures 12a+12b: L2 hit latency and search delay under the three
    /// NoCs (assembles two figures).
    Fig12 {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
    },
    /// Figure 13: LOCO runtime under the three NoCs.
    Fig13 {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
    },
    /// Figure 14: the cluster-shape sweep (assembles four sub-figures).
    Fig14 {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
        /// The cluster shapes to sweep.
        shapes: Vec<ClusterShape>,
    },
    /// Figures 15a+15b: the Table-2 multi-program workloads (assembles two
    /// figures).
    Fig15 {
        /// Table-2 workload indices (0–9).
        workloads: Vec<usize>,
    },
    /// Figures 16a+16b: full-system MPKI and runtime (assembles two
    /// figures).
    Fig16 {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
    },
    /// Figures 17a+17b: event-level energy of each cache organization
    /// (17a: energy per instruction by organization across the benchmarks;
    /// 17b: the network/cache/DRAM component breakdown per organization,
    /// averaged over the benchmarks). Uses [`EnergyParams::default`] — the
    /// paper-calibrated per-event costs.
    Fig17Energy {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
    },
    /// Figure 18: the energy-delay product of full LOCO by cluster shape,
    /// normalized to the shared-cache baseline (pairing Figure 14's
    /// performance sweep with an energy-efficiency axis).
    Fig18Edp {
        /// The benchmark x-axis.
        benchmarks: Vec<Benchmark>,
        /// The cluster shapes to sweep.
        shapes: Vec<ClusterShape>,
    },
    /// Figure 19 (reproduction extra): runtime of the stall-heavy stress
    /// workloads ([`Scenario::StallStress`]: barrier-phased, DRAM-bound)
    /// under the three NoCs, normalized per workload to the SMART NoC.
    /// These scenarios open ROADMAP's named blind spot — small meshes with
    /// long global stalls — and double as the campaign-level exercise of
    /// the event-driven scheduler's fine-grained skip horizon.
    Fig19Stall,
}

/// The three router kinds of the NoC-comparison figures, in paper order.
const NOC_SWEEP: [RouterKind; 3] = [RouterKind::Smart, RouterKind::Conventional, RouterKind::HighRadix];

/// The organizations of the energy-breakdown figure, in paper order.
const ENERGY_ORGS: [OrganizationKind; 5] = [
    OrganizationKind::Private,
    OrganizationKind::Shared,
    OrganizationKind::LocoCc,
    OrganizationKind::LocoCcVms,
    OrganizationKind::LocoCcVmsIvr,
];

impl FigureSpec {
    /// The figure's identifier ("fig06" … "fig18").
    pub fn id(&self) -> &'static str {
        match self {
            FigureSpec::Fig06 { .. } => "fig06",
            FigureSpec::Fig07 { .. } => "fig07",
            FigureSpec::Fig08 { .. } => "fig08",
            FigureSpec::Fig09 { .. } => "fig09",
            FigureSpec::Fig10 { .. } => "fig10",
            FigureSpec::Fig11 { .. } => "fig11",
            FigureSpec::Fig12 { .. } => "fig12",
            FigureSpec::Fig13 { .. } => "fig13",
            FigureSpec::Fig14 { .. } => "fig14",
            FigureSpec::Fig15 { .. } => "fig15",
            FigureSpec::Fig16 { .. } => "fig16",
            FigureSpec::Fig17Energy { .. } => "fig17",
            FigureSpec::Fig18Edp { .. } => "fig18",
            FigureSpec::Fig19Stall => "fig19",
        }
    }

    /// The figure number (6–16 mirror the paper; 17–18 are the energy
    /// figures this reproduction adds on top of the evaluation).
    pub fn number(&self) -> u32 {
        match self {
            FigureSpec::Fig06 { .. } => 6,
            FigureSpec::Fig07 { .. } => 7,
            FigureSpec::Fig08 { .. } => 8,
            FigureSpec::Fig09 { .. } => 9,
            FigureSpec::Fig10 { .. } => 10,
            FigureSpec::Fig11 { .. } => 11,
            FigureSpec::Fig12 { .. } => 12,
            FigureSpec::Fig13 { .. } => 13,
            FigureSpec::Fig14 { .. } => 14,
            FigureSpec::Fig15 { .. } => 15,
            FigureSpec::Fig16 { .. } => 16,
            FigureSpec::Fig17Energy { .. } => 17,
            FigureSpec::Fig18Edp { .. } => 18,
            FigureSpec::Fig19Stall => 19,
        }
    }

    /// A short human-readable title (what `reproduce --list-figures`
    /// prints).
    pub fn title(&self) -> &'static str {
        match self {
            FigureSpec::Fig06 { .. } => "Normalized runtime of private vs. shared caches",
            FigureSpec::Fig07 { .. } => "Increase of L2 access latency over Private Cache",
            FigureSpec::Fig08 { .. } => "L2 cache misses per 1000 instructions",
            FigureSpec::Fig09 { .. } => "Global search delay for data cached on-chip",
            FigureSpec::Fig10 { .. } => "Normalized off-chip memory accesses",
            FigureSpec::Fig11 { .. } => "Normalized runtimes of LOCO against Shared Cache",
            FigureSpec::Fig12 { .. } => "LOCO L2 hit latency and search delay under alternative NoCs",
            FigureSpec::Fig13 { .. } => "LOCO runtime under alternative NoCs",
            FigureSpec::Fig14 { .. } => "LOCO by cluster size (latency, MPKI, search delay, runtime)",
            FigureSpec::Fig15 { .. } => "Multi-program workloads (off-chip accesses, runtime)",
            FigureSpec::Fig16 { .. } => "Full-system simulation (MPKI, runtime)",
            FigureSpec::Fig17Energy { .. } => {
                "Energy per instruction and breakdown by cache organization"
            }
            FigureSpec::Fig18Edp { .. } => "Energy-delay product by cluster size",
            FigureSpec::Fig19Stall => "Stall-heavy stress workloads (barrier/DRAM-bound) under alternative NoCs",
        }
    }

    /// Every scenario this figure reads — the pure *plan* pass. The order
    /// is deterministic (it mirrors the assembly loops), and duplicates
    /// within one figure are fine: [`CampaignPlan::extend`] deduplicates.
    pub fn enumerate(&self, params: &ExperimentParams) -> Vec<Scenario> {
        let mut out = Vec::new();
        match self {
            FigureSpec::Fig06 { benchmarks } => {
                for &b in benchmarks {
                    out.push(Scenario::default_trace(params, b, OrganizationKind::Shared));
                    out.push(Scenario::default_trace(params, b, OrganizationKind::Private));
                }
            }
            FigureSpec::Fig07 { benchmarks } => {
                for &b in benchmarks {
                    out.push(Scenario::default_trace(params, b, OrganizationKind::Private));
                    out.push(Scenario::default_trace(params, b, OrganizationKind::Shared));
                    out.push(Scenario::default_trace(params, b, OrganizationKind::LocoCcVmsIvr));
                }
            }
            FigureSpec::Fig08 { benchmarks } => {
                for &b in benchmarks {
                    out.push(Scenario::default_trace(params, b, OrganizationKind::Shared));
                    out.push(Scenario::default_trace(params, b, OrganizationKind::LocoCcVmsIvr));
                }
            }
            FigureSpec::Fig09 { benchmarks } => {
                for &b in benchmarks {
                    out.push(Scenario::default_trace(params, b, OrganizationKind::LocoCc));
                    out.push(Scenario::default_trace(params, b, OrganizationKind::LocoCcVms));
                }
            }
            FigureSpec::Fig10 { benchmarks } => {
                for &b in benchmarks {
                    out.push(Scenario::default_trace(params, b, OrganizationKind::Shared));
                    out.push(Scenario::default_trace(params, b, OrganizationKind::LocoCcVms));
                    out.push(Scenario::default_trace(params, b, OrganizationKind::LocoCcVmsIvr));
                }
            }
            FigureSpec::Fig11 { benchmarks } => {
                for &b in benchmarks {
                    for org in [
                        OrganizationKind::Shared,
                        OrganizationKind::LocoCc,
                        OrganizationKind::LocoCcVms,
                        OrganizationKind::LocoCcVmsIvr,
                    ] {
                        out.push(Scenario::default_trace(params, b, org));
                    }
                }
            }
            FigureSpec::Fig12 { benchmarks } => {
                for &b in benchmarks {
                    out.push(Scenario::default_trace(params, b, OrganizationKind::Private));
                    for router in NOC_SWEEP {
                        out.push(Scenario::Trace {
                            benchmark: b,
                            org: OrganizationKind::LocoCcVmsIvr,
                            router,
                            cluster: params.cluster,
                            full_system: false,
                        });
                    }
                }
            }
            FigureSpec::Fig13 { benchmarks } => {
                for &b in benchmarks {
                    out.push(Scenario::default_trace(params, b, OrganizationKind::Shared));
                    for router in NOC_SWEEP {
                        out.push(Scenario::Trace {
                            benchmark: b,
                            org: OrganizationKind::LocoCcVmsIvr,
                            router,
                            cluster: params.cluster,
                            full_system: false,
                        });
                    }
                }
            }
            FigureSpec::Fig14 { benchmarks, shapes } => {
                for &b in benchmarks {
                    out.push(Scenario::default_trace(params, b, OrganizationKind::Private));
                    out.push(Scenario::default_trace(params, b, OrganizationKind::Shared));
                    for &shape in shapes {
                        out.push(Scenario::Trace {
                            benchmark: b,
                            org: OrganizationKind::LocoCcVmsIvr,
                            router: RouterKind::Smart,
                            cluster: shape,
                            full_system: false,
                        });
                    }
                }
            }
            FigureSpec::Fig15 { workloads } => {
                for &w in workloads {
                    for org in [
                        OrganizationKind::Shared,
                        OrganizationKind::LocoCc,
                        OrganizationKind::LocoCcVmsIvr,
                    ] {
                        out.push(Scenario::MultiProgram { workload: w, org });
                    }
                }
            }
            FigureSpec::Fig16 { benchmarks } => {
                for &b in benchmarks {
                    for org in [
                        OrganizationKind::Shared,
                        OrganizationKind::LocoCc,
                        OrganizationKind::LocoCcVms,
                        OrganizationKind::LocoCcVmsIvr,
                    ] {
                        out.push(Scenario::Trace {
                            benchmark: b,
                            org,
                            router: RouterKind::Smart,
                            cluster: params.cluster,
                            full_system: true,
                        });
                    }
                }
            }
            FigureSpec::Fig17Energy { benchmarks } => {
                for &b in benchmarks {
                    for org in ENERGY_ORGS {
                        out.push(Scenario::default_trace(params, b, org));
                    }
                }
            }
            FigureSpec::Fig18Edp { benchmarks, shapes } => {
                for &b in benchmarks {
                    out.push(Scenario::default_trace(params, b, OrganizationKind::Shared));
                    for &shape in shapes {
                        out.push(Scenario::Trace {
                            benchmark: b,
                            org: OrganizationKind::LocoCcVmsIvr,
                            router: RouterKind::Smart,
                            cluster: shape,
                            full_system: false,
                        });
                    }
                }
            }
            FigureSpec::Fig19Stall => {
                for kind in StressKind::ALL {
                    for router in NOC_SWEEP {
                        out.push(Scenario::StallStress { kind, router });
                    }
                }
            }
        }
        out
    }

    /// Builds the figure(s) from a completed result set — the pure
    /// *assemble* pass. Figures with sub-parts (12, 14, 15, 16) return more
    /// than one [`Figure`]; the rest return exactly one.
    ///
    /// # Panics
    ///
    /// Panics if a scenario from [`FigureSpec::enumerate`] is missing from
    /// `results`.
    pub fn assemble(&self, params: &ExperimentParams, results: &ResultSet) -> Vec<Figure> {
        let get_default = |b: Benchmark, org: OrganizationKind| -> &SimResults {
            results.expect(&Scenario::default_trace(params, b, org))
        };
        let bench_labels =
            |benchmarks: &[Benchmark]| benchmarks.iter().map(|b| b.name().to_string()).collect();
        match self {
            FigureSpec::Fig06 { benchmarks } => {
                let mut fig = Figure::new(
                    "fig06",
                    "Normalized runtime of private caches vs. shared caches",
                    "runtime normalized to Shared Cache",
                );
                fig.x_labels = bench_labels(benchmarks);
                let mut private = Vec::new();
                for &b in benchmarks {
                    let shared = get_default(b, OrganizationKind::Shared);
                    let priv_r = get_default(b, OrganizationKind::Private);
                    private.push(priv_r.runtime_normalized_to(shared));
                }
                fig.push_series(Series::new("Private Cache", private));
                fig.push_average_column();
                vec![fig]
            }
            FigureSpec::Fig07 { benchmarks } => {
                let mut fig = Figure::new(
                    format!("fig07-{}", params.label()),
                    "Increase of L2 access latency over Private Cache",
                    "cycles",
                );
                fig.x_labels = bench_labels(benchmarks);
                let (mut shared_v, mut loco_v) = (Vec::new(), Vec::new());
                for &b in benchmarks {
                    let private = get_default(b, OrganizationKind::Private);
                    let shared = get_default(b, OrganizationKind::Shared);
                    let loco = get_default(b, OrganizationKind::LocoCcVmsIvr);
                    shared_v.push((shared.avg_l2_hit_latency - private.avg_l2_hit_latency).max(0.0));
                    loco_v.push((loco.avg_l2_hit_latency - private.avg_l2_hit_latency).max(0.0));
                }
                fig.push_series(Series::new("Shared Cache", shared_v));
                fig.push_series(Series::new("LOCO", loco_v));
                fig.push_average_column();
                vec![fig]
            }
            FigureSpec::Fig08 { benchmarks } => {
                let mut fig = Figure::new(
                    format!("fig08-{}", params.label()),
                    "L2 cache misses per 1000 instructions",
                    "MPKI",
                );
                fig.x_labels = bench_labels(benchmarks);
                let (mut shared_v, mut loco_v) = (Vec::new(), Vec::new());
                for &b in benchmarks {
                    shared_v.push(get_default(b, OrganizationKind::Shared).l2_mpki);
                    loco_v.push(get_default(b, OrganizationKind::LocoCcVmsIvr).l2_mpki);
                }
                fig.push_series(Series::new("Shared Cache", shared_v));
                fig.push_series(Series::new("LOCO", loco_v));
                fig.push_average_column();
                vec![fig]
            }
            FigureSpec::Fig09 { benchmarks } => {
                let mut fig = Figure::new(
                    format!("fig09-{}", params.label()),
                    "Global search delay for data cached on-chip",
                    "cycles",
                );
                fig.x_labels = bench_labels(benchmarks);
                let (mut cc, mut vms) = (Vec::new(), Vec::new());
                for &b in benchmarks {
                    cc.push(get_default(b, OrganizationKind::LocoCc).avg_search_delay);
                    vms.push(get_default(b, OrganizationKind::LocoCcVms).avg_search_delay);
                }
                fig.push_series(Series::new("LOCO CC", cc));
                fig.push_series(Series::new("LOCO CC+VMS", vms));
                fig.push_average_column();
                vec![fig]
            }
            FigureSpec::Fig10 { benchmarks } => {
                let mut fig = Figure::new(
                    format!("fig10-{}", params.label()),
                    "Normalized off-chip memory accesses",
                    "normalized to Shared Cache",
                );
                fig.x_labels = bench_labels(benchmarks);
                let (mut vms, mut ivr) = (Vec::new(), Vec::new());
                for &b in benchmarks {
                    let shared = get_default(b, OrganizationKind::Shared);
                    vms.push(get_default(b, OrganizationKind::LocoCcVms).offchip_normalized_to(shared));
                    ivr.push(
                        get_default(b, OrganizationKind::LocoCcVmsIvr).offchip_normalized_to(shared),
                    );
                }
                fig.push_series(Series::new("LOCO CC+VMS", vms));
                fig.push_series(Series::new("LOCO CC+VMS+IVR", ivr));
                fig.push_average_column();
                vec![fig]
            }
            FigureSpec::Fig11 { benchmarks } => {
                let mut fig = Figure::new(
                    format!("fig11-{}", params.label()),
                    "Normalized runtimes of LOCO against baseline Shared Cache",
                    "runtime normalized to Shared Cache",
                );
                fig.x_labels = bench_labels(benchmarks);
                let mut series: Vec<(OrganizationKind, Vec<f64>)> = vec![
                    (OrganizationKind::Shared, Vec::new()),
                    (OrganizationKind::LocoCc, Vec::new()),
                    (OrganizationKind::LocoCcVms, Vec::new()),
                    (OrganizationKind::LocoCcVmsIvr, Vec::new()),
                ];
                for &b in benchmarks {
                    let shared = get_default(b, OrganizationKind::Shared);
                    for (org, values) in &mut series {
                        let r = get_default(b, *org);
                        values.push(r.runtime_normalized_to(shared));
                    }
                }
                for (org, values) in series {
                    fig.push_series(Series::new(org.label(), values));
                }
                fig.push_average_column();
                vec![fig]
            }
            FigureSpec::Fig12 { benchmarks } => {
                let mut latency = Figure::new(
                    format!("fig12a-{}", params.label()),
                    "LOCO L2 hit latency under alternative NoCs",
                    "cycles over Private Cache",
                );
                let mut search = Figure::new(
                    format!("fig12b-{}", params.label()),
                    "LOCO global on-chip data search delay under alternative NoCs",
                    "cycles",
                );
                latency.x_labels = bench_labels(benchmarks);
                search.x_labels = bench_labels(benchmarks);
                for router in NOC_SWEEP {
                    let (mut lat_v, mut sea_v) = (Vec::new(), Vec::new());
                    for &b in benchmarks {
                        let private = get_default(b, OrganizationKind::Private);
                        let r = results.expect(&Scenario::Trace {
                            benchmark: b,
                            org: OrganizationKind::LocoCcVmsIvr,
                            router,
                            cluster: params.cluster,
                            full_system: false,
                        });
                        lat_v.push((r.avg_l2_hit_latency - private.avg_l2_hit_latency).max(0.0));
                        sea_v.push(r.avg_search_delay);
                    }
                    latency.push_series(Series::new(format!("LOCO + {}", router.label()), lat_v));
                    search.push_series(Series::new(format!("LOCO + {}", router.label()), sea_v));
                }
                latency.push_average_column();
                search.push_average_column();
                vec![latency, search]
            }
            FigureSpec::Fig13 { benchmarks } => {
                let mut fig = Figure::new(
                    format!("fig13-{}", params.label()),
                    "LOCO runtime under alternative NoCs",
                    "runtime normalized to Shared Cache on SMART NoC",
                );
                fig.x_labels = bench_labels(benchmarks);
                for router in NOC_SWEEP {
                    let mut v = Vec::new();
                    for &b in benchmarks {
                        let shared = get_default(b, OrganizationKind::Shared);
                        let r = results.expect(&Scenario::Trace {
                            benchmark: b,
                            org: OrganizationKind::LocoCcVmsIvr,
                            router,
                            cluster: params.cluster,
                            full_system: false,
                        });
                        v.push(r.runtime_normalized_to(shared));
                    }
                    fig.push_series(Series::new(format!("LOCO + {}", router.label()), v));
                }
                fig.push_average_column();
                vec![fig]
            }
            FigureSpec::Fig14 { benchmarks, shapes } => {
                let mut latency = Figure::new(
                    "fig14a",
                    "L2 hit latency increase by cluster size",
                    "cycles over Private Cache",
                );
                let mut mpki =
                    Figure::new("fig14b", "L2 misses per 1000 instructions by cluster size", "MPKI");
                let mut search = Figure::new("fig14c", "Global search delay by cluster size", "cycles");
                let mut runtime = Figure::new(
                    "fig14d",
                    "Normalized runtime by cluster size",
                    "runtime normalized to Shared Cache",
                );
                let x: Vec<String> = bench_labels(benchmarks);
                latency.x_labels = x.clone();
                mpki.x_labels = x.clone();
                search.x_labels = x.clone();
                runtime.x_labels = x;
                for &shape in shapes {
                    let label = format!("Cluster Size:{}x{}", shape.w, shape.h);
                    let (mut lv, mut mv, mut sv, mut rv) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
                    for &b in benchmarks {
                        let private = get_default(b, OrganizationKind::Private);
                        let shared = get_default(b, OrganizationKind::Shared);
                        let r = results.expect(&Scenario::Trace {
                            benchmark: b,
                            org: OrganizationKind::LocoCcVmsIvr,
                            router: RouterKind::Smart,
                            cluster: shape,
                            full_system: false,
                        });
                        lv.push((r.avg_l2_hit_latency - private.avg_l2_hit_latency).max(0.0));
                        mv.push(r.l2_mpki);
                        sv.push(r.avg_search_delay);
                        rv.push(r.runtime_normalized_to(shared));
                    }
                    latency.push_series(Series::new(label.clone(), lv));
                    mpki.push_series(Series::new(label.clone(), mv));
                    search.push_series(Series::new(label.clone(), sv));
                    runtime.push_series(Series::new(label, rv));
                }
                for f in [&mut latency, &mut mpki, &mut search, &mut runtime] {
                    f.push_average_column();
                }
                vec![latency, mpki, search, runtime]
            }
            FigureSpec::Fig15 { workloads } => {
                let mut offchip = Figure::new(
                    "fig15a",
                    "Multi-program workloads: normalized off-chip memory accesses",
                    "normalized to Shared Cache",
                );
                let mut runtime = Figure::new(
                    "fig15b",
                    "Multi-program workloads: normalized runtime",
                    "normalized to Shared Cache",
                );
                let labels: Vec<String> = workloads.iter().map(|w| format!("W{w}")).collect();
                offchip.x_labels = labels.clone();
                runtime.x_labels = labels;
                let orgs = [
                    OrganizationKind::Shared,
                    OrganizationKind::LocoCc,
                    OrganizationKind::LocoCcVmsIvr,
                ];
                let mut off_series: Vec<Vec<f64>> = vec![Vec::new(); orgs.len()];
                let mut run_series: Vec<Vec<f64>> = vec![Vec::new(); orgs.len()];
                for &w in workloads {
                    let shared = results.expect(&Scenario::MultiProgram {
                        workload: w,
                        org: OrganizationKind::Shared,
                    });
                    for (i, &org) in orgs.iter().enumerate() {
                        let r = results.expect(&Scenario::MultiProgram { workload: w, org });
                        off_series[i].push(r.offchip_normalized_to(shared));
                        run_series[i].push(r.runtime_normalized_to(shared));
                    }
                }
                for (i, org) in orgs.iter().enumerate() {
                    let label = if *org == OrganizationKind::LocoCc {
                        "Clustered Cache".to_string()
                    } else {
                        org.label().to_string()
                    };
                    offchip.push_series(Series::new(label.clone(), off_series[i].clone()));
                    runtime.push_series(Series::new(label, run_series[i].clone()));
                }
                offchip.push_average_column();
                runtime.push_average_column();
                vec![offchip, runtime]
            }
            FigureSpec::Fig16 { benchmarks } => {
                let get_fs = |b: Benchmark, org: OrganizationKind| -> &SimResults {
                    results.expect(&Scenario::Trace {
                        benchmark: b,
                        org,
                        router: RouterKind::Smart,
                        cluster: params.cluster,
                        full_system: true,
                    })
                };
                let mut mpki = Figure::new(
                    "fig16a",
                    "Full system simulation: L2 misses per 1000 instructions",
                    "MPKI",
                );
                mpki.x_labels = bench_labels(benchmarks);
                let (mut shared_v, mut loco_v) = (Vec::new(), Vec::new());
                for &b in benchmarks {
                    shared_v.push(get_fs(b, OrganizationKind::Shared).l2_mpki);
                    loco_v.push(get_fs(b, OrganizationKind::LocoCcVmsIvr).l2_mpki);
                }
                mpki.push_series(Series::new("Shared", shared_v));
                mpki.push_series(Series::new("LOCO", loco_v));
                mpki.push_average_column();

                let mut runtime = Figure::new(
                    "fig16b",
                    "Full system simulation: normalized runtime against Shared Cache",
                    "runtime normalized to Shared Cache",
                );
                runtime.x_labels = bench_labels(benchmarks);
                let orgs = [
                    OrganizationKind::LocoCc,
                    OrganizationKind::LocoCcVms,
                    OrganizationKind::LocoCcVmsIvr,
                ];
                let mut series: Vec<Vec<f64>> = vec![Vec::new(); orgs.len()];
                for &b in benchmarks {
                    let shared = get_fs(b, OrganizationKind::Shared);
                    for (i, &org) in orgs.iter().enumerate() {
                        series[i].push(get_fs(b, org).runtime_normalized_to(shared));
                    }
                }
                for (i, org) in orgs.iter().enumerate() {
                    runtime.push_series(Series::new(org.label(), series[i].clone()));
                }
                runtime.push_average_column();
                vec![mpki, runtime]
            }
            FigureSpec::Fig17Energy { benchmarks } => {
                let energy = EnergyParams::default();
                let breakdown = |b: Benchmark, org: OrganizationKind| -> EnergyBreakdown {
                    energy.breakdown(get_default(b, org))
                };
                // 17a: energy per instruction, per organization, across the
                // benchmark x-axis (nJ so the magnitudes stay readable).
                let mut epi = Figure::new(
                    format!("fig17a-{}", params.label()),
                    "Energy per instruction by cache organization",
                    "nJ / instruction",
                );
                epi.x_labels = bench_labels(benchmarks);
                for org in ENERGY_ORGS {
                    let v: Vec<f64> = benchmarks
                        .iter()
                        .map(|&b| breakdown(b, org).epi_fj() / 1e6)
                        .collect();
                    epi.push_series(Series::new(org.label(), v));
                }
                epi.push_average_column();
                // 17b: the subsystem breakdown per organization, averaged
                // over the benchmarks (the stacked-bar view of 17a).
                let mut parts = Figure::new(
                    format!("fig17b-{}", params.label()),
                    "Energy breakdown by subsystem (benchmark average)",
                    "nJ / instruction",
                );
                parts.x_labels = ENERGY_ORGS.iter().map(|o| o.label().to_string()).collect();
                let n = benchmarks.len().max(1) as f64;
                let component = |f: &dyn Fn(&EnergyBreakdown) -> u64| -> Vec<f64> {
                    ENERGY_ORGS
                        .iter()
                        .map(|&org| {
                            benchmarks
                                .iter()
                                .map(|&b| {
                                    let bd = breakdown(b, org);
                                    if bd.instructions == 0 {
                                        0.0
                                    } else {
                                        f(&bd) as f64 / bd.instructions as f64 / 1e6
                                    }
                                })
                                .sum::<f64>()
                                / n
                        })
                        .collect()
                };
                parts.push_series(Series::new("NoC", component(&|b| b.network.total_fj())));
                parts.push_series(Series::new("L1", component(&|b| b.cache.l1_fj)));
                parts.push_series(Series::new("L2", component(&|b| b.cache.l2_fj)));
                parts.push_series(Series::new(
                    "Directory",
                    component(&|b| b.cache.directory_fj),
                ));
                parts.push_series(Series::new(
                    "VMS+IVR",
                    component(&|b| b.cache.vms_fj + b.cache.ivr_fj),
                ));
                parts.push_series(Series::new("DRAM", component(&|b| b.dram_fj)));
                vec![epi, parts]
            }
            FigureSpec::Fig18Edp { benchmarks, shapes } => {
                let energy = EnergyParams::default();
                let mut fig = Figure::new(
                    format!("fig18-{}", params.label()),
                    "Energy-delay product of LOCO by cluster size",
                    "EDP normalized to Shared Cache",
                );
                fig.x_labels = bench_labels(benchmarks);
                for &shape in shapes {
                    let mut v = Vec::new();
                    for &b in benchmarks {
                        let shared =
                            energy.breakdown(get_default(b, OrganizationKind::Shared));
                        let r = results.expect(&Scenario::Trace {
                            benchmark: b,
                            org: OrganizationKind::LocoCcVmsIvr,
                            router: RouterKind::Smart,
                            cluster: shape,
                            full_system: false,
                        });
                        v.push(energy.breakdown(r).edp_normalized_to(&shared));
                    }
                    fig.push_series(Series::new(
                        format!("Cluster Size:{}x{}", shape.w, shape.h),
                        v,
                    ));
                }
                fig.push_average_column();
                vec![fig]
            }
            FigureSpec::Fig19Stall => {
                let mut fig = Figure::new(
                    "fig19",
                    "Stall-heavy stress workloads under alternative NoCs",
                    "runtime normalized to SMART NoC",
                );
                fig.x_labels = StressKind::ALL.iter().map(|k| k.name().to_string()).collect();
                for router in NOC_SWEEP {
                    let mut v = Vec::new();
                    for kind in StressKind::ALL {
                        let smart = results.expect(&Scenario::StallStress {
                            kind,
                            router: RouterKind::Smart,
                        });
                        let r = results.expect(&Scenario::StallStress { kind, router });
                        v.push(r.runtime_normalized_to(smart));
                    }
                    fig.push_series(Series::new(format!("LOCO + {}", router.label()), v));
                }
                fig.push_average_column();
                vec![fig]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentParams {
        ExperimentParams::quick().with_mem_ops(100)
    }

    #[test]
    fn plan_deduplicates_across_figures() {
        let params = quick();
        let benchmarks = vec![Benchmark::Lu, Benchmark::Blackscholes];
        let fig06 = FigureSpec::Fig06 {
            benchmarks: benchmarks.clone(),
        };
        let fig11 = FigureSpec::Fig11 { benchmarks };
        let mut plan = CampaignPlan::new();
        plan.add_figure(&fig06, &params);
        let after_fig06 = plan.len();
        assert_eq!(after_fig06, 4); // {Shared, Private} x 2 benchmarks
        plan.add_figure(&fig11, &params);
        // fig11 adds {LocoCc, LocoCcVms, LocoCcVmsIvr} x 2; Shared is shared.
        assert_eq!(plan.len(), after_fig06 + 6);
    }

    #[test]
    fn executor_covers_the_whole_plan() {
        let params = quick();
        let spec = FigureSpec::Fig09 {
            benchmarks: vec![Benchmark::Barnes],
        };
        let mut plan = CampaignPlan::new();
        plan.add_figure(&spec, &params);
        let results = Executor::new(1).execute(&params, &plan);
        assert_eq!(results.len(), plan.len());
        for s in plan.scenarios() {
            assert!(results.get(s).is_some(), "missing {}", s.label());
        }
        let figs = spec.assemble(&params, &results);
        assert_eq!(figs.len(), 1);
        assert_eq!(figs[0].series.len(), 2);
    }

    #[test]
    fn parallel_execution_is_deterministic() {
        let params = quick();
        let spec = FigureSpec::Fig08 {
            benchmarks: vec![Benchmark::Lu, Benchmark::Blackscholes],
        };
        let mut plan = CampaignPlan::new();
        plan.add_figure(&spec, &params);
        let serial = Executor::new(1).execute(&params, &plan);
        let parallel = Executor::new(4).execute(&params, &plan);
        for s in plan.scenarios() {
            assert_eq!(
                format!("{:?}", serial.expect(s)),
                format!("{:?}", parallel.expect(s)),
                "scenario {} diverged across worker counts",
                s.label()
            );
        }
        assert_eq!(
            spec.assemble(&params, &serial),
            spec.assemble(&params, &parallel)
        );
    }

    #[test]
    fn multiprogram_scenarios_execute_and_assemble() {
        let params = quick();
        let spec = FigureSpec::Fig15 { workloads: vec![0] };
        let mut plan = CampaignPlan::new();
        plan.add_figure(&spec, &params);
        assert_eq!(plan.len(), 3);
        let results = Executor::new(2).execute(&params, &plan);
        let figs = spec.assemble(&params, &results);
        assert_eq!(figs.len(), 2);
        assert_eq!(figs[0].series.len(), 3);
    }

    #[test]
    #[should_panic(expected = "was it planned")]
    fn assembling_from_an_incomplete_result_set_names_the_scenario() {
        let params = quick();
        let spec = FigureSpec::Fig06 {
            benchmarks: vec![Benchmark::Lu],
        };
        spec.assemble(&params, &ResultSet::new());
    }

    #[test]
    fn executor_zero_means_all_cores() {
        assert!(Executor::new(0).threads() >= 1);
        assert_eq!(Executor::new(3).threads(), 3);
    }

    #[test]
    fn energy_figure_rides_the_existing_scenario_axes() {
        let params = quick();
        let spec = FigureSpec::Fig17Energy {
            benchmarks: vec![Benchmark::Lu],
        };
        let mut plan = CampaignPlan::new();
        plan.add_figure(&spec, &params);
        assert_eq!(plan.len(), 5, "one scenario per organization");
        // The scenarios are plain default traces: composing with fig11
        // re-enumerates nothing new beyond Private.
        plan.add_figure(
            &FigureSpec::Fig11 {
                benchmarks: vec![Benchmark::Lu],
            },
            &params,
        );
        assert_eq!(plan.len(), 5);
        let results = Executor::new(2).execute(&params, &plan);
        let figs = spec.assemble(&params, &results);
        assert_eq!(figs.len(), 2);
        assert_eq!(figs[0].id, format!("fig17a-{}", params.label()));
        assert_eq!(figs[0].series.len(), 5, "one series per organization");
        assert_eq!(figs[1].series.len(), 6, "one series per subsystem");
        // Every run executes instructions and touches DRAM, so energy is
        // strictly positive everywhere.
        for s in &figs[0].series {
            for v in &s.values {
                assert!(*v > 0.0 && v.is_finite(), "{}: {v}", s.label);
            }
        }
    }

    #[test]
    fn edp_figure_normalizes_against_shared() {
        let params = quick();
        let spec = FigureSpec::Fig18Edp {
            benchmarks: vec![Benchmark::Lu],
            shapes: vec![ClusterShape::new(2, 2)],
        };
        let mut plan = CampaignPlan::new();
        plan.add_figure(&spec, &params);
        assert_eq!(plan.len(), 2, "Shared baseline + one shape");
        let results = Executor::new(1).execute(&params, &plan);
        let figs = spec.assemble(&params, &results);
        assert_eq!(figs.len(), 1);
        let v = figs[0].series[0].values[0];
        assert!(v > 0.0 && v.is_finite());
    }

    #[test]
    fn stall_stress_figure_sweeps_kinds_by_router() {
        let params = quick();
        let spec = FigureSpec::Fig19Stall;
        let mut plan = CampaignPlan::new();
        plan.add_figure(&spec, &params);
        assert_eq!(plan.len(), 6, "2 stress kinds x 3 routers");
        let results = Executor::new(2).execute(&params, &plan);
        let figs = spec.assemble(&params, &results);
        assert_eq!(figs.len(), 1);
        assert_eq!(figs[0].series.len(), 3, "one series per router");
        // SMART is the normalization baseline, so its series is exactly 1.
        let smart = &figs[0].series[0];
        assert!(smart.label.contains("SMART"), "{}", smart.label);
        for v in &smart.values {
            assert!((v - 1.0).abs() < 1e-12, "SMART must normalize to 1, got {v}");
        }
        for s in &figs[0].series {
            for v in &s.values {
                assert!(*v > 0.0 && v.is_finite(), "{}: {v}", s.label);
            }
        }
    }

    #[test]
    fn stall_stress_scenarios_are_stall_shaped() {
        let params = quick();
        // DRAM-bound: nearly every access goes off-chip, and the stretched
        // latency dominates the runtime.
        let dram = run_stall_stress(&params, StressKind::DramBound, RouterKind::Smart);
        assert!(dram.completed);
        assert!(
            dram.offchip_accesses * 2 > dram.cache.l2_misses,
            "DRAM-bound must miss past the L2 ({} offchip of {} L2 misses)",
            dram.offchip_accesses,
            dram.cache.l2_misses
        );
        assert!(
            dram.avg_miss_latency > 800.0,
            "the stretched DRAM latency must dominate misses (got {:.0})",
            dram.avg_miss_latency
        );
        // Barrier-phased: the barriers must actually fire.
        let barrier = run_stall_stress(&params, StressKind::BarrierPhased, RouterKind::Smart);
        assert!(barrier.completed);
        assert!(
            barrier.cache.instructions > 0 && barrier.runtime_cycles > 0,
            "barrier-phased run must make progress"
        );
    }

    // `Executor::try_new`'s rejection contract is covered by
    // `tests/campaign.rs::senseless_thread_counts_are_rejected_with_a_clear_error`
    // (through the public re-export the CLI actually uses).

    #[test]
    fn every_figure_has_an_id_number_and_title() {
        let specs = [
            FigureSpec::Fig06 { benchmarks: vec![] },
            FigureSpec::Fig17Energy { benchmarks: vec![] },
            FigureSpec::Fig18Edp {
                benchmarks: vec![],
                shapes: vec![],
            },
        ];
        assert_eq!(specs[0].id(), "fig06");
        assert_eq!(specs[1].id(), "fig17");
        assert_eq!(specs[1].number(), 17);
        assert_eq!(specs[2].id(), "fig18");
        assert_eq!(specs[2].number(), 18);
        for s in &specs {
            assert!(!s.title().is_empty());
        }
    }
}
