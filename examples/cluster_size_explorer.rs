//! Cluster-size exploration (the scenario behind Figure 14), driven through
//! the campaign engine: the shape × benchmark sweep is *planned* as one
//! deduplicated scenario list, *executed* across every available core, and
//! the table is *assembled* from the completed result set — the same
//! plan/execute/assemble pipeline the `reproduce` CLI uses for the paper's
//! full evaluation.
//!
//! ```text
//! cargo run --release -p loco --example cluster_size_explorer
//! ```

use loco::campaign::{CampaignPlan, Executor, Scenario};
use loco::{Benchmark, ClusterShape, ExperimentParams, OrganizationKind, RouterKind};

fn main() {
    let shapes = [
        ClusterShape::new(4, 1),
        ClusterShape::new(8, 1),
        ClusterShape::new(4, 4),
    ];
    let benchmarks = [Benchmark::Swaptions, Benchmark::WaterSpatial, Benchmark::Radix];
    let params = ExperimentParams::paper_64().with_mem_ops(800);

    // Plan: one scenario per (benchmark, shape), deduplicated.
    let mut plan = CampaignPlan::new();
    for &benchmark in &benchmarks {
        for &cluster in &shapes {
            plan.add(Scenario::Trace {
                benchmark,
                org: OrganizationKind::LocoCcVmsIvr,
                router: RouterKind::Smart,
                cluster,
                full_system: false,
            });
        }
    }

    // Execute: every scenario in parallel, one private CmpSystem per worker.
    let executor = Executor::all_cores();
    println!(
        "LOCO cluster-size exploration — 64 cores, SMART NoC (HPCmax=4), {} scenarios on {} worker thread(s)\n",
        plan.len(),
        executor.threads()
    );
    let results = executor.execute(&params, &plan);

    // Assemble: read the completed result set in presentation order.
    println!(
        "{:<16} {:>10} {:>14} {:>10} {:>14}",
        "benchmark", "cluster", "hit lat (cyc)", "MPKI", "runtime (cyc)"
    );
    for &benchmark in &benchmarks {
        for &cluster in &shapes {
            let r = results.expect(&Scenario::Trace {
                benchmark,
                org: OrganizationKind::LocoCcVmsIvr,
                router: RouterKind::Smart,
                cluster,
                full_system: false,
            });
            assert!(r.completed);
            println!(
                "{:<16} {:>7}x{:<2} {:>14.2} {:>10.2} {:>14}",
                benchmark.name(),
                cluster.w,
                cluster.h,
                r.avg_l2_hit_latency,
                r.l2_mpki,
                r.runtime_cycles
            );
        }
        println!();
    }
    println!("Smaller clusters lower hit latency but raise the miss rate;");
    println!("the best choice depends on the benchmark (Figure 14 of the paper).");
}
