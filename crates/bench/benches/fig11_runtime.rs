//! Figure 11: normalized run time of LOCO CC / +VMS / +VMS+IVR against the
//! shared-cache baseline.

use loco_bench::timing::Criterion;
use loco_bench::{bench_group, bench_main};
use loco::{ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_runtime");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            let fig = runner.fig11_runtime(&benchmarks_for(Scale::Quick));
            assert!((fig.average_of("Shared Cache").unwrap() - 1.0).abs() < 1e-9);
            fig
        })
    });
    group.finish();
}

bench_group!(benches, bench);
bench_main!(benches);
