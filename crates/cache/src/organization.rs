//! Cache organizations: private, distributed shared, and the three LOCO
//! variants (CC, CC+VMS, CC+VMS+IVR), plus the address→home-node mapping and
//! cluster geometry they imply.

use crate::address::LineAddr;
use loco_noc::{Coord, Mesh, NodeId};

/// Which cache organization the CMP uses (Section 4.2 of the paper
/// evaluates all five).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum OrganizationKind {
    /// Per-tile private L2; global coherence through a directory at the
    /// memory controllers.
    Private,
    /// Chip-wide distributed shared L2 (static home tile per address).
    Shared,
    /// LOCO local cache clustering only; inter-cluster coherence through the
    /// directory at the memory controllers.
    LocoCc,
    /// LOCO clustering plus VMS broadcast for the global data search.
    LocoCcVms,
    /// LOCO clustering, VMS broadcast and inter-cluster victim replacement.
    LocoCcVmsIvr,
}

impl OrganizationKind {
    /// Label used in experiment tables (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            OrganizationKind::Private => "Private Cache",
            OrganizationKind::Shared => "Shared Cache",
            OrganizationKind::LocoCc => "LOCO CC",
            OrganizationKind::LocoCcVms => "LOCO CC+VMS",
            OrganizationKind::LocoCcVmsIvr => "LOCO CC+VMS+IVR",
        }
    }
}

/// Cluster geometry (width x height in tiles). The paper evaluates 4x4,
/// 4x1 and 8x1 clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClusterShape {
    /// Cluster width in tiles.
    pub w: u16,
    /// Cluster height in tiles.
    pub h: u16,
}

impl ClusterShape {
    /// A `w x h` cluster.
    pub fn new(w: u16, h: u16) -> Self {
        assert!(w > 0 && h > 0, "cluster dimensions must be non-zero");
        ClusterShape { w, h }
    }

    /// Number of tiles per cluster.
    pub fn tiles(self) -> usize {
        self.w as usize * self.h as usize
    }
}

/// A fully specified cache organization on a given mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Organization {
    kind: OrganizationKind,
    mesh: Mesh,
    cluster: ClusterShape,
}

impl Organization {
    /// Private per-tile L2 organization.
    pub fn private(mesh: Mesh) -> Self {
        Organization {
            kind: OrganizationKind::Private,
            mesh,
            cluster: ClusterShape::new(1, 1),
        }
    }

    /// Chip-wide distributed shared L2 organization.
    pub fn shared(mesh: Mesh) -> Self {
        Organization {
            kind: OrganizationKind::Shared,
            mesh,
            cluster: ClusterShape::new(mesh.width(), mesh.height()),
        }
    }

    /// A LOCO organization with the given variant and cluster shape.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a LOCO variant, if the cluster does not evenly
    /// tile the mesh, or if the cluster size is not a power of two (the HNid
    /// field must be a whole number of address bits).
    pub fn loco(mesh: Mesh, kind: OrganizationKind, cluster: ClusterShape) -> Self {
        assert!(
            matches!(
                kind,
                OrganizationKind::LocoCc
                    | OrganizationKind::LocoCcVms
                    | OrganizationKind::LocoCcVmsIvr
            ),
            "loco() requires a LOCO organization kind"
        );
        assert!(
            mesh.width() % cluster.w == 0 && mesh.height() % cluster.h == 0,
            "cluster {}x{} must evenly tile the {}x{} mesh",
            cluster.w,
            cluster.h,
            mesh.width(),
            mesh.height()
        );
        assert!(
            cluster.tiles().is_power_of_two(),
            "cluster size must be a power of two tiles"
        );
        Organization {
            kind,
            mesh,
            cluster,
        }
    }

    /// The organization kind.
    pub fn kind(&self) -> OrganizationKind {
        self.kind
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The cluster shape (1x1 for private, the whole chip for shared).
    pub fn cluster(&self) -> ClusterShape {
        self.cluster
    }

    /// Number of clusters on the chip.
    pub fn num_clusters(&self) -> usize {
        self.mesh.len() / self.cluster.tiles()
    }

    /// Clusters per mesh row.
    pub fn clusters_x(&self) -> u16 {
        self.mesh.width() / self.cluster.w
    }

    /// Clusters per mesh column.
    pub fn clusters_y(&self) -> u16 {
        self.mesh.height() / self.cluster.h
    }

    /// Number of HNid bits (log2 of the number of home-node candidates the
    /// address selects between).
    pub fn hnid_bits(&self) -> u32 {
        match self.kind {
            OrganizationKind::Private => 0,
            OrganizationKind::Shared => (self.mesh.len() as u64).trailing_zeros(),
            _ => (self.cluster.tiles() as u64).trailing_zeros(),
        }
    }

    /// The cluster index containing `node`.
    pub fn cluster_of(&self, node: NodeId) -> usize {
        let c = self.mesh.coord(node);
        let cx = (c.x / self.cluster.w) as usize;
        let cy = (c.y / self.cluster.h) as usize;
        cy * self.clusters_x() as usize + cx
    }

    /// All tiles belonging to cluster `idx`.
    pub fn cluster_nodes(&self, idx: usize) -> Vec<NodeId> {
        let cx = (idx % self.clusters_x() as usize) as u16;
        let cy = (idx / self.clusters_x() as usize) as u16;
        let ox = cx * self.cluster.w;
        let oy = cy * self.cluster.h;
        let mut out = Vec::with_capacity(self.cluster.tiles());
        for y in 0..self.cluster.h {
            for x in 0..self.cluster.w {
                out.push(self.mesh.node_at(Coord::new(ox + x, oy + y)));
            }
        }
        out
    }

    /// The home node for `line` inside cluster `idx` (LOCO), or the chip-wide
    /// home (shared); for private organizations the home of any line is the
    /// requesting tile itself, so this returns the HNid-selected tile of the
    /// 1x1 "cluster", i.e. the cluster's only node.
    pub fn home_in_cluster(&self, idx: usize, line: LineAddr) -> NodeId {
        match self.kind {
            OrganizationKind::Shared => {
                NodeId((line.hnid(self.hnid_bits()) % self.mesh.len() as u64) as u16)
            }
            _ => {
                let hnid = line.hnid(self.hnid_bits()) as u16;
                let lx = hnid % self.cluster.w;
                let ly = hnid / self.cluster.w;
                let cx = (idx % self.clusters_x() as usize) as u16;
                let cy = (idx / self.clusters_x() as usize) as u16;
                self.mesh
                    .node_at(Coord::new(cx * self.cluster.w + lx, cy * self.cluster.h + ly))
            }
        }
    }

    /// The home L2 a request from `requester` for `line` is sent to.
    pub fn home_node(&self, requester: NodeId, line: LineAddr) -> NodeId {
        match self.kind {
            OrganizationKind::Private => requester,
            OrganizationKind::Shared => self.home_in_cluster(0, line),
            _ => self.home_in_cluster(self.cluster_of(requester), line),
        }
    }

    /// The home nodes of `line` in every cluster — the members of the
    /// virtual mesh (VMS) the line's global searches are broadcast on.
    pub fn vms_members(&self, line: LineAddr) -> Vec<NodeId> {
        (0..self.num_clusters())
            .map(|c| self.home_in_cluster(c, line))
            .collect()
    }

    /// A stable identifier of the VMS for `line` (its HNid value); lines with
    /// equal HNid share a virtual mesh and hence a multicast group.
    pub fn vms_id(&self, line: LineAddr) -> u64 {
        line.hnid(self.hnid_bits())
    }

    /// Number of distinct virtual meshes (= cluster size for LOCO).
    pub fn num_vms(&self) -> usize {
        match self.kind {
            OrganizationKind::Shared | OrganizationKind::Private => 0,
            _ => self.cluster.tiles(),
        }
    }

    /// Whether global data search uses VMS broadcasts.
    pub fn uses_vms(&self) -> bool {
        matches!(
            self.kind,
            OrganizationKind::LocoCcVms | OrganizationKind::LocoCcVmsIvr
        )
    }

    /// Whether evictions use inter-cluster victim replacement.
    pub fn uses_ivr(&self) -> bool {
        matches!(self.kind, OrganizationKind::LocoCcVmsIvr)
    }

    /// Whether global coherence goes through the directory at the memory
    /// controllers (private, LOCO CC) rather than broadcasts.
    pub fn uses_global_directory(&self) -> bool {
        matches!(
            self.kind,
            OrganizationKind::Private | OrganizationKind::LocoCc
        )
    }

    /// Whether the home L2 is the only L2 copy on the chip (shared cache).
    pub fn is_chip_wide_shared(&self) -> bool {
        self.kind == OrganizationKind::Shared
    }
}

/// Placement of the memory controllers and the address interleaving across
/// them (Table 1: four controllers, one on each edge of the chip).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryMap {
    controllers: Vec<NodeId>,
}

impl MemoryMap {
    /// The paper's placement: one controller at the midpoint of each chip
    /// edge.
    pub fn asplos(mesh: Mesh) -> Self {
        let mx = mesh.width() / 2;
        let my = mesh.height() / 2;
        MemoryMap {
            controllers: vec![
                mesh.node_at(Coord::new(mx, 0)),
                mesh.node_at(Coord::new(mx, mesh.height() - 1)),
                mesh.node_at(Coord::new(0, my)),
                mesh.node_at(Coord::new(mesh.width() - 1, my)),
            ],
        }
    }

    /// A custom placement.
    ///
    /// # Panics
    ///
    /// Panics if `controllers` is empty.
    pub fn new(controllers: Vec<NodeId>) -> Self {
        assert!(!controllers.is_empty(), "at least one memory controller required");
        MemoryMap { controllers }
    }

    /// All memory-controller nodes.
    pub fn controllers(&self) -> &[NodeId] {
        &self.controllers
    }

    /// The controller responsible for `line` (address-interleaved).
    pub fn controller_for(&self, line: LineAddr) -> NodeId {
        self.controllers[(line.0 % self.controllers.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh8() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn private_home_is_requester() {
        let org = Organization::private(mesh8());
        assert_eq!(org.home_node(NodeId(13), LineAddr(0xabc)), NodeId(13));
        assert_eq!(org.num_clusters(), 64);
        assert_eq!(org.hnid_bits(), 0);
    }

    #[test]
    fn shared_home_is_chip_wide_interleaved() {
        let org = Organization::shared(mesh8());
        assert_eq!(org.hnid_bits(), 6);
        let l = LineAddr(0b101_110);
        assert_eq!(org.home_node(NodeId(0), l), NodeId(0b101110));
        // Every requester maps to the same home.
        assert_eq!(org.home_node(NodeId(63), l), NodeId(0b101110));
        assert_eq!(org.num_clusters(), 1);
    }

    #[test]
    fn loco_4x4_home_stays_in_requesters_cluster() {
        let org = Organization::loco(
            mesh8(),
            OrganizationKind::LocoCcVms,
            ClusterShape::new(4, 4),
        );
        assert_eq!(org.num_clusters(), 4);
        assert_eq!(org.hnid_bits(), 4);
        for req in mesh8().nodes() {
            for raw in [0u64, 5, 15, 255, 1000] {
                let home = org.home_node(req, LineAddr(raw));
                assert_eq!(
                    org.cluster_of(home),
                    org.cluster_of(req),
                    "home {home} outside requester {req}'s cluster"
                );
            }
        }
    }

    #[test]
    fn loco_hnid_selects_distinct_homes_within_cluster() {
        let org = Organization::loco(
            mesh8(),
            OrganizationKind::LocoCc,
            ClusterShape::new(4, 4),
        );
        let homes: std::collections::HashSet<NodeId> = (0..16u64)
            .map(|h| org.home_node(NodeId(0), LineAddr(h)))
            .collect();
        assert_eq!(homes.len(), 16, "all 16 tiles of the cluster are homes");
    }

    #[test]
    fn vms_members_one_per_cluster_same_hnid() {
        let org = Organization::loco(
            mesh8(),
            OrganizationKind::LocoCcVms,
            ClusterShape::new(4, 4),
        );
        let line = LineAddr(11);
        let members = org.vms_members(line);
        assert_eq!(members.len(), 4);
        // All members have the same position within their cluster.
        let mesh = mesh8();
        let offsets: std::collections::HashSet<(u16, u16)> = members
            .iter()
            .map(|&m| {
                let c = mesh.coord(m);
                (c.x % 4, c.y % 4)
            })
            .collect();
        assert_eq!(offsets.len(), 1);
        assert_eq!(org.vms_id(line), 11);
    }

    #[test]
    fn cluster_shapes_4x1_and_8x1() {
        let org41 = Organization::loco(
            mesh8(),
            OrganizationKind::LocoCcVmsIvr,
            ClusterShape::new(4, 1),
        );
        assert_eq!(org41.num_clusters(), 16);
        assert_eq!(org41.hnid_bits(), 2);
        let org81 = Organization::loco(
            mesh8(),
            OrganizationKind::LocoCcVmsIvr,
            ClusterShape::new(8, 1),
        );
        assert_eq!(org81.num_clusters(), 8);
        assert_eq!(org81.hnid_bits(), 3);
    }

    #[test]
    fn cluster_nodes_partition_the_mesh() {
        let org = Organization::loco(
            Mesh::new(16, 16),
            OrganizationKind::LocoCcVms,
            ClusterShape::new(4, 4),
        );
        let mut seen = std::collections::HashSet::new();
        for c in 0..org.num_clusters() {
            for n in org.cluster_nodes(c) {
                assert_eq!(org.cluster_of(n), c);
                assert!(seen.insert(n));
            }
        }
        assert_eq!(seen.len(), 256);
    }

    #[test]
    fn organization_capability_flags() {
        let m = mesh8();
        assert!(Organization::private(m).uses_global_directory());
        assert!(!Organization::private(m).uses_vms());
        assert!(!Organization::shared(m).uses_global_directory());
        let cc = Organization::loco(m, OrganizationKind::LocoCc, ClusterShape::new(4, 4));
        assert!(cc.uses_global_directory() && !cc.uses_vms() && !cc.uses_ivr());
        let vms = Organization::loco(m, OrganizationKind::LocoCcVms, ClusterShape::new(4, 4));
        assert!(!vms.uses_global_directory() && vms.uses_vms() && !vms.uses_ivr());
        let ivr = Organization::loco(m, OrganizationKind::LocoCcVmsIvr, ClusterShape::new(4, 4));
        assert!(ivr.uses_vms() && ivr.uses_ivr());
    }

    #[test]
    #[should_panic(expected = "LOCO organization kind")]
    fn loco_constructor_rejects_baselines() {
        Organization::loco(mesh8(), OrganizationKind::Shared, ClusterShape::new(4, 4));
    }

    #[test]
    fn memory_map_places_four_edge_controllers() {
        let mm = MemoryMap::asplos(mesh8());
        assert_eq!(mm.controllers().len(), 4);
        let mesh = mesh8();
        for &c in mm.controllers() {
            let coord = mesh.coord(c);
            assert!(
                coord.x == 0 || coord.x == 7 || coord.y == 0 || coord.y == 7,
                "controller {c} not on an edge"
            );
        }
        // Interleaving covers all controllers.
        let used: std::collections::HashSet<NodeId> =
            (0..16u64).map(|l| mm.controller_for(LineAddr(l))).collect();
        assert_eq!(used.len(), 4);
    }
}
