//! Protocol-level integration tests: the L1/L2/directory/memory controllers
//! are wired together through an idealized instant-delivery bus (no NoC), so
//! these tests check coherence behaviour — single-writer, read-after-write
//! visibility, invalidation of sharers, IVR chains — independent of network
//! timing.

use loco::{Benchmark, OrganizationKind, SimulationBuilder};
use loco_cache::{
    Address, ClusterShape, DirectoryConfig, DirectoryController, L1Controller, L2Config,
    L2Controller, MemoryConfig, MemoryController, MemoryMap, MoesiState, Organization,
    OrganizationKind as Org, Outgoing, ProtocolMsg, Unit,
};
use loco_noc::{Mesh, NodeId};
use std::collections::VecDeque;

/// A tiny testbench: every tile has an L1 and an L2; directories and memory
/// controllers sit at the Table-1 edge nodes; messages are delivered in FIFO
/// order with no network delay.
struct Testbench {
    org: Organization,
    l1s: Vec<L1Controller>,
    l2s: Vec<L2Controller>,
    dirs: Vec<(NodeId, DirectoryController)>,
    mems: Vec<(NodeId, MemoryController)>,
    queue: VecDeque<ProtocolMsg>,
    time: u64,
}

impl Testbench {
    fn new(org: Organization) -> Self {
        let memmap = MemoryMap::asplos(org.mesh());
        let n = org.mesh().len();
        Testbench {
            org,
            l1s: (0..n)
                .map(|i| L1Controller::new(NodeId(i as u16), loco_cache::CacheGeometry::asplos_l1(), org))
                .collect(),
            l2s: (0..n)
                .map(|i| L2Controller::new(NodeId(i as u16), L2Config::default(), org, memmap.clone()))
                .collect(),
            dirs: memmap
                .controllers()
                .iter()
                .map(|&c| (c, DirectoryController::new(c, DirectoryConfig::default(), org)))
                .collect(),
            mems: memmap
                .controllers()
                .iter()
                .map(|&c| (c, MemoryController::new(c, MemoryConfig::default())))
                .collect(),
            queue: VecDeque::new(),
            time: 0,
        }
    }

    fn push_all(&mut self, out: Vec<Outgoing>, from: NodeId) {
        for o in out {
            // Broadcasts are expanded to every other home node of the VMS.
            if matches!(o.msg.kind, loco_cache::MsgKind::BcastGetS | loco_cache::MsgKind::BcastGetM) {
                for member in self.org.vms_members(o.msg.addr) {
                    if member != from {
                        let mut m = o.msg;
                        m.dst = loco_cache::Agent::l2(member);
                        self.queue.push_back(m);
                    }
                }
            } else {
                self.queue.push_back(o.msg);
            }
        }
    }

    /// Issues a core access and drains the protocol to quiescence.
    fn access(&mut self, core: u16, addr: u64, write: bool) {
        self.time += 100;
        let mut out = Vec::new();
        let res = self.l1s[core as usize].access(Address(addr), write, self.time, &mut out);
        self.push_all(out, NodeId(core));
        if res == loco_cache::L1Access::Hit {
            return;
        }
        // Alternate between draining the message queue and advancing the
        // memory controllers until the access completes (DRAM responses are
        // released by `MemoryController::tick`).
        for _ in 0..32 {
            self.drain();
            if !self.l1s[core as usize].is_blocked() {
                return;
            }
            self.time += 250;
            let time = self.time;
            let mut fired = Vec::new();
            for (node, mem) in &mut self.mems {
                let mut out = Vec::new();
                mem.tick(time, &mut out);
                fired.push((*node, out));
            }
            for (node, out) in fired {
                self.push_all(out, node);
            }
        }
        panic!("core {core} access to {addr:#x} never completed");
    }

    fn drain(&mut self) {
        let mut steps = 0;
        while let Some(msg) = self.queue.pop_front() {
            steps += 1;
            assert!(steps < 100_000, "protocol did not quiesce");
            self.time += 1;
            let node = msg.dst.node;
            let mut out = Vec::new();
            match msg.dst.unit {
                Unit::L1 => {
                    self.l1s[node.index()].handle(msg, self.time, &mut out);
                }
                Unit::L2 => self.l2s[node.index()].handle(msg, self.time, &mut out),
                Unit::Dir => {
                    self.dirs
                        .iter_mut()
                        .find(|(n, _)| *n == node)
                        .expect("directory node")
                        .1
                        .handle(msg, self.time, &mut out);
                }
                Unit::Mem => {
                    self.mems
                        .iter_mut()
                        .find(|(n, _)| *n == node)
                        .expect("memory node")
                        .1
                        .handle(msg, self.time, &mut out);
                }
            }
            self.push_all(out, node);
        }
    }

    /// All L2 slices holding `addr` and their states.
    fn holders(&self, addr: u64) -> Vec<(NodeId, MoesiState)> {
        let line = Address(addr).line(32);
        self.l2s
            .iter()
            .filter_map(|l2| l2.line_state(line).map(|s| (l2.node(), s)))
            .collect()
    }
}

fn loco_vms_org() -> Organization {
    Organization::loco(Mesh::new(8, 8), Org::LocoCcVms, ClusterShape::new(4, 4))
}

#[test]
fn read_then_remote_read_creates_exactly_one_owner_and_one_sharer() {
    let mut tb = Testbench::new(loco_vms_org());
    // Core 0 (cluster 0) reads, then core 36 (cluster 3) reads the same line.
    tb.access(0, 0x8000, false);
    let holders = tb.holders(0x8000);
    assert_eq!(holders.len(), 1, "one cluster caches the line after a cold read");
    assert!(holders[0].1.is_owner());

    tb.access(36, 0x8000, false);
    let holders = tb.holders(0x8000);
    assert_eq!(holders.len(), 2, "the reader's cluster replicates the line");
    let owners = holders.iter().filter(|(_, s)| s.is_owner()).count();
    assert_eq!(owners, 1, "exactly one owner across clusters: {holders:?}");
}

#[test]
fn write_invalidates_every_other_cluster() {
    let mut tb = Testbench::new(loco_vms_org());
    // Three clusters read the line.
    tb.access(0, 0x9000, false);
    tb.access(36, 0x9000, false);
    tb.access(60, 0x9000, false);
    assert!(tb.holders(0x9000).len() >= 2);
    // A core in cluster 1 writes.
    tb.access(7, 0x9000, true);
    let holders = tb.holders(0x9000);
    assert_eq!(holders.len(), 1, "only the writer's cluster keeps a copy: {holders:?}");
    assert_eq!(holders[0].1, MoesiState::M);
    // The writer's home node is in the writer's cluster.
    let org = loco_vms_org();
    assert_eq!(org.cluster_of(holders[0].0), org.cluster_of(NodeId(7)));
}

#[test]
fn write_after_read_by_same_cluster_is_a_local_upgrade() {
    let mut tb = Testbench::new(loco_vms_org());
    tb.access(1, 0xa000, false);
    tb.access(2, 0xa000, true); // same cluster as core 1
    let holders = tb.holders(0xa000);
    assert_eq!(holders.len(), 1);
    assert_eq!(holders[0].1, MoesiState::M);
}

#[test]
fn directory_based_private_baseline_maintains_single_writer() {
    let mut tb = Testbench::new(Organization::private(Mesh::new(8, 8)));
    tb.access(0, 0xb000, false);
    tb.access(9, 0xb000, false);
    tb.access(18, 0xb000, true);
    let holders = tb.holders(0xb000);
    assert_eq!(holders.len(), 1, "writer is the only holder: {holders:?}");
    assert_eq!(holders[0].0, NodeId(18));
    assert_eq!(holders[0].1, MoesiState::M);
}

#[test]
fn shared_baseline_keeps_a_single_l2_copy_chip_wide() {
    let mut tb = Testbench::new(Organization::shared(Mesh::new(8, 8)));
    tb.access(0, 0xc000, false);
    tb.access(13, 0xc000, false);
    tb.access(42, 0xc000, true);
    let holders = tb.holders(0xc000);
    assert_eq!(holders.len(), 1, "the shared LLC never replicates: {holders:?}");
}

#[test]
fn repeated_writes_from_alternating_clusters_converge() {
    let mut tb = Testbench::new(loco_vms_org());
    for round in 0..6u16 {
        let core = if round % 2 == 0 { 3 } else { 59 };
        tb.access(core, 0xd000, true);
        let holders = tb.holders(0xd000);
        assert_eq!(holders.len(), 1, "round {round}: {holders:?}");
        assert_eq!(holders[0].1, MoesiState::M);
    }
}

#[test]
fn ivr_full_simulation_preserves_forward_progress_under_pressure() {
    // System-level check (through the real NoC): a capacity-thrashing
    // benchmark with IVR still completes and produces migrations. The L2
    // slice is shrunk to 4 KB so the short trace already overflows it.
    let builder = SimulationBuilder::new()
        .mesh(4, 4)
        .cluster(2, 2)
        .benchmark(Benchmark::Canneal)
        .organization(OrganizationKind::LocoCcVmsIvr)
        .memory_ops_per_core(300);
    let mut cfg = builder.system_config();
    cfg.l2.geometry.size_bytes = 4 * 1024;
    let spec = Benchmark::Canneal.spec();
    let traces = loco::TraceGenerator::new(42).generate(&spec, cfg.num_cores(), 300);
    let r = loco::CmpSystem::new(cfg, traces).run(10_000_000);
    assert!(r.completed);
    assert!(r.cache.ivr_migrations > 0);
    // Migration chains terminate: accepted + denied accounting is sane.
    assert!(r.cache.ivr_accepted + r.cache.ivr_denied <= r.cache.ivr_migrations * 2);
}
