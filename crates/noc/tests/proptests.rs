//! Property-based tests of the NoC substrate: zero-load latencies of the
//! cycle-driven fabrics match the analytical model, routing always
//! terminates, and multicast trees cover every member exactly once.

use loco_noc::analytical::zero_load_latency;
use loco_noc::{
    Coord, Mesh, NetMessage, Network, NocConfig, NodeId, RouterKind, VirtualMesh, VirtualNetwork,
};
use proptest::prelude::*;

fn deliver_one(cfg: NocConfig, src: NodeId, dest: NodeId) -> (u64, u32) {
    let mut net: Network<()> = Network::new(cfg);
    net.inject(NetMessage::unicast(src, dest, VirtualNetwork::Request, 8, ()))
        .expect("inject into empty network");
    for _ in 0..20_000 {
        net.tick();
        if let Some(d) = net.eject(dest).pop() {
            return (d.latency, d.stops);
        }
    }
    panic!("message from {src} to {dest} never arrived");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An uncontended packet's latency on each fabric equals the analytical
    /// zero-load latency plus a small constant injection overhead.
    #[test]
    fn zero_load_latency_matches_analytical_model(
        width in 2u16..10,
        height in 2u16..10,
        src_raw in 0u16..100,
        dest_raw in 0u16..100,
        kind in prop_oneof![
            Just(RouterKind::Smart),
            Just(RouterKind::Conventional),
            Just(RouterKind::HighRadix),
        ],
    ) {
        let mesh = Mesh::new(width, height);
        let src = NodeId(src_raw % mesh.len() as u16);
        let dest = NodeId(dest_raw % mesh.len() as u16);
        prop_assume!(src != dest);
        let cfg = match kind {
            RouterKind::Smart => NocConfig::smart_mesh(width, height, 4),
            RouterKind::Conventional => NocConfig::conventional_mesh(width, height),
            RouterKind::HighRadix => NocConfig::highradix_mesh(width, height, 4),
        };
        let expected = zero_load_latency(&cfg, src, dest);
        let (latency, _) = deliver_one(cfg, src, dest);
        // Allow the 1-cycle injection plus up to 2 cycles of model slack
        // (ejection / pipeline rounding).
        prop_assert!(latency >= expected, "latency {latency} < analytical {expected}");
        prop_assert!(latency <= expected + 3, "latency {latency} >> analytical {expected}");
    }

    /// SMART never takes more stops than the XY hop count and never more
    /// cycles than the conventional fabric.
    #[test]
    fn smart_dominates_conventional(
        width in 2u16..9,
        height in 2u16..9,
        src_raw in 0u16..64,
        dest_raw in 0u16..64,
    ) {
        let mesh = Mesh::new(width, height);
        let src = NodeId(src_raw % mesh.len() as u16);
        let dest = NodeId(dest_raw % mesh.len() as u16);
        prop_assume!(src != dest);
        let (smart_lat, smart_stops) = deliver_one(NocConfig::smart_mesh(width, height, 4), src, dest);
        let (conv_lat, conv_stops) = deliver_one(NocConfig::conventional_mesh(width, height), src, dest);
        prop_assert!(smart_lat <= conv_lat);
        prop_assert!(smart_stops <= conv_stops);
        prop_assert_eq!(conv_stops as u16, mesh.hops(src, dest));
        prop_assert_eq!(smart_stops as u16, mesh.smart_hops(src, dest, 4));
    }

    /// Every virtual mesh (any legal cluster shape and home offset) is
    /// covered exactly once by the XY-tree broadcast, from any root.
    #[test]
    fn vms_broadcast_covers_every_member_exactly_once(
        cw_exp in 0u32..3,
        ch_exp in 0u32..3,
        off_x in 0u16..8,
        off_y in 0u16..8,
        root_idx in 0usize..64,
    ) {
        let mesh = Mesh::new(8, 8);
        let cw = 1u16 << cw_exp; // 1, 2, 4
        let ch = 1u16 << ch_exp;
        let offset = Coord::new(off_x % cw, off_y % ch);
        let vms = VirtualMesh::new(mesh, cw, ch, offset);
        prop_assume!(vms.len() > 1);
        let members = vms.members().to_vec();
        let root = members[root_idx % members.len()];

        let mut net: Network<u8> = Network::new(NocConfig::smart_mesh(8, 8, 4));
        let group = net.register_multicast_group(members.clone());
        net.inject(NetMessage::multicast(root, group, VirtualNetwork::Broadcast, 8, 0)).unwrap();
        let mut seen = std::collections::HashMap::new();
        for _ in 0..2_000 {
            net.tick();
            for &m in &members {
                for d in net.eject(m) {
                    *seen.entry(d.receiver).or_insert(0u32) += 1;
                }
            }
            if net.in_flight() == 0 {
                break;
            }
        }
        prop_assert_eq!(seen.len(), members.len() - 1, "missing receivers");
        prop_assert!(seen.values().all(|&c| c == 1), "duplicate deliveries: {:?}", seen);
        prop_assert!(!seen.contains_key(&root));
    }

    /// Mesh routing helpers are self-consistent: following `xy_next_dir`
    /// step by step reaches the destination in exactly `hops` steps.
    #[test]
    fn xy_routing_reaches_destination(
        width in 1u16..17,
        height in 1u16..17,
        a_raw in 0u16..300,
        b_raw in 0u16..300,
    ) {
        let mesh = Mesh::new(width, height);
        let a = NodeId(a_raw % mesh.len() as u16);
        let b = NodeId(b_raw % mesh.len() as u16);
        let mut cur = a;
        let mut steps = 0;
        while let Some(dir) = mesh.xy_next_dir(cur, b) {
            cur = mesh.neighbor(cur, dir).expect("route stays inside the mesh");
            steps += 1;
            prop_assert!(steps <= mesh.hops(a, b));
        }
        prop_assert_eq!(cur, b);
        prop_assert_eq!(steps, mesh.hops(a, b));
    }
}
