//! High-radix fabric: a Flattened-Butterfly-like mesh where every router has
//! dedicated express links to all routers within `HPCmax` hops along each
//! dimension (the paper's "high-radix routers" alternative, Section 4.2).
//!
//! Express links use the same clockless repeated wires as SMART, so a link
//! spanning up to `HPCmax` hops still takes one cycle — but the router now
//! has ~20 ports and needs multi-stage arbiters and crossbars, so every
//! *stop* costs a 4-stage pipeline instead of 1 (and there is no bypassing):
//! a home node is always one express hop away, yet each hop costs
//! `4 (router) + 1 (link)` cycles at both the source and any intermediate
//! turn.

use crate::config::NocConfig;
use crate::message::VirtualNetwork;
use crate::router::{
    ActiveSet, Arrival, Buffered, FabricEngine, FlightInfo, InputBuffers, LinkOccupancy, RoundRobin,
};
use crate::stats::FabricCounters;
use crate::topology::{Direction, Mesh, NodeId};

/// Input ports: 4 directions x HPCmax spans + 1 local. We fold all spans of a
/// direction into one input port (they share an input buffer pool) but keep
/// per-span output links for bandwidth accounting, which matches the "4x
/// higher bisection throughput" property the paper ascribes to this design.
const PORTS: usize = 5;

/// Lanes per router: 5 input ports x 5 virtual networks.
const LANES: usize = PORTS * VirtualNetwork::ALL.len();

/// One switch-allocation winner of the current cycle.
#[derive(Debug, Clone, Copy)]
struct Move {
    node: NodeId,
    port: usize,
    vn: VirtualNetwork,
    dir: Direction,
    span: u16,
}

/// The high-radix (Flattened-Butterfly-like) fabric engine.
#[derive(Debug)]
pub struct HighRadixFabric {
    cfg: NocConfig,
    mesh: Mesh,
    buffers: Vec<InputBuffers>,
    /// Routers currently holding at least one buffered packet.
    active: ActiveSet,
    arbiters: Vec<RoundRobin>,
    /// One link slot per (direction, span).
    links: LinkOccupancy,
    in_flight: usize,
    counters: FabricCounters,
    // Persistent per-tick scratch (steady state must not allocate).
    move_scratch: Vec<Move>,
    /// Downstream buffer slots reserved by earlier winners this cycle,
    /// indexed by `(node, port, vn)`; only the dirtied entries are reset.
    reserved_scratch: Vec<u8>,
    reserved_dirty: Vec<usize>,
    cand_scratch: [[usize; LANES]; 4],
    meta_scratch: [(usize, VirtualNetwork, u16); LANES],
}

impl HighRadixFabric {
    /// Builds the fabric for the given configuration.
    pub fn new(cfg: NocConfig) -> Self {
        let mesh = cfg.mesh;
        let nodes = mesh.len();
        let links_per_node = 4 * cfg.hpc_max as usize;
        HighRadixFabric {
            cfg,
            mesh,
            buffers: (0..nodes)
                .map(|_| InputBuffers::new(PORTS, cfg.vn_buffer_capacity()))
                .collect(),
            active: ActiveSet::new(nodes),
            arbiters: (0..nodes * 4).map(|_| RoundRobin::new()).collect(),
            links: LinkOccupancy::new(nodes, links_per_node),
            in_flight: 0,
            counters: FabricCounters::default(),
            move_scratch: Vec::new(),
            reserved_scratch: vec![0; nodes * PORTS * VirtualNetwork::ALL.len()],
            reserved_dirty: Vec::new(),
            cand_scratch: [[0; LANES]; 4],
            meta_scratch: [(0, VirtualNetwork::Request, 0); LANES],
        }
    }

    fn link_slot(&self, dir: Direction, span: u16) -> usize {
        debug_assert!(span >= 1 && span <= self.cfg.hpc_max);
        dir.index() * self.cfg.hpc_max as usize + (span as usize - 1)
    }

    /// Output direction and express-link span (up to `hpc_max`) for `flight`
    /// sitting at `at`, following XY ordering.
    fn desired(&self, at: NodeId, flight: &FlightInfo) -> Option<(Direction, u16)> {
        let dir = self.mesh.xy_next_dir(at, flight.dest)?;
        let here = self.mesh.coord(at);
        let there = self.mesh.coord(flight.dest);
        let remaining = if dir.is_horizontal() {
            here.x.abs_diff(there.x)
        } else {
            here.y.abs_diff(there.y)
        };
        Some((dir, remaining.min(self.cfg.hpc_max)))
    }
}

impl FabricEngine for HighRadixFabric {
    fn can_accept(&self, node: NodeId, vn: VirtualNetwork) -> bool {
        self.buffers[node.index()].has_space(Direction::Local.index(), vn)
    }

    fn inject(&mut self, flight: FlightInfo, now: u64) {
        self.buffers[flight.src.index()].push(
            Direction::Local.index(),
            flight.vn,
            Buffered {
                flight,
                ready_at: now + 1,
            },
        );
        self.active.set(flight.src.index());
        self.in_flight += 1;
        self.counters.buffer_writes += 1;
    }

    fn tick(&mut self, now: u64, arrivals: &mut Vec<Arrival>) {
        // All fabric packets live in router buffers between ticks; an empty
        // fabric has nothing to arbitrate and nothing to move.
        if self.in_flight == 0 {
            return;
        }

        // One arbitration per output *direction*; the winner then uses the
        // express link matching its span. This under-uses the extra
        // bandwidth slightly but keeps the multi-stage arbiter abstraction
        // honest (a single input can only feed one output per cycle). A
        // single pass over each active router's occupied lanes buckets the
        // candidates per direction in lane order, so round-robin outcomes
        // match the naive one-scan-per-direction formulation bit for bit.
        let mut moves = std::mem::take(&mut self.move_scratch);
        debug_assert!(moves.is_empty() && self.reserved_dirty.is_empty());
        let reserve_idx = |node: NodeId, port: usize, vn: VirtualNetwork| {
            (node.index() * PORTS + port) * VirtualNetwork::ALL.len() + vn.index()
        };

        for node_idx in self.active.iter() {
            let node = NodeId(node_idx as u16);
            let bufs = &self.buffers[node_idx];
            debug_assert!(!bufs.is_empty(), "active set out of sync");
            let mut cand_len = [0usize; 4];
            for (lane_idx, port, vn) in bufs.occupied_lanes() {
                let head = bufs.head(port, vn).expect("occupied lane has a head");
                if head.ready_at > now {
                    continue;
                }
                let Some((d, span)) = self.desired(node, &head.flight) else {
                    continue;
                };
                if span == 0 || !self.links.is_free(node, self.link_slot(d, span), now) {
                    continue;
                }
                let landing = self.mesh.advance(node, d, span);
                let dport = d.opposite().index();
                let occ = self.buffers[landing.index()].occupancy(dport, vn)
                    + self.reserved_scratch[reserve_idx(landing, dport, vn)] as usize;
                if landing != head.flight.dest && occ >= self.cfg.vn_buffer_capacity() {
                    continue;
                }
                let di = d.index();
                self.cand_scratch[di][cand_len[di]] = lane_idx;
                cand_len[di] += 1;
                self.meta_scratch[lane_idx] = (port, vn, span);
            }
            for dir in Direction::CARDINAL {
                let di = dir.index();
                if cand_len[di] == 0 {
                    continue;
                }
                let arb = &mut self.arbiters[node_idx * 4 + dir.index()];
                if let Some(winner) = arb.pick(&self.cand_scratch[di][..cand_len[di]], LANES) {
                    let (port, vn, span) = self.meta_scratch[winner];
                    let landing = self.mesh.advance(node, dir, span);
                    let dport = dir.opposite().index();
                    let ridx = reserve_idx(landing, dport, vn);
                    self.reserved_scratch[ridx] += 1;
                    self.reserved_dirty.push(ridx);
                    moves.push(Move {
                        node,
                        port,
                        vn,
                        dir,
                        span,
                    });
                }
            }
        }

        for mv in moves.drain(..) {
            let buffered = self.buffers[mv.node.index()]
                .pop(mv.port, mv.vn)
                .expect("winner packet present");
            if self.buffers[mv.node.index()].is_empty() {
                self.active.clear(mv.node.index());
            }
            let mut flight = buffered.flight;
            let flits = flight.flits as u64;
            // Event accounting: one buffer read and one (multi-stage)
            // crossbar pass at the winning router, one express link whose
            // wire spans `span` mesh hops, a full pipeline pass and a latch
            // at the landing router.
            self.counters.buffer_reads += 1;
            self.counters.crossbar_traversals += 1;
            self.counters.express_traversals += 1;
            self.counters.link_flit_hops += u64::from(mv.span) * flits;
            self.counters.pipeline_passes += 1;
            self.counters.stop_hops += 1;
            self.links
                .occupy(mv.node, self.link_slot(mv.dir, mv.span), now + flits);
            let landing = self.mesh.advance(mv.node, mv.dir, mv.span);
            // The multi-stage router pipeline is charged at the *downstream*
            // stop (the packet must go through the full pipeline before it
            // can be switched again or ejected), plus one link cycle and
            // serialization.
            let pipeline = u64::from(self.cfg.router_pipeline);
            let arrival_cycle = now + 1 + (flits - 1) + pipeline;
            flight.stops += 1;
            if landing == flight.dest {
                self.in_flight -= 1;
                arrivals.push(Arrival {
                    flight,
                    at: landing,
                    now: arrival_cycle,
                });
            } else {
                self.counters.buffer_writes += 1;
                self.buffers[landing.index()].push(
                    mv.dir.opposite().index(),
                    mv.vn,
                    Buffered {
                        flight,
                        ready_at: arrival_cycle + 1,
                    },
                );
                self.active.set(landing.index());
            }
        }
        self.move_scratch = moves;
        while let Some(ridx) = self.reserved_dirty.pop() {
            self.reserved_scratch[ridx] = 0;
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // Same shape as the other engines: a head is eligible once it is
        // ready and the express link matching its span is free; the
        // downstream-occupancy check can only delay a move further, and a
        // candidate-free tick is a no-op, so this minimum is a safe wake-up.
        let mut next: Option<u64> = None;
        for node_idx in self.active.iter() {
            let node = NodeId(node_idx as u16);
            let bufs = &self.buffers[node_idx];
            for (_, port, vn) in bufs.occupied_lanes() {
                let head = bufs.head(port, vn).expect("occupied lane has a head");
                let Some((dir, span)) = self.desired(node, &head.flight) else {
                    continue;
                };
                if span == 0 {
                    continue;
                }
                let e = head
                    .ready_at
                    .max(self.links.free_at(node, self.link_slot(dir, span)))
                    .max(now);
                if e == now {
                    return Some(now);
                }
                next = Some(next.map_or(e, |n| n.min(e)));
            }
        }
        next
    }

    fn in_flight(&self) -> usize {
        self.in_flight
    }

    fn counters(&self) -> &FabricCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::PacketId;
    use crate::smart::SmartFabric;

    fn flight(id: u64, src: u16, dest: u16, flits: u32) -> FlightInfo {
        FlightInfo {
            id: PacketId(id),
            src: NodeId(src),
            dest: NodeId(dest),
            vn: VirtualNetwork::Request,
            flits,
            injected_at: 0,
            stops: 0,
        }
    }

    fn drain<F: FabricEngine>(fab: &mut F, cycles: u64) -> Vec<Arrival> {
        let mut arrivals = Vec::new();
        for now in 0..cycles {
            fab.tick(now, &mut arrivals);
        }
        arrivals
    }

    #[test]
    fn single_express_hop_pays_pipeline_cost() {
        let cfg = NocConfig::highradix_mesh(8, 8, 4);
        let mut fab = HighRadixFabric::new(cfg);
        fab.inject(flight(1, 0, 4, 1), 0);
        let arr = drain(&mut fab, 30);
        assert_eq!(arr.len(), 1);
        // 1 cycle injection-ready + 1 link + 4-stage pipeline ~ 6 cycles,
        // clearly more than SMART's 2-3 for the same distance.
        let latency = arr[0].now;
        assert!((5..=8).contains(&latency), "latency {latency}");
    }

    #[test]
    fn highradix_slower_than_smart_within_cluster() {
        let hr_cfg = NocConfig::highradix_mesh(8, 8, 4);
        let s_cfg = NocConfig::smart_mesh(8, 8, 4);
        let mut hr = HighRadixFabric::new(hr_cfg);
        let mut sm = SmartFabric::new(s_cfg);
        hr.inject(flight(1, 0, 3, 1), 0);
        sm.inject(flight(1, 0, 3, 1), 0);
        let h = drain(&mut hr, 50)[0].now;
        let s = drain(&mut sm, 50)[0].now;
        assert!(h > s, "high-radix {h} should exceed SMART {s}");
    }

    #[test]
    fn xy_turn_costs_two_express_hops() {
        let cfg = NocConfig::highradix_mesh(8, 8, 4);
        let mut fab = HighRadixFabric::new(cfg);
        let dest = 8 * 4 + 4; // 4 east + 4 north
        fab.inject(flight(1, 0, dest, 1), 0);
        let arr = drain(&mut fab, 50);
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].flight.stops, 2);
    }

    #[test]
    fn long_distance_uses_multiple_express_hops() {
        let cfg = NocConfig::highradix_mesh(16, 16, 4);
        let mut fab = HighRadixFabric::new(cfg);
        // 15 hops east = 4 express hops.
        fab.inject(flight(1, 0, 15, 1), 0);
        let arr = drain(&mut fab, 80);
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].flight.stops, 4);
    }

    #[test]
    fn next_event_bounds_every_state_change_from_below() {
        let cfg = NocConfig::highradix_mesh(8, 8, 4);
        let mut fab = HighRadixFabric::new(cfg);
        assert_eq!(fab.next_event(0), None, "empty fabric has no events");
        // 4 east + 4 north: two express hops with a stop at the turn router.
        fab.inject(flight(1, 0, 8 * 4 + 4, 1), 0);
        assert_eq!(fab.next_event(0), Some(1));
        let mut arrivals = Vec::new();
        let mut now = 0;
        while fab.in_flight() > 0 {
            let e = fab.next_event(now).expect("packet in flight");
            assert!(e >= now, "bound must not regress");
            for t in now..e {
                fab.tick(t, &mut arrivals);
                assert!(arrivals.is_empty(), "state changed before the bound");
            }
            fab.tick(e, &mut arrivals);
            now = e + 1;
            assert!(now < 100, "packet never arrived");
        }
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].flight.stops, 2);
        assert_eq!(fab.next_event(now), None, "drained fabric is quiescent");
    }

    #[test]
    fn next_event_opens_a_skip_window_under_partial_occupancy() {
        // A packet that lands at an intermediate stop sits out the 4-stage
        // pipeline before it can be switched again: the fabric holds it the
        // whole time, yet the probe must name that future ready cycle so the
        // scheduler can skip the pipeline wait (the old drain-only probe
        // stepped through it cycle by cycle).
        let cfg = NocConfig::highradix_mesh(16, 1, 4);
        let mut fab = HighRadixFabric::new(cfg);
        // 15 hops east: 4 express hops with 3 intermediate stops.
        fab.inject(flight(1, 0, 15, 1), 0);
        let mut arrivals = Vec::new();
        fab.tick(0, &mut arrivals);
        fab.tick(1, &mut arrivals); // first express hop launches
        assert_eq!(fab.in_flight(), 1, "packet still inside the fabric");
        let e = fab.next_event(2).expect("packet in flight");
        assert!(
            e > 2,
            "the pipeline wait at the landing router must be skippable, got {e}"
        );
        let before = *fab.counters();
        for t in 2..e {
            fab.tick(t, &mut arrivals);
            assert!(arrivals.is_empty(), "state changed before the bound");
            assert_eq!(*fab.counters(), before, "counters moved in a dead cycle");
        }
        let mut now = e;
        while fab.in_flight() > 0 {
            fab.tick(now, &mut arrivals);
            now += 1;
            assert!(now < 200, "packet never arrived");
        }
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].flight.stops, 4);
    }

    #[test]
    fn event_counters_charge_pipeline_passes_and_wire_spans() {
        let cfg = NocConfig::highradix_mesh(8, 8, 4);
        let mut fab = HighRadixFabric::new(cfg);
        // One 4-hop express link: a single move whose wire spans 4 hops.
        fab.inject(flight(1, 0, 4, 1), 0);
        drain(&mut fab, 30);
        let c = *fab.counters();
        assert_eq!(c.express_traversals, 1);
        assert_eq!(c.pipeline_passes, 1);
        assert_eq!(c.link_flit_hops, 4, "express wire length is span-weighted");
        assert_eq!(c.crossbar_traversals, 1);
        assert_eq!(c.stop_hops, 1);
        assert_eq!(c.buffer_writes, 1, "injection only");
        assert_eq!(c.ssr_broadcasts, 0, "no SSRs on a high-radix fabric");
    }

    #[test]
    fn per_span_links_allow_parallel_transfers() {
        // Two packets leaving node 0 eastwards with different spans use
        // different express links and need not fully serialize.
        let cfg = NocConfig::highradix_mesh(8, 1, 4);
        let mut fab = HighRadixFabric::new(cfg);
        fab.inject(flight(1, 0, 4, 4), 0);
        fab.inject(flight(2, 0, 2, 4), 0);
        let arr = drain(&mut fab, 60);
        assert_eq!(arr.len(), 2);
    }
}
