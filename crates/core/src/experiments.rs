//! Experiment runners reproducing every table and figure of the paper's
//! evaluation (Section 4).
//!
//! Since the campaign-engine refactor the heavy lifting lives in
//! [`crate::campaign`]: every figure is a [`crate::campaign::FigureSpec`]
//! with a pure *enumerate* pass (which [`crate::campaign::Scenario`]s it
//! needs) and a pure *assemble* pass (how the [`Figure`] is built from a
//! completed [`crate::campaign::ResultSet`]). The [`Runner`] here is kept as
//! a convenient sequential shim over those layers: it memoizes simulation
//! runs in a `Scenario`-keyed `Arc<SimResults>` cache, so composing several
//! figures over the same configuration matrix never re-simulates — and
//! never deep-clones a result either. For parallel campaigns use
//! [`crate::campaign::Executor`] (or the `reproduce` CLI, which emits
//! `EXPERIMENTS.md` mechanically).

use crate::campaign::{run_multiprogram_workload, run_scenario, FigureSpec, ResultSet, Scenario};
use crate::report::Figure;
use loco_cache::{ClusterShape, OrganizationKind};
use loco_noc::RouterKind;
use loco_sim::{SimResults, SystemConfig};
use loco_workloads::{Benchmark, MultiProgramWorkload};
use std::sync::Arc;

/// Scale parameters of an experiment campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExperimentParams {
    /// Mesh width in tiles.
    pub mesh_width: u16,
    /// Mesh height in tiles.
    pub mesh_height: u16,
    /// Default LOCO cluster shape.
    pub cluster: ClusterShape,
    /// Memory operations generated per core.
    pub mem_ops_per_core: u64,
    /// Trace-generation seed.
    pub seed: u64,
    /// Simulation cycle budget per run.
    pub max_cycles: u64,
    /// Divisor applied to both the cache capacities (L1 / L2 slice) and the
    /// benchmarks' working sets. The paper runs billions of instructions
    /// against the Table-1 caches; our traces are orders of magnitude
    /// shorter, so scaling caches and working sets together keeps the
    /// capacity-pressure *regime* identical while runs stay tractable
    /// (see DESIGN.md §3). Set to 1 for unscaled Table-1 capacities.
    pub working_set_scale: u64,
}

impl ExperimentParams {
    /// The paper's 64-core CMP (8x8 mesh, 4x4 clusters).
    pub fn paper_64() -> Self {
        ExperimentParams {
            mesh_width: 8,
            mesh_height: 8,
            cluster: ClusterShape::new(4, 4),
            mem_ops_per_core: 2_000,
            seed: 42,
            max_cycles: 50_000_000,
            working_set_scale: 8,
        }
    }

    /// The paper's 256-core CMP (16x16 mesh, 4x4 clusters). The per-core
    /// trace is shorter, mirroring the paper's own 2-billion-instruction cap
    /// on trace-driven runs.
    pub fn paper_256() -> Self {
        ExperimentParams {
            mesh_width: 16,
            mesh_height: 16,
            mem_ops_per_core: 700,
            ..Self::paper_64()
        }
    }

    /// A reduced 16-core configuration for unit tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentParams {
            mesh_width: 4,
            mesh_height: 4,
            cluster: ClusterShape::new(2, 2),
            mem_ops_per_core: 200,
            seed: 42,
            max_cycles: 5_000_000,
            working_set_scale: 8,
        }
    }

    /// Scales the trace length (e.g. `with_mem_ops(500)` for faster runs).
    pub fn with_mem_ops(mut self, mem_ops: u64) -> Self {
        self.mem_ops_per_core = mem_ops;
        self
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.mesh_width as usize * self.mesh_height as usize
    }

    /// A short label ("64-core", "256-core", ...).
    pub fn label(&self) -> String {
        format!("{}-core", self.num_cores())
    }

    pub(crate) fn system(
        &self,
        org: OrganizationKind,
        router: RouterKind,
        cluster: ClusterShape,
        fs: bool,
    ) -> SystemConfig {
        let mut cfg = SystemConfig::asplos_64(org)
            .with_router(router)
            .with_cluster(cluster)
            .with_full_system(fs);
        cfg.mesh_width = self.mesh_width;
        cfg.mesh_height = self.mesh_height;
        let scale = self.working_set_scale.max(1);
        cfg.l1.size_bytes = (cfg.l1.size_bytes / scale).max(1024);
        cfg.l2.geometry.size_bytes = (cfg.l2.geometry.size_bytes / scale).max(2048);
        cfg
    }

    pub(crate) fn scaled_spec(&self, benchmark: Benchmark) -> loco_workloads::BenchmarkSpec {
        benchmark.spec().scaled_down(self.working_set_scale.max(1))
    }
}

/// Memoizing sequential experiment runner — a thin shim over the campaign
/// engine (see the module docs and [`crate::campaign`]).
#[derive(Debug)]
pub struct Runner {
    params: ExperimentParams,
    cache: ResultSet,
    runs: u64,
}

impl Runner {
    /// Creates a runner for the given scale.
    pub fn new(params: ExperimentParams) -> Self {
        Runner {
            params,
            cache: ResultSet::new(),
            runs: 0,
        }
    }

    /// The scale parameters.
    pub fn params(&self) -> &ExperimentParams {
        &self.params
    }

    /// Number of distinct simulations executed so far.
    pub fn simulations_run(&self) -> u64 {
        self.runs
    }

    /// The memoized results accumulated so far (a campaign
    /// [`ResultSet`] — usable directly with [`FigureSpec::assemble`]).
    pub fn results(&self) -> &ResultSet {
        &self.cache
    }

    /// Runs (or returns the memoized result of) one scenario.
    pub fn run_scenario(&mut self, scenario: Scenario) -> Arc<SimResults> {
        if let Some(r) = self.cache.get_arc(&scenario) {
            return Arc::clone(r);
        }
        let r = Arc::new(run_scenario(&self.params, scenario));
        self.runs += 1;
        self.cache.insert(scenario, Arc::clone(&r));
        r
    }

    /// Runs (or returns the memoized result of) one configuration.
    pub fn run(
        &mut self,
        benchmark: Benchmark,
        org: OrganizationKind,
        router: RouterKind,
        cluster: ClusterShape,
        full_system: bool,
    ) -> Arc<SimResults> {
        self.run_scenario(Scenario::Trace {
            benchmark,
            org,
            router,
            cluster,
            full_system,
        })
    }

    /// Shorthand: SMART NoC, default cluster, trace-driven.
    pub fn run_default(&mut self, benchmark: Benchmark, org: OrganizationKind) -> Arc<SimResults> {
        self.run(benchmark, org, RouterKind::Smart, self.params.cluster, false)
    }

    /// Sequentially runs whatever the figure still needs and assembles it.
    fn figure(&mut self, spec: FigureSpec) -> Vec<Figure> {
        for scenario in spec.enumerate(&self.params) {
            self.run_scenario(scenario);
        }
        spec.assemble(&self.params, &self.cache)
    }

    fn single(&mut self, spec: FigureSpec) -> Figure {
        let mut figs = self.figure(spec);
        debug_assert_eq!(figs.len(), 1);
        figs.remove(0)
    }

    // ------------------------------------------------------------ Figure 6

    /// Figure 6: run time of the private-cache baseline normalized to the
    /// distributed shared cache (both on SMART NoCs).
    pub fn fig06_private_vs_shared(&mut self, benchmarks: &[Benchmark]) -> Figure {
        self.single(FigureSpec::Fig06 {
            benchmarks: benchmarks.to_vec(),
        })
    }

    // ------------------------------------------------------------ Figure 7

    /// Figure 7: increase of average L2 hit latency over the private-cache
    /// baseline, for the shared cache and for LOCO.
    pub fn fig07_l2_hit_latency(&mut self, benchmarks: &[Benchmark]) -> Figure {
        self.single(FigureSpec::Fig07 {
            benchmarks: benchmarks.to_vec(),
        })
    }

    // ------------------------------------------------------------ Figure 8

    /// Figure 8: L2 misses per thousand instructions, shared cache vs. LOCO.
    pub fn fig08_mpki(&mut self, benchmarks: &[Benchmark]) -> Figure {
        self.single(FigureSpec::Fig08 {
            benchmarks: benchmarks.to_vec(),
        })
    }

    // ------------------------------------------------------------ Figure 9

    /// Figure 9: on-chip data-search delay, LOCO CC (directory indirection)
    /// vs. LOCO CC+VMS (broadcast on the virtual mesh).
    pub fn fig09_search_delay(&mut self, benchmarks: &[Benchmark]) -> Figure {
        self.single(FigureSpec::Fig09 {
            benchmarks: benchmarks.to_vec(),
        })
    }

    // ----------------------------------------------------------- Figure 10

    /// Figure 10: off-chip memory accesses normalized to the shared cache,
    /// with and without inter-cluster victim replacement.
    pub fn fig10_offchip(&mut self, benchmarks: &[Benchmark]) -> Figure {
        self.single(FigureSpec::Fig10 {
            benchmarks: benchmarks.to_vec(),
        })
    }

    // ----------------------------------------------------------- Figure 11

    /// Figure 11: run time of each LOCO feature, normalized to the shared
    /// cache baseline.
    pub fn fig11_runtime(&mut self, benchmarks: &[Benchmark]) -> Figure {
        self.single(FigureSpec::Fig11 {
            benchmarks: benchmarks.to_vec(),
        })
    }

    // ------------------------------------------------------ Figures 12 & 13

    /// Figure 12a: LOCO's L2 hit latency increase (over private) under
    /// SMART, conventional and high-radix NoCs.
    pub fn fig12_l2_latency(&mut self, benchmarks: &[Benchmark]) -> Figure {
        self.figure(FigureSpec::Fig12 {
            benchmarks: benchmarks.to_vec(),
        })
        .remove(0)
    }

    /// Figure 12b: LOCO's on-chip data-search delay under the three NoCs.
    pub fn fig12_search_delay(&mut self, benchmarks: &[Benchmark]) -> Figure {
        self.figure(FigureSpec::Fig12 {
            benchmarks: benchmarks.to_vec(),
        })
        .remove(1)
    }

    /// Figure 13: LOCO run time under the three NoCs, normalized to the
    /// shared cache running atop the SMART NoC.
    pub fn fig13_noc_runtime(&mut self, benchmarks: &[Benchmark]) -> Figure {
        self.single(FigureSpec::Fig13 {
            benchmarks: benchmarks.to_vec(),
        })
    }

    // ----------------------------------------------------------- Figure 14

    /// Figure 14: LOCO with different cluster shapes. Returns the four
    /// sub-figures (hit latency, MPKI, search delay, normalized runtime).
    pub fn fig14_cluster_size(&mut self, benchmarks: &[Benchmark], shapes: &[ClusterShape]) -> Vec<Figure> {
        self.figure(FigureSpec::Fig14 {
            benchmarks: benchmarks.to_vec(),
            shapes: shapes.to_vec(),
        })
    }

    // ----------------------------------------------------------- Figure 15

    /// Figure 15: multi-program workloads W0–W9 (Table 2). Returns
    /// (normalized off-chip accesses, normalized runtime); series are the
    /// shared cache, the clustered cache baseline (LOCO CC) and full LOCO.
    pub fn fig15_multiprogram(&mut self, workloads: &[usize]) -> (Figure, Figure) {
        let mut figs = self.figure(FigureSpec::Fig15 {
            workloads: workloads.to_vec(),
        });
        let runtime = figs.remove(1);
        let offchip = figs.remove(0);
        (offchip, runtime)
    }

    /// Runs one Table-2 workload under one organization (unmemoized — the
    /// workload may be arbitrary, not just a Table-2 entry; campaign
    /// scenarios key Table-2 workloads by index instead).
    pub fn run_multiprogram(&mut self, workload: &MultiProgramWorkload, org: OrganizationKind) -> SimResults {
        self.runs += 1;
        run_multiprogram_workload(&self.params, workload, org)
    }

    // ----------------------------------------------------------- Figure 16

    /// Figure 16a: full-system (synchronization-aware) MPKI, shared vs LOCO.
    pub fn fig16_mpki(&mut self, benchmarks: &[Benchmark]) -> Figure {
        self.figure(FigureSpec::Fig16 {
            benchmarks: benchmarks.to_vec(),
        })
        .remove(0)
    }

    /// Figure 16b: full-system normalized runtime of the LOCO variants
    /// against the shared cache.
    pub fn fig16_runtime(&mut self, benchmarks: &[Benchmark]) -> Figure {
        self.figure(FigureSpec::Fig16 {
            benchmarks: benchmarks.to_vec(),
        })
        .remove(1)
    }

    // ------------------------------------------------- Figures 17 & 18 (energy)

    /// Figures 17a+17b: energy per instruction by cache organization and the
    /// subsystem (NoC / L1 / L2 / directory / VMS+IVR / DRAM) breakdown.
    pub fn fig17_energy(&mut self, benchmarks: &[Benchmark]) -> Vec<Figure> {
        self.figure(FigureSpec::Fig17Energy {
            benchmarks: benchmarks.to_vec(),
        })
    }

    /// Figure 18: energy-delay product of full LOCO by cluster shape,
    /// normalized to the shared-cache baseline.
    pub fn fig18_edp(&mut self, benchmarks: &[Benchmark], shapes: &[ClusterShape]) -> Figure {
        self.single(FigureSpec::Fig18Edp {
            benchmarks: benchmarks.to_vec(),
            shapes: shapes.to_vec(),
        })
    }

    // ------------------------------------------------- Figure 19 (stress)

    /// Figure 19: runtime of the stall-heavy stress workloads
    /// (barrier-phased, DRAM-bound) under the three NoCs, normalized to the
    /// SMART NoC.
    pub fn fig19_stall(&mut self) -> Figure {
        self.single(FigureSpec::Fig19Stall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_benchmarks() -> Vec<Benchmark> {
        vec![Benchmark::Lu, Benchmark::Blackscholes]
    }

    #[test]
    fn runner_memoizes_identical_configurations() {
        let mut r = Runner::new(ExperimentParams::quick());
        let a = r.run_default(Benchmark::Lu, OrganizationKind::Shared);
        let runs_after_first = r.simulations_run();
        let b = r.run_default(Benchmark::Lu, OrganizationKind::Shared);
        assert_eq!(r.simulations_run(), runs_after_first);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        // The memoized handle is shared, not cloned: both callers plus the
        // cache itself hold the same allocation.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(Arc::strong_count(&a), 3);
    }

    #[test]
    fn fig06_has_one_series_with_average() {
        let mut r = Runner::new(ExperimentParams::quick());
        let fig = r.fig06_private_vs_shared(&quick_benchmarks());
        assert_eq!(fig.series.len(), 1);
        assert_eq!(fig.x_labels.len(), 3); // 2 benchmarks + AVG
        assert!(fig.average_of("Private Cache").unwrap() > 0.0);
    }

    #[test]
    fn fig11_normalizes_shared_to_one() {
        let mut r = Runner::new(ExperimentParams::quick());
        let fig = r.fig11_runtime(&quick_benchmarks());
        assert_eq!(fig.series.len(), 4);
        let shared_avg = fig.average_of("Shared Cache").unwrap();
        assert!((shared_avg - 1.0).abs() < 1e-9);
        for s in &fig.series {
            for v in &s.values {
                assert!(*v > 0.0 && v.is_finite());
            }
        }
    }

    #[test]
    fn fig09_search_delay_produces_positive_values() {
        let mut r = Runner::new(ExperimentParams::quick());
        let fig = r.fig09_search_delay(&[Benchmark::Barnes]);
        assert_eq!(fig.series.len(), 2);
        assert!(fig.average_of("LOCO CC+VMS").unwrap() > 0.0);
    }

    #[test]
    fn fig15_runs_a_truncated_workload_on_the_quick_mesh() {
        let mut r = Runner::new(ExperimentParams::quick());
        let (off, run) = r.fig15_multiprogram(&[0]);
        assert_eq!(off.series.len(), 3);
        assert_eq!(run.series.len(), 3);
        assert!(run.average_of("Shared Cache").unwrap() > 0.0);
    }

    #[test]
    fn run_multiprogram_accepts_arbitrary_workloads() {
        let mut r = Runner::new(ExperimentParams::quick().with_mem_ops(100));
        let w = MultiProgramWorkload::table2_entry(0);
        let direct = r.run_multiprogram(&w, OrganizationKind::Shared);
        let keyed = r.run_scenario(Scenario::MultiProgram {
            workload: 0,
            org: OrganizationKind::Shared,
        });
        // The scenario-keyed path and the direct path are the same
        // simulation.
        assert_eq!(format!("{direct:?}"), format!("{:?}", *keyed));
    }
}
