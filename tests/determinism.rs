//! Regression tests locking in end-to-end determinism: with the in-tree
//! SplitMix64 PRNG seams, the same seed must produce bit-identical traces
//! and bit-identical simulation results on every platform and every run.

use loco::{Benchmark, OrganizationKind, SimResults, SimulationBuilder, TraceGenerator};

/// Two generators with the same seed emit bit-identical traces; a different
/// seed diverges.
#[test]
fn trace_generation_is_bit_identical_for_a_seed() {
    for benchmark in [Benchmark::Lu, Benchmark::Fft, Benchmark::Swaptions] {
        let spec = benchmark.spec();
        let a = TraceGenerator::new(0xdead_beef).generate(&spec, 16, 1_000);
        let b = TraceGenerator::new(0xdead_beef).generate(&spec, 16, 1_000);
        assert_eq!(a, b, "{benchmark:?}: same seed must give identical traces");
        let c = TraceGenerator::new(0xdead_beef + 1).generate(&spec, 16, 1_000);
        assert_ne!(a, c, "{benchmark:?}: different seeds must diverge");
    }
}

/// The exact byte-level shape of a seeded trace never changes across
/// releases: a golden fingerprint of the op stream.
#[test]
fn trace_generation_matches_golden_fingerprint() {
    let spec = Benchmark::Lu.spec();
    let traces = TraceGenerator::new(42).generate(&spec, 4, 200);
    // A cheap order-sensitive fold over all ops of all threads.
    let mut fingerprint: u64 = 0xcbf2_9ce4_8422_2325;
    for trace in &traces {
        for op in trace.ops() {
            let (tag, payload) = match *op {
                loco_workloads::TraceOp::Read(a) => (1u64, a),
                loco_workloads::TraceOp::Write(a) => (2, a),
                loco_workloads::TraceOp::Compute(n) => (3, u64::from(n)),
                loco_workloads::TraceOp::Barrier(b) => (4, u64::from(b)),
            };
            fingerprint = fingerprint.wrapping_mul(0x100_0000_01b3).rotate_left(7) ^ tag ^ payload;
        }
    }
    // Locked in at bring-up. If an intentional generator change invalidates
    // it, update the constant and call the change out in the PR.
    assert_eq!(
        fingerprint, 0x5e4d_23cd_27b9_4380,
        "fingerprint {fingerprint:#x}"
    );
}

fn run_with_seed(seed: u64) -> SimResults {
    SimulationBuilder::new()
        .mesh(4, 4)
        .cluster(2, 2)
        .organization(OrganizationKind::LocoCcVmsIvr)
        .benchmark(Benchmark::Barnes)
        .memory_ops_per_core(300)
        .seed(seed)
        .run()
}

/// The full simulation (trace generation, NoC arbitration, IVR victim
/// steering) is a pure function of the seed.
#[test]
fn simulation_results_are_bit_identical_for_a_seed() {
    let a = run_with_seed(7);
    let b = run_with_seed(7);
    assert!(a.completed);
    assert_eq!(a.runtime_cycles, b.runtime_cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.offchip_accesses, b.offchip_accesses);
    // Debug formatting covers every field (counters and float averages), so
    // this catches any nondeterminism the explicit comparisons above miss.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

/// Different seeds actually exercise different executions (guards against a
/// seed that is silently ignored).
#[test]
fn different_seeds_change_the_execution() {
    let a = run_with_seed(7);
    let c = run_with_seed(8);
    assert_ne!(
        format!("{a:?}"),
        format!("{c:?}"),
        "changing the seed must change the run"
    );
}
