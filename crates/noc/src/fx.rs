//! An in-tree FxHash-style hasher for the simulator's hot maps.
//!
//! The workspace builds offline with an empty crate registry, so it cannot
//! depend on `rustc-hash`/`fxhash`. This module reimplements the same
//! multiply-rotate construction (the hash Firefox and rustc use for their
//! internal tables): it is not DoS-resistant, but the keys here are
//! simulator-internal ([`crate::router::PacketId`]s, line addresses, node
//! ids), so speed and *determinism* are what matter. Unlike
//! `std::collections::HashMap`'s default `RandomState`, two maps built with
//! [`FxBuildHasher`] always hash — and therefore iterate — identically, which
//! the cycle-skipping equivalence guarantee in `loco-sim` relies on.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant of FxHash (a 64-bit truncation of pi, as used
/// by rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic [`Hasher`].
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some(chunk) = bytes.first_chunk::<8>() {
            self.add_word(u64::from_le_bytes(*chunk));
            bytes = &bytes[8..];
        }
        if let Some(chunk) = bytes.first_chunk::<4>() {
            self.add_word(u64::from(u32::from_le_bytes(*chunk)));
            bytes = &bytes[4..];
        }
        if let Some(chunk) = bytes.first_chunk::<2>() {
            self.add_word(u64::from(u16::from_le_bytes(*chunk)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_word(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_word(i as u64);
        self.add_word((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] keyed by [`FxHasher`] — fast on small keys, deterministic
/// iteration order for a given insertion/removal history.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn hashing_is_deterministic_across_builders() {
        for v in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(hash_of(&v), hash_of(&v));
        }
        assert_eq!(hash_of(&"packet"), hash_of(&"packet"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn maps_iterate_identically_for_identical_histories() {
        let build = |n: u64| -> FxHashMap<u64, u64> {
            let mut m = FxHashMap::default();
            for i in 0..n {
                m.insert(i * 977, i);
            }
            m.remove(&(3 * 977));
            m
        };
        let a: Vec<(u64, u64)> = build(64).into_iter().collect();
        let b: Vec<(u64, u64)> = build(64).into_iter().collect();
        assert_eq!(a, b, "Fx maps must iterate deterministically");
    }

    #[test]
    fn byte_stream_hashing_covers_all_tail_sizes() {
        // 0..=16 byte prefixes exercise the 8/4/2/1 tail ladder in `write`
        // (non-zero bytes: an all-zero word hashes like the empty stream).
        let bytes: Vec<u8> = (1u8..=16).collect();
        let mut seen = Vec::new();
        for len in 0..=bytes.len() {
            let mut h = FxHasher::default();
            h.write(&bytes[..len]);
            seen.push(h.finish());
        }
        for (i, a) in seen.iter().enumerate() {
            for (j, b) in seen.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "prefix lengths {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn set_membership_works() {
        let mut s: FxHashSet<(usize, u32)> = FxHashSet::default();
        s.insert((1, 2));
        s.insert((1, 2));
        s.insert((3, 4));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&(1, 2)));
    }
}
