//! # loco-energy — event-level energy accounting for the LOCO reproduction
//!
//! The paper's evaluation pairs performance with network *energy*: DSENT-
//! style per-event costs for router buffers, crossbars, SSR wires and links,
//! summed over the events of a simulation. This crate reproduces that
//! methodology for the whole modelled system:
//!
//! * every component exposes **event counters** — the NoC fabrics count
//!   buffer reads/writes, crossbar traversals, link flit-hops, SSR
//!   broadcasts and premature stops ([`loco_noc::FabricCounters`]); the
//!   cache hierarchy counts tag probes, array reads/writes, directory
//!   lookups, VMS searches, IVR migrations and DRAM accesses
//!   ([`loco_cache::CacheStats`]);
//! * [`EnergyParams`] holds one **per-event cost** (in femtojoules) for each
//!   event class, with defaults calibrated to 1 GHz / 45 nm-class numbers
//!   (see DESIGN.md §10 for the calibration caveats);
//! * [`EnergyParams::breakdown`] folds the counters of one
//!   [`loco_sim::SimResults`] into an [`EnergyBreakdown`].
//!
//! Everything is **integer-only** (u64 femtojoules, u128 for the
//! energy-delay product): a breakdown is bit-identical between
//! `CmpSystem::run` and `run_naive` and across executor thread counts,
//! because the event counters are (the root `tests/energy.rs` suite and
//! `scripts/verify.sh` lock this in). Derived conveniences
//! ([`EnergyBreakdown::epi_fj`], nanojoule conversions) are `f64` but are
//! computed from the integer totals, never accumulated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use loco_cache::CacheStats;
use loco_noc::{FabricCounters, NetworkStats};
use loco_sim::SimResults;

/// `cost * events` with a loud panic on u64 overflow. The breakdown is an
/// integer contract — a silent wrap would corrupt every downstream figure
/// bit-for-bit *reproducibly*, which no test comparing two equally-wrapped
/// runs can catch — so paper256-scale counter values that exceed ~1.8e19 fJ
/// must abort instead. (Headroom check: the costliest event, a 26 nJ DRAM
/// access, leaves room for ~7e11 accesses — far beyond any simulated run —
/// but a caller-supplied `EnergyParams` can shrink that margin arbitrarily.)
#[inline]
fn mul_fj(cost: u64, events: u64, what: &str) -> u64 {
    cost.checked_mul(events).unwrap_or_else(|| {
        panic!("energy accumulation overflowed u64 fJ: {what} = {cost} fJ x {events} events")
    })
}

/// Checked fJ addition (see [`mul_fj`]); `what` names the sum being folded.
#[inline]
fn add_fj(a: u64, b: u64, what: &str) -> u64 {
    a.checked_add(b)
        .unwrap_or_else(|| panic!("energy accumulation overflowed u64 fJ while summing {what}"))
}

/// Checked fold of a list of fJ terms.
#[inline]
fn sum_fj(terms: &[u64], what: &str) -> u64 {
    terms.iter().fold(0u64, |acc, &t| add_fj(acc, t, what))
}

/// Per-event energy costs in femtojoules (fJ). All fields are public and
/// overridable; [`EnergyParams::default`] is calibrated to a 1 GHz, 45
/// nm-class process (128-bit flits, 32 B lines — the scale of the paper's
/// Table 1), with DSENT-style router/link numbers and CACTI-style array
/// numbers. Absolute magnitudes are order-of-magnitude engineering
/// estimates; *relative* comparisons across organizations and NoCs are the
/// reproduction target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyParams {
    /// Router input-buffer write (one packet latched).
    pub buffer_write_fj: u64,
    /// Router input-buffer read (one packet read out for the switch).
    pub buffer_read_fj: u64,
    /// One crossbar traversal (SMART bypasses cross one per router passed).
    pub crossbar_fj: u64,
    /// One link hop crossed by one flit (per mm-class mesh hop).
    pub link_flit_hop_fj: u64,
    /// Driving the dedicated SSR wires one hop far (narrow control wires).
    pub ssr_hop_fj: u64,
    /// Fixed setup cost per SSR broadcast (arbitration latches).
    pub ssr_setup_fj: u64,
    /// One pass through the high-radix multi-stage router pipeline.
    pub pipeline_pass_fj: u64,
    /// Spawning one multicast child copy at an XY-tree fork.
    pub multicast_fork_fj: u64,
    /// L1 tag-array probe.
    pub l1_tag_fj: u64,
    /// L1 data-array read.
    pub l1_read_fj: u64,
    /// L1 data-array write.
    pub l1_write_fj: u64,
    /// L2 tag-array probe.
    pub l2_tag_fj: u64,
    /// L2 data-array read.
    pub l2_read_fj: u64,
    /// L2 data-array write.
    pub l2_write_fj: u64,
    /// Global-directory lookup (CAM + sharer-vector read).
    pub dir_lookup_fj: u64,
    /// Home-node bookkeeping per VMS search issued (the broadcast's wire
    /// and router energy is already in the NoC events).
    pub vms_search_fj: u64,
    /// Bookkeeping per IVR migration message (timestamp compare, steering).
    pub ivr_event_fj: u64,
    /// One off-chip DRAM access (activate + burst for a 32 B line).
    pub dram_access_fj: u64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            buffer_write_fj: 1_500,
            buffer_read_fj: 1_100,
            crossbar_fj: 2_400,
            link_flit_hop_fj: 1_750,
            ssr_hop_fj: 120,
            ssr_setup_fj: 80,
            pipeline_pass_fj: 3_600,
            multicast_fork_fj: 500,
            l1_tag_fj: 320,
            l1_read_fj: 2_600,
            l1_write_fj: 2_900,
            l2_tag_fj: 640,
            l2_read_fj: 9_200,
            l2_write_fj: 10_400,
            dir_lookup_fj: 4_200,
            vms_search_fj: 450,
            ivr_event_fj: 900,
            dram_access_fj: 26_000_000,
        }
    }
}

impl EnergyParams {
    /// Folds the event counters of one completed run into an
    /// [`EnergyBreakdown`]. Pure integer arithmetic over the counters — the
    /// same results always produce the same breakdown, bit for bit. Every
    /// multiply and fold is overflow-checked: a counter set large enough to
    /// wrap u64 femtojoules panics loudly instead of silently corrupting
    /// the figures (see [`mul_fj`]).
    pub fn breakdown(&self, results: &SimResults) -> EnergyBreakdown {
        EnergyBreakdown {
            network: self.network_energy(&results.network),
            cache: self.cache_energy(&results.cache),
            dram_fj: mul_fj(
                self.dram_access_fj,
                add_fj(
                    results.cache.offchip_fetches,
                    results.cache.offchip_writebacks,
                    "off-chip accesses",
                ),
                "dram_access",
            ),
            instructions: results.instructions,
            runtime_cycles: results.runtime_cycles,
        }
    }

    /// The NoC share of the energy, from the fabric event counters and the
    /// front-end multicast statistics.
    pub fn network_energy(&self, network: &NetworkStats) -> NetworkEnergy {
        let f: &FabricCounters = &network.fabric;
        NetworkEnergy {
            buffer_fj: add_fj(
                mul_fj(self.buffer_write_fj, f.buffer_writes, "buffer_write"),
                mul_fj(self.buffer_read_fj, f.buffer_reads, "buffer_read"),
                "buffer energy",
            ),
            crossbar_fj: mul_fj(self.crossbar_fj, f.crossbar_traversals, "crossbar"),
            link_fj: mul_fj(self.link_flit_hop_fj, f.link_flit_hops, "link_flit_hop"),
            ssr_fj: add_fj(
                mul_fj(self.ssr_setup_fj, f.ssr_broadcasts, "ssr_setup"),
                mul_fj(self.ssr_hop_fj, f.ssr_hops, "ssr_hop"),
                "SSR energy",
            ),
            pipeline_fj: mul_fj(self.pipeline_pass_fj, f.pipeline_passes, "pipeline_pass"),
            multicast_fj: mul_fj(self.multicast_fork_fj, network.multicast_forks, "multicast_fork"),
        }
    }

    /// The cache-hierarchy share of the energy (L1/L2 arrays, directory,
    /// VMS and IVR bookkeeping — DRAM is separate).
    pub fn cache_energy(&self, cache: &CacheStats) -> CacheEnergy {
        CacheEnergy {
            l1_fj: sum_fj(
                &[
                    mul_fj(self.l1_tag_fj, cache.l1_tag_probes, "l1_tag"),
                    mul_fj(self.l1_read_fj, cache.l1_data_reads, "l1_read"),
                    mul_fj(self.l1_write_fj, cache.l1_data_writes, "l1_write"),
                ],
                "L1 energy",
            ),
            l2_fj: sum_fj(
                &[
                    mul_fj(self.l2_tag_fj, cache.l2_tag_probes, "l2_tag"),
                    mul_fj(self.l2_read_fj, cache.l2_data_reads, "l2_read"),
                    mul_fj(self.l2_write_fj, cache.l2_data_writes, "l2_write"),
                ],
                "L2 energy",
            ),
            directory_fj: mul_fj(self.dir_lookup_fj, cache.dir_lookups, "dir_lookup"),
            vms_fj: mul_fj(self.vms_search_fj, cache.broadcasts, "vms_search"),
            ivr_fj: mul_fj(self.ivr_event_fj, cache.ivr_migrations, "ivr_event"),
        }
    }
}

/// NoC energy by component, in femtojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkEnergy {
    /// Router input buffers (reads + writes).
    pub buffer_fj: u64,
    /// Crossbar traversals.
    pub crossbar_fj: u64,
    /// Link wires (flit-hop weighted, express spans included).
    pub link_fj: u64,
    /// SMART SSR broadcast wires and setup.
    pub ssr_fj: u64,
    /// High-radix multi-stage pipeline passes.
    pub pipeline_fj: u64,
    /// Multicast-tree fork events.
    pub multicast_fj: u64,
}

impl NetworkEnergy {
    /// Total NoC energy in femtojoules (overflow-checked).
    pub fn total_fj(&self) -> u64 {
        sum_fj(
            &[
                self.buffer_fj,
                self.crossbar_fj,
                self.link_fj,
                self.ssr_fj,
                self.pipeline_fj,
                self.multicast_fj,
            ],
            "NoC total",
        )
    }
}

/// Cache-hierarchy energy by component, in femtojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheEnergy {
    /// L1 arrays (tags + data).
    pub l1_fj: u64,
    /// L2 arrays (tags + data).
    pub l2_fj: u64,
    /// Global-directory lookups.
    pub directory_fj: u64,
    /// VMS search bookkeeping at the home nodes.
    pub vms_fj: u64,
    /// IVR migration bookkeeping.
    pub ivr_fj: u64,
}

impl CacheEnergy {
    /// Total cache-hierarchy energy in femtojoules (overflow-checked).
    pub fn total_fj(&self) -> u64 {
        sum_fj(
            &[self.l1_fj, self.l2_fj, self.directory_fj, self.vms_fj, self.ivr_fj],
            "cache total",
        )
    }
}

/// The energy of one simulation run, broken down by subsystem. Built by
/// [`EnergyParams::breakdown`]; all fields are integers, so equality is
/// exact (`Eq`) and the breakdown is as deterministic as the counters it is
/// derived from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyBreakdown {
    /// NoC energy (buffers, crossbars, links, SSRs, pipelines, multicast).
    pub network: NetworkEnergy,
    /// Cache-hierarchy energy (L1, L2, directory, VMS, IVR).
    pub cache: CacheEnergy,
    /// Off-chip DRAM energy.
    pub dram_fj: u64,
    /// Instructions retired by the run (for per-instruction normalization).
    pub instructions: u64,
    /// Run time in cycles (for the energy-delay product).
    pub runtime_cycles: u64,
}

impl EnergyBreakdown {
    /// Total energy in femtojoules (overflow-checked, like every fold in
    /// this crate: wrap-around would corrupt figures silently and
    /// reproducibly, so it aborts instead).
    pub fn total_fj(&self) -> u64 {
        sum_fj(
            &[self.network.total_fj(), self.cache.total_fj(), self.dram_fj],
            "system total",
        )
    }

    /// Energy per instruction in femtojoules (0 when no instruction
    /// retired).
    pub fn epi_fj(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_fj() as f64 / self.instructions as f64
        }
    }

    /// The energy-delay product, in exact integer fJ·cycles (the figure of
    /// merit of the cluster-size energy sweep).
    pub fn edp_fj_cycles(&self) -> u128 {
        u128::from(self.total_fj()) * u128::from(self.runtime_cycles)
    }

    /// This run's EDP normalized against a baseline run's EDP.
    pub fn edp_normalized_to(&self, baseline: &EnergyBreakdown) -> f64 {
        let base = baseline.edp_fj_cycles();
        if base == 0 {
            0.0
        } else {
            self.edp_fj_cycles() as f64 / base as f64
        }
    }

    /// A human-readable multi-line summary (nanojoules).
    pub fn report(&self) -> String {
        let nj = |fj: u64| fj as f64 / 1e6;
        format!(
            "energy total       : {:>12.3} nJ  ({:.1} fJ/instruction)\n\
             \x20 network           : {:>12.3} nJ  (buffers {:.3}, crossbars {:.3}, links {:.3}, SSRs {:.3})\n\
             \x20 caches            : {:>12.3} nJ  (L1 {:.3}, L2 {:.3}, directory {:.3}, VMS {:.3}, IVR {:.3})\n\
             \x20 DRAM              : {:>12.3} nJ\n",
            nj(self.total_fj()),
            self.epi_fj(),
            nj(self.network.total_fj()),
            nj(self.network.buffer_fj),
            nj(self.network.crossbar_fj),
            nj(self.network.link_fj),
            nj(self.network.ssr_fj),
            nj(self.cache.total_fj()),
            nj(self.cache.l1_fj),
            nj(self.cache.l2_fj),
            nj(self.cache.directory_fj),
            nj(self.cache.vms_fj),
            nj(self.cache.ivr_fj),
            nj(self.dram_fj),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_params() -> EnergyParams {
        // 1 fJ per event: totals equal event counts, making the arithmetic
        // transparent to assert on.
        EnergyParams {
            buffer_write_fj: 1,
            buffer_read_fj: 1,
            crossbar_fj: 1,
            link_flit_hop_fj: 1,
            ssr_hop_fj: 1,
            ssr_setup_fj: 1,
            pipeline_pass_fj: 1,
            multicast_fork_fj: 1,
            l1_tag_fj: 1,
            l1_read_fj: 1,
            l1_write_fj: 1,
            l2_tag_fj: 1,
            l2_read_fj: 1,
            l2_write_fj: 1,
            dir_lookup_fj: 1,
            vms_search_fj: 1,
            ivr_event_fj: 1,
            dram_access_fj: 1,
        }
    }

    #[test]
    fn unit_costs_sum_the_event_counts() {
        let mut results = SimResults::default();
        results.network.fabric = FabricCounters {
            buffer_writes: 2,
            buffer_reads: 3,
            crossbar_traversals: 4,
            link_flit_hops: 5,
            ssr_broadcasts: 6,
            ssr_hops: 7,
            premature_stops: 1, // diagnostic, not an energy event by itself
            bypass_hops: 1,
            stop_hops: 1,
            express_traversals: 1,
            pipeline_passes: 8,
        };
        results.network.multicast_forks = 9;
        results.cache.l1_tag_probes = 10;
        results.cache.l1_data_reads = 11;
        results.cache.l1_data_writes = 12;
        results.cache.l2_tag_probes = 13;
        results.cache.l2_data_reads = 14;
        results.cache.l2_data_writes = 15;
        results.cache.dir_lookups = 16;
        results.cache.broadcasts = 17;
        results.cache.ivr_migrations = 18;
        results.cache.offchip_fetches = 19;
        results.cache.offchip_writebacks = 20;
        results.instructions = 100;
        results.runtime_cycles = 10;

        let b = unit_params().breakdown(&results);
        assert_eq!(b.network.buffer_fj, 5);
        assert_eq!(b.network.crossbar_fj, 4);
        assert_eq!(b.network.link_fj, 5);
        assert_eq!(b.network.ssr_fj, 13);
        assert_eq!(b.network.pipeline_fj, 8);
        assert_eq!(b.network.multicast_fj, 9);
        assert_eq!(b.cache.l1_fj, 33);
        assert_eq!(b.cache.l2_fj, 42);
        assert_eq!(b.cache.directory_fj, 16);
        assert_eq!(b.cache.vms_fj, 17);
        assert_eq!(b.cache.ivr_fj, 18);
        assert_eq!(b.dram_fj, 39);
        assert_eq!(b.total_fj(), 5 + 4 + 5 + 13 + 8 + 9 + 33 + 42 + 16 + 17 + 18 + 39);
        assert!((b.epi_fj() - b.total_fj() as f64 / 100.0).abs() < 1e-12);
        assert_eq!(b.edp_fj_cycles(), u128::from(b.total_fj()) * 10);
    }

    #[test]
    fn empty_results_cost_nothing() {
        let b = EnergyParams::default().breakdown(&SimResults::default());
        assert_eq!(b.total_fj(), 0);
        assert_eq!(b.epi_fj(), 0.0);
        assert_eq!(b.edp_fj_cycles(), 0);
        assert_eq!(b.edp_normalized_to(&b), 0.0, "zero baseline yields 0");
    }

    #[test]
    fn edp_normalization_is_a_plain_ratio() {
        let mut a = EnergyBreakdown::default();
        a.dram_fj = 100;
        a.runtime_cycles = 10;
        let mut b = a;
        b.dram_fj = 200;
        b.runtime_cycles = 20;
        assert!((b.edp_normalized_to(&a) - 4.0).abs() < 1e-12);
        assert!((a.edp_normalized_to(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counter_values_at_the_overflow_boundary_still_fold() {
        // The largest event count the default DRAM cost can absorb without
        // wrapping u64 fJ: the fold must succeed exactly at the boundary...
        let p = EnergyParams::default();
        let max_accesses = u64::MAX / p.dram_access_fj;
        let mut results = SimResults::default();
        results.cache.offchip_fetches = max_accesses;
        let b = p.breakdown(&results);
        assert_eq!(b.dram_fj, p.dram_access_fj * max_accesses);
        // ...even when the total is taken (the other subsystems are zero
        // here, so the checked sum still fits).
        assert_eq!(b.total_fj(), b.dram_fj);
    }

    #[test]
    #[should_panic(expected = "energy accumulation overflowed u64 fJ")]
    fn paper256_scale_overflow_panics_instead_of_wrapping() {
        // One access past the boundary must abort loudly: a silent wrap
        // would make fig17/fig18 wrong bit-for-bit reproducibly, which no
        // run-vs-run comparison can catch.
        let p = EnergyParams::default();
        let mut results = SimResults::default();
        results.cache.offchip_fetches = u64::MAX / p.dram_access_fj + 1;
        let _ = p.breakdown(&results);
    }

    #[test]
    #[should_panic(expected = "energy accumulation overflowed u64 fJ")]
    fn overflowing_totals_panic_instead_of_wrapping() {
        // Two subsystem totals that individually fit but jointly wrap.
        let mut b = EnergyBreakdown::default();
        b.dram_fj = u64::MAX - 5;
        b.cache.l1_fj = 10;
        let _ = b.total_fj();
    }

    #[test]
    fn default_params_weight_dram_heaviest() {
        let p = EnergyParams::default();
        assert!(p.dram_access_fj > p.l2_read_fj);
        assert!(p.l2_read_fj > p.l1_read_fj);
        assert!(p.buffer_write_fj > p.ssr_hop_fj, "SSR wires are cheap");
    }

    #[test]
    fn report_renders_every_subsystem() {
        let mut b = EnergyBreakdown::default();
        b.network.buffer_fj = 1_000_000;
        b.cache.l2_fj = 2_000_000;
        b.dram_fj = 3_000_000;
        b.instructions = 10;
        let r = b.report();
        assert!(r.contains("network"), "{r}");
        assert!(r.contains("DRAM"), "{r}");
        assert!(r.contains("6.000 nJ"), "{r}");
    }
}
