//! # loco-sim — trace-driven CMP simulator for the LOCO reproduction
//!
//! This crate plays the role GEMS plays in the paper: it instantiates a tiled
//! CMP (in-order cores, L1/L2 caches, directories, memory controllers) on
//! top of the cycle-driven `loco-noc` fabric, replays `loco-workloads`
//! traces against any of the five cache organizations, and reports the
//! statistics every figure of the evaluation is derived from.
//!
//! The top-level type is [`system::CmpSystem`]; [`config::SystemConfig`]
//! captures Table 1 of the paper.
//!
//! # `Send` invariant
//!
//! [`CmpSystem`] and [`SimResults`] are **`Send`**: the campaign engine
//! (`loco::campaign::Executor`) runs one system per worker thread, so the
//! simulator must stay free of thread-bound handles (`Rc`, `RefCell`, raw
//! pointers). This is locked in at compile time below — adding a non-`Send`
//! field is a build error, not a runtime surprise.
//!
//! ```rust,no_run
//! use loco_sim::{CmpSystem, SystemConfig};
//! use loco_cache::OrganizationKind;
//! use loco_workloads::{Benchmark, TraceGenerator};
//!
//! let cfg = SystemConfig::asplos_64(OrganizationKind::LocoCcVmsIvr);
//! let traces = TraceGenerator::new(1).generate(&Benchmark::Lu.spec(), 64, 2_000);
//! let mut system = CmpSystem::new(cfg, traces);
//! let results = system.run(10_000_000);
//! println!("runtime = {} cycles", results.runtime_cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod core;
pub mod results;
pub mod system;

pub use config::SystemConfig;
pub use core::{CoreModel, CoreStatus};
pub use results::SimResults;
pub use system::CmpSystem;

// Compile-time lock-in of the `Send` invariant (see the module docs): the
// parallel campaign executor moves whole systems and their results across
// threads. These calls are never executed; they fail to compile if a
// non-`Send` field sneaks into the simulator.
fn assert_send<T: Send>() {}
#[allow(dead_code)]
fn send_invariants() {
    assert_send::<CmpSystem>();
    assert_send::<SimResults>();
    assert_send::<SystemConfig>();
}
