//! Figure 15: multi-program consolidation workloads of Table 2.

use criterion::{criterion_group, criterion_main, Criterion};
use loco::{ExperimentParams, Runner};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_multiprogram");
    group.sample_size(10);
    group.bench_function("quick_scale_w0", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            runner.fig15_multiprogram(&[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
