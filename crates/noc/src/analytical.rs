//! Closed-form, zero-load latency estimates for the three router kinds.
//!
//! These are not used by the cycle-driven simulator; they serve as quick
//! estimates for sizing clusters, as documentation of the timing model, and
//! as an independent cross-check in the property-based tests (the simulated
//! zero-load latency must match the analytical value within a small constant
//! injection/ejection overhead).

use crate::config::{NocConfig, RouterKind};
use crate::topology::NodeId;

/// Zero-load (no contention) latency, in cycles, of a single-flit message
/// from `src` to `dest` under `cfg`, excluding NIC injection/ejection
/// overhead.
pub fn zero_load_latency(cfg: &NocConfig, src: NodeId, dest: NodeId) -> u64 {
    if src == dest {
        return 1;
    }
    let mesh = cfg.mesh;
    match cfg.router {
        RouterKind::Conventional => {
            // 2 cycles per hop: 1 in the router, 1 on the link.
            2 * u64::from(mesh.hops(src, dest))
        }
        RouterKind::Smart => {
            // 2 cycles per SMART-hop: SSR, then single-cycle multi-hop ST+LT.
            2 * u64::from(mesh.smart_hops(src, dest, cfg.hpc_max))
        }
        RouterKind::HighRadix => {
            // Express links reach hpc_max hops in 1 cycle, but every stop
            // pays the multi-stage router pipeline.
            let express_hops = u64::from(mesh.smart_hops(src, dest, cfg.hpc_max));
            express_hops * (u64::from(cfg.router_pipeline) + 1)
        }
    }
}

/// Zero-load latency of a multi-flit message: head latency plus
/// serialization of the remaining flits at the destination.
pub fn zero_load_latency_bytes(cfg: &NocConfig, src: NodeId, dest: NodeId, bytes: u32) -> u64 {
    zero_load_latency(cfg, src, dest) + u64::from(cfg.flits_for(bytes) - 1)
}

/// Zero-load completion time of a VMS broadcast from `root` over home nodes
/// spaced `cluster_w x cluster_h` apart on a mesh of `clusters_x x clusters_y`
/// clusters: the longest root-to-leaf path of the XY tree.
pub fn zero_load_broadcast_latency(
    cfg: &NocConfig,
    root_col: u16,
    root_row: u16,
    clusters_x: u16,
    clusters_y: u16,
) -> u64 {
    let horiz_levels = root_col.max(clusters_x.saturating_sub(1).saturating_sub(root_col));
    let vert_levels = root_row.max(clusters_y.saturating_sub(1).saturating_sub(root_row));
    let per_level = match cfg.router {
        RouterKind::Conventional => 2 * u64::from(cfg.hpc_max.max(1)),
        RouterKind::Smart => 2,
        RouterKind::HighRadix => u64::from(cfg.router_pipeline) + 1,
    };
    // Each tree level is one home-to-home segment (<= hpc_max physical hops).
    (u64::from(horiz_levels) + u64::from(vert_levels)) * per_level
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_corner_to_corner_is_8_cycles() {
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        assert_eq!(zero_load_latency(&cfg, NodeId(0), NodeId(63)), 8);
    }

    #[test]
    fn conventional_corner_to_corner_is_28_cycles() {
        let cfg = NocConfig::conventional_mesh(8, 8);
        assert_eq!(zero_load_latency(&cfg, NodeId(0), NodeId(63)), 28);
    }

    #[test]
    fn highradix_pays_pipeline_per_stop() {
        let cfg = NocConfig::highradix_mesh(8, 8, 4);
        // 14 hops = 4 express hops, each 4+1 cycles.
        assert_eq!(zero_load_latency(&cfg, NodeId(0), NodeId(63)), 20);
    }

    #[test]
    fn serialization_adds_flits_minus_one() {
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        let head = zero_load_latency(&cfg, NodeId(0), NodeId(4));
        assert_eq!(
            zero_load_latency_bytes(&cfg, NodeId(0), NodeId(4), 40),
            head + 2
        );
    }

    #[test]
    fn broadcast_latency_smart_2x2_clusters() {
        let cfg = NocConfig::smart_mesh(8, 8, 4);
        // Corner-rooted broadcast over 2x2 clusters: 1 horizontal + 1
        // vertical level, 2 cycles each.
        assert_eq!(zero_load_broadcast_latency(&cfg, 0, 0, 2, 2), 4);
        // Centre-rooted on 4x4 clusters: 2 + 2 levels.
        assert_eq!(zero_load_broadcast_latency(&cfg, 1, 2, 4, 4), 8);
    }
}
