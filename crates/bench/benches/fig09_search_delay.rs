//! Figure 9: on-chip data-search delay with and without VMS broadcasts.

use loco_bench::timing::Criterion;
use loco_bench::{bench_group, bench_main};
use loco::{ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_search_delay");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            runner.fig09_search_delay(&benchmarks_for(Scale::Quick))
        })
    });
    group.finish();
}

bench_group!(benches, bench);
bench_main!(benches);
