//! Figure 11: normalized run time of LOCO CC / +VMS / +VMS+IVR against the
//! shared-cache baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use loco::{ExperimentParams, Runner};
use loco_bench::{benchmarks_for, Scale};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_runtime");
    group.sample_size(10);
    group.bench_function("quick_scale", |b| {
        b.iter(|| {
            let mut runner = Runner::new(ExperimentParams::quick());
            let fig = runner.fig11_runtime(&benchmarks_for(Scale::Quick));
            assert!((fig.average_of("Shared Cache").unwrap() - 1.0).abs() < 1e-9);
            fig
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
