//! Coherence protocol messages exchanged between L1 controllers, home (L2)
//! controllers, the global directory and the memory controllers.
//!
//! Every message names a source and destination [`Agent`] (a node plus the
//! unit within the tile) and threads through the original requester and
//! issue time so that end-to-end latency statistics can be attributed at the
//! point of completion.

use crate::address::LineAddr;
use crate::line::MoesiState;
use loco_noc::{NodeId, VirtualNetwork};

/// The unit within a tile that a protocol message addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Unit {
    /// The per-core L1 controller.
    L1,
    /// The L2 slice / home-node controller.
    L2,
    /// The global directory (co-located with a memory controller).
    Dir,
    /// The memory (DRAM) controller.
    Mem,
}

/// A protocol endpoint: a unit at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Agent {
    /// Tile the unit lives on.
    pub node: NodeId,
    /// Which unit at that tile.
    pub unit: Unit,
}

impl Agent {
    /// Convenience constructor.
    pub fn new(node: NodeId, unit: Unit) -> Self {
        Agent { node, unit }
    }

    /// The L1 controller at `node`.
    pub fn l1(node: NodeId) -> Self {
        Agent::new(node, Unit::L1)
    }

    /// The L2 controller at `node`.
    pub fn l2(node: NodeId) -> Self {
        Agent::new(node, Unit::L2)
    }

    /// The directory at `node`.
    pub fn dir(node: NodeId) -> Self {
        Agent::new(node, Unit::Dir)
    }

    /// The memory controller at `node`.
    pub fn mem(node: NodeId) -> Self {
        Agent::new(node, Unit::Mem)
    }
}

/// Where the data that satisfied a request came from; carried on the final
/// data grant to the L1 so the simulator can attribute latency to the right
/// histogram (L2-hit latency vs. on-chip search vs. off-chip access).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ResponseSource {
    /// The line was resident at the requester's home L2 (an "L2 hit").
    Home,
    /// The line was found in another cluster / another tile's L2 on chip.
    Remote,
    /// The line was fetched from off-chip memory.
    Memory,
}

/// Protocol message kinds.
///
/// The first group is the intra-cluster (first-level) directory protocol
/// between L1s and their home L2; the second group is the global (second
/// level) protocol between home L2s, the global directory and memory; the
/// last group implements inter-cluster victim replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MsgKind {
    // ---- L1 <-> home L2 (first-level protocol) ----
    /// L1 read miss.
    GetS,
    /// L1 write miss / upgrade.
    GetM,
    /// Shared-data grant to an L1.
    DataS(ResponseSource),
    /// Exclusive-data grant to an L1.
    DataM(ResponseSource),
    /// Invalidate an L1 copy.
    InvL1,
    /// L1 invalidation acknowledgement; `dirty` if the L1 held modified data.
    InvAckL1 {
        /// The invalidated copy was modified (data travels back with the ack).
        dirty: bool,
    },
    /// L1 eviction writeback of a modified line.
    WbL1,

    // ---- home L2 <-> directory / other home L2s / memory ----
    /// Read request to the global directory (private baseline, LOCO CC).
    GblGetS,
    /// Write request to the global directory.
    GblGetM,
    /// Directory response telling the requester how many invalidation acks
    /// to expect and whether data is on its way from an owner or memory.
    DirInfo {
        /// Number of `InvAckL2` messages the requester must collect.
        acks: u32,
        /// Whether a data response (owner or memory) will follow.
        data_coming: bool,
    },
    /// Directory-forwarded read to the owning L2.
    FwdGetS,
    /// Directory-forwarded write to the owning L2.
    FwdGetM,
    /// Directory-initiated invalidation of a sharing L2 (cluster).
    InvL2,
    /// Sharing L2 finished invalidating its cluster; sent to the requester.
    InvAckL2,
    /// Owner L2 supplies a shared copy to the requesting home L2.
    OwnerData,
    /// Owner L2 supplies data and ownership for a write.
    OwnerDataM,
    /// Broadcast read on the VMS (global data search).
    BcastGetS,
    /// Broadcast write/invalidate on the VMS.
    BcastGetM,
    /// Remote home node searched and does not own the line (and, for writes,
    /// has invalidated its local copies).
    AckNoData,
    /// Home L2 evicted a line; global directory bookkeeping (fire & forget).
    PutL2,
    /// Requester tells the directory the transaction is complete.
    Unblock,

    // ---- memory ----
    /// Fetch a line from DRAM; the reply goes to `requester`'s L2.
    MemRead,
    /// Cancel a speculative DRAM fetch: a VMS broadcast sends the request to
    /// memory in parallel (Section 3.4), and cancels it when an on-chip
    /// owner supplies the data first.
    MemCancel,
    /// DRAM data response.
    MemData,
    /// Dirty writeback to DRAM.
    MemWb,

    // ---- inter-cluster victim replacement (Section 3.3) ----
    /// A victim line migrating to the same-HNid home node of another cluster.
    IvrMigrate {
        /// Coherence state the line had at the evicting node.
        state: MoesiState,
        /// Quantized last-access timestamp used for the age comparison.
        last_access: u64,
        /// Number of migration attempts so far (threshold 4 in the paper).
        hop: u8,
    },
}

impl MsgKind {
    /// Whether this message carries a full cache line of data.
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            MsgKind::DataS(_)
                | MsgKind::DataM(_)
                | MsgKind::InvAckL1 { dirty: true }
                | MsgKind::WbL1
                | MsgKind::OwnerData
                | MsgKind::OwnerDataM
                | MsgKind::MemData
                | MsgKind::MemWb
                | MsgKind::IvrMigrate { .. }
        )
    }

    /// The virtual network this message class travels on (protocol-level
    /// deadlock avoidance: requests, forwards, responses, writebacks and
    /// broadcasts never share a VN).
    pub fn virtual_network(self) -> VirtualNetwork {
        match self {
            MsgKind::GetS
            | MsgKind::GetM
            | MsgKind::GblGetS
            | MsgKind::GblGetM
            | MsgKind::MemRead
            | MsgKind::MemCancel => VirtualNetwork::Request,
            MsgKind::FwdGetS | MsgKind::FwdGetM | MsgKind::InvL1 | MsgKind::InvL2 => {
                VirtualNetwork::Forward
            }
            MsgKind::DataS(_)
            | MsgKind::DataM(_)
            | MsgKind::InvAckL1 { .. }
            | MsgKind::InvAckL2
            | MsgKind::OwnerData
            | MsgKind::OwnerDataM
            | MsgKind::MemData
            | MsgKind::AckNoData
            | MsgKind::DirInfo { .. }
            | MsgKind::Unblock => VirtualNetwork::Response,
            MsgKind::WbL1 | MsgKind::MemWb | MsgKind::PutL2 | MsgKind::IvrMigrate { .. } => {
                VirtualNetwork::Writeback
            }
            MsgKind::BcastGetS | MsgKind::BcastGetM => VirtualNetwork::Broadcast,
        }
    }

    /// Message size on the wire: an 8-byte control header, plus the 32-byte
    /// line for data-carrying messages (Table 1: 32-byte lines, 16-byte
    /// links, so data messages are 3 flits and control messages 1).
    pub fn size_bytes(self) -> u32 {
        if self.carries_data() {
            40
        } else {
            8
        }
    }
}

/// A protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtocolMsg {
    /// The cache line this message concerns.
    pub addr: LineAddr,
    /// What the message is.
    pub kind: MsgKind,
    /// Sending agent.
    pub src: Agent,
    /// Receiving agent.
    pub dst: Agent,
    /// The L1/core that originally triggered the transaction (threaded
    /// through forwards so data can be routed and latency attributed).
    pub requester: NodeId,
    /// Cycle at which the original L1 request was issued.
    pub issued_at: u64,
}

impl ProtocolMsg {
    /// Creates a message, copying `requester`/`issued_at` bookkeeping from a
    /// parent message.
    pub fn derived(parent: &ProtocolMsg, kind: MsgKind, src: Agent, dst: Agent) -> Self {
        ProtocolMsg {
            addr: parent.addr,
            kind,
            src,
            dst,
            requester: parent.requester,
            issued_at: parent.issued_at,
        }
    }
}

/// A message to be sent after `delay` cycles of local processing (cache
/// lookup latency, directory latency, DRAM latency, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outgoing {
    /// The message to send.
    pub msg: ProtocolMsg,
    /// Local processing delay before the message enters the network.
    pub delay: u64,
}

impl Outgoing {
    /// A message sent after `delay` cycles.
    pub fn after(delay: u64, msg: ProtocolMsg) -> Self {
        Outgoing { msg, delay }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_messages_are_larger_than_control() {
        assert_eq!(MsgKind::GetS.size_bytes(), 8);
        assert_eq!(MsgKind::OwnerData.size_bytes(), 40);
        assert_eq!(MsgKind::InvAckL1 { dirty: false }.size_bytes(), 8);
        assert_eq!(MsgKind::InvAckL1 { dirty: true }.size_bytes(), 40);
    }

    #[test]
    fn vn_assignment_separates_message_classes() {
        assert_eq!(MsgKind::GetS.virtual_network(), VirtualNetwork::Request);
        assert_eq!(MsgKind::InvL1.virtual_network(), VirtualNetwork::Forward);
        assert_eq!(
            MsgKind::DataS(ResponseSource::Home).virtual_network(),
            VirtualNetwork::Response
        );
        assert_eq!(MsgKind::MemWb.virtual_network(), VirtualNetwork::Writeback);
        assert_eq!(MsgKind::BcastGetM.virtual_network(), VirtualNetwork::Broadcast);
        assert_eq!(
            MsgKind::IvrMigrate {
                state: MoesiState::O,
                last_access: 0,
                hop: 0
            }
            .virtual_network(),
            VirtualNetwork::Writeback
        );
    }

    #[test]
    fn derived_messages_keep_bookkeeping() {
        let parent = ProtocolMsg {
            addr: LineAddr(42),
            kind: MsgKind::GetS,
            src: Agent::l1(NodeId(3)),
            dst: Agent::l2(NodeId(7)),
            requester: NodeId(3),
            issued_at: 100,
        };
        let child = ProtocolMsg::derived(
            &parent,
            MsgKind::MemRead,
            Agent::l2(NodeId(7)),
            Agent::mem(NodeId(0)),
        );
        assert_eq!(child.addr, LineAddr(42));
        assert_eq!(child.requester, NodeId(3));
        assert_eq!(child.issued_at, 100);
        assert_eq!(child.kind, MsgKind::MemRead);
    }
}
