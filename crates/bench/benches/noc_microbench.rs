//! NoC micro-benchmarks: zero-load latency and broadcast completion time of
//! the three router micro-architectures (the raw numbers behind Section 2's
//! "8 cycles vs 28 cycles corner-to-corner" argument).

use loco_bench::timing::{BenchmarkId, Criterion};
use loco_bench::{bench_group, bench_main};
use loco_noc::{NetMessage, Network, NocConfig, NodeId, VirtualNetwork};

fn corner_to_corner(cfg: NocConfig) -> u64 {
    let mut net: Network<()> = Network::new(cfg);
    let last = NodeId((cfg.mesh.len() - 1) as u16);
    net.inject(NetMessage::unicast(NodeId(0), last, VirtualNetwork::Request, 8, ()))
        .expect("inject");
    loop {
        net.tick();
        let out = net.eject(last);
        if let Some(d) = out.first() {
            return d.latency;
        }
        assert!(net.cycle() < 10_000, "message never arrived");
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_corner_to_corner");
    for (label, cfg) in [
        ("smart_8x8", NocConfig::smart_mesh(8, 8, 4)),
        ("conventional_8x8", NocConfig::conventional_mesh(8, 8)),
        ("highradix_8x8", NocConfig::highradix_mesh(8, 8, 4)),
        ("smart_16x16", NocConfig::smart_mesh(16, 16, 4)),
        ("conventional_16x16", NocConfig::conventional_mesh(16, 16)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| corner_to_corner(*cfg))
        });
    }
    group.finish();

    // Sanity check once per run: the latency relationships of Section 2.
    let smart = corner_to_corner(NocConfig::smart_mesh(8, 8, 4));
    let conv = corner_to_corner(NocConfig::conventional_mesh(8, 8));
    assert!(smart * 2 <= conv, "SMART {smart} vs conventional {conv}");
}

bench_group!(benches, bench);
bench_main!(benches);
