//! Quickstart: run one benchmark model on the paper's 64-core LOCO
//! configuration and print the headline statistics.
//!
//! ```text
//! cargo run --release -p loco --example quickstart
//! ```

use loco::{Benchmark, EnergyParams, OrganizationKind, SimulationBuilder};

fn main() {
    // The paper's full LOCO design (clusters + VMS broadcasts + IVR) on the
    // 64-core CMP of Table 1, replaying the `lu` benchmark model.
    let loco = SimulationBuilder::new()
        .benchmark(Benchmark::Lu)
        .memory_ops_per_core(1_000)
        .organization(OrganizationKind::LocoCcVmsIvr)
        .run();

    // The distributed-shared-cache baseline on the same traces.
    let shared = SimulationBuilder::new()
        .benchmark(Benchmark::Lu)
        .memory_ops_per_core(1_000)
        .organization(OrganizationKind::Shared)
        .run();

    println!("LOCO CC+VMS+IVR vs Shared Cache — lu, 64 cores, SMART NoC");
    println!("----------------------------------------------------------");
    println!(
        "runtime            : {:>10} vs {:>10} cycles  ({:.1}% reduction)",
        loco.runtime_cycles,
        shared.runtime_cycles,
        100.0 * (1.0 - loco.runtime_cycles as f64 / shared.runtime_cycles as f64)
    );
    println!(
        "avg L2 hit latency : {:>10.2} vs {:>10.2} cycles",
        loco.avg_l2_hit_latency, shared.avg_l2_hit_latency
    );
    println!(
        "L2 MPKI            : {:>10.2} vs {:>10.2}",
        loco.l2_mpki, shared.l2_mpki
    );
    println!(
        "off-chip accesses  : {:>10} vs {:>10}",
        loco.offchip_accesses, shared.offchip_accesses
    );
    println!(
        "  fetches / wbacks : {:>4} / {:<4} vs {:>4} / {:<4}",
        loco.cache.offchip_fetches,
        loco.cache.offchip_writebacks,
        shared.cache.offchip_fetches,
        shared.cache.offchip_writebacks
    );
    println!(
        "VMS broadcasts     : {:>10}   (remote hits {})",
        loco.cache.broadcasts, loco.cache.remote_hits
    );
    println!(
        "IVR migrations     : {:>10}   (accepted {}, denied {})",
        loco.cache.ivr_migrations, loco.cache.ivr_accepted, loco.cache.ivr_denied
    );
    println!(
        "network avg latency: {:>10.2} cycles over {} delivered messages",
        loco.network.avg_latency(),
        loco.network.delivered_copies
    );
    println!();
    println!("LOCO network report (SSR diagnostics included)");
    println!("----------------------------------------------------------");
    print!("{}", loco.network.report());
    println!();
    let energy = EnergyParams::default();
    let (le, se) = (energy.breakdown(&loco), energy.breakdown(&shared));
    println!("LOCO event-level energy (vs Shared Cache)");
    println!("----------------------------------------------------------");
    print!("{}", le.report());
    println!(
        "energy-delay       : {:.3}x the Shared Cache EDP",
        le.edp_normalized_to(&se)
    );
}
