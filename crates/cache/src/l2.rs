//! The home-node (L2 slice) controller.
//!
//! Each tile's L2 slice acts as the *home node* for the addresses that map to
//! it. Within its coherence domain (the cluster for LOCO, the whole chip for
//! the shared baseline, the single tile for the private baseline) it runs a
//! directory-based MOESI protocol over the tracked L1 sharers. Beyond the
//! domain it runs the second-level protocol selected by the
//! [`Organization`]: directory indirection through the memory controllers
//! (private baseline, LOCO CC), VMS broadcasts (LOCO CC+VMS), and
//! inter-cluster victim replacement (LOCO CC+VMS+IVR).
//!
//! Conflicting transactions for the same line are serialized at the home
//! node's MSHR (see DESIGN.md §9); remote-side requests (broadcast searches,
//! forwarded invalidations) are answered from the current array state.

use crate::address::LineAddr;
use crate::array::{CacheArray, CacheGeometry, Entry, Eviction};
use crate::line::{MoesiState, SharerSet};
use crate::msg::{Agent, MsgKind, Outgoing, ProtocolMsg, ResponseSource};
use crate::organization::{MemoryMap, Organization};
use crate::stats::CacheStats;
use loco_noc::{NodeId, SplitMix64};
use loco_noc::FxHashMap;

/// Tunables of the home-node controller beyond the array geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Config {
    /// Array geometry (Table 1: 64 KB, 8-way, 4-cycle).
    pub geometry: CacheGeometry,
    /// IVR migration-chain threshold (the paper uses 4).
    pub ivr_threshold: u8,
    /// Quantum, in cycles, of the coarse IVR timestamps (the paper
    /// increments a counter every T cycles).
    pub timestamp_quantum: u64,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            geometry: CacheGeometry::asplos_l2(),
            ivr_threshold: 4,
            timestamp_quantum: 64,
        }
    }
}

/// Per-line metadata held by a home L2 slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2Meta {
    /// MOESI state of the cluster's copy.
    pub state: MoesiState,
    /// L1s inside the coherence domain holding a copy.
    pub sharers: SharerSet,
    /// The L1 holding a modified copy, if any.
    pub l1_owner: Option<NodeId>,
}

impl L2Meta {
    fn new(state: MoesiState) -> Self {
        L2Meta {
            state,
            sharers: SharerSet::new(),
            l1_owner: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnKind {
    /// A local L1 read (GetS).
    Read,
    /// A local L1 write / upgrade (GetM).
    Write,
    /// Invalidation of local L1 copies on behalf of a remote requester.
    RemoteInv,
}

#[derive(Debug)]
struct Mshr {
    kind: TxnKind,
    requester_l1: NodeId,
    issued_at: u64,
    started_search_at: Option<u64>,
    acks_needed: u32,
    acks_received: u32,
    data_received: bool,
    dir_info_pending: bool,
    vms_mode: bool,
    went_to_memory: bool,
    used_directory: bool,
    /// State to install on completion (`None`: keep the resident state).
    install_state: Option<MoesiState>,
    source: ResponseSource,
    waiting: Vec<ProtocolMsg>,
    /// RemoteInv: where to send the final acknowledgement.
    reply_to: Option<Agent>,
    /// RemoteInv: acknowledgement carries data (we were the owner).
    reply_with_data: bool,
}

impl Mshr {
    fn new(kind: TxnKind, requester_l1: NodeId, issued_at: u64) -> Self {
        Mshr {
            kind,
            requester_l1,
            issued_at,
            started_search_at: None,
            acks_needed: 0,
            acks_received: 0,
            data_received: false,
            dir_info_pending: false,
            vms_mode: false,
            went_to_memory: false,
            used_directory: false,
            install_state: None,
            source: ResponseSource::Home,
            waiting: Vec::new(),
            reply_to: None,
            reply_with_data: false,
        }
    }
}

/// The home-node (L2) controller of one tile.
#[derive(Debug)]
pub struct L2Controller {
    node: NodeId,
    org: Organization,
    memmap: MemoryMap,
    cfg: L2Config,
    array: CacheArray<L2Meta>,
    mshrs: FxHashMap<LineAddr, Mshr>,
    stats: CacheStats,
    rng: SplitMix64,
}

impl L2Controller {
    /// Creates the home-node controller for `node`.
    pub fn new(node: NodeId, cfg: L2Config, org: Organization, memmap: MemoryMap) -> Self {
        L2Controller {
            node,
            org,
            memmap,
            cfg,
            array: CacheArray::new(cfg.geometry),
            mshrs: FxHashMap::default(),
            stats: CacheStats::default(),
            rng: SplitMix64::new(0x10c0 ^ node.index() as u64),
        }
    }

    /// The tile this controller belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Statistics collected by this controller.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of outstanding transactions (occupied MSHRs).
    pub fn outstanding(&self) -> usize {
        self.mshrs.len()
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.array.occupancy()
    }

    fn lat(&self) -> u64 {
        self.cfg.geometry.latency
    }

    fn set_of(&self, line: LineAddr) -> usize {
        line.set_index(self.org.hnid_bits(), self.array.num_sets())
    }

    fn quantize(&self, t: u64) -> u64 {
        (t / self.cfg.timestamp_quantum) * self.cfg.timestamp_quantum
    }

    /// The home L2 of the cluster that `l1_node` belongs to, for `line`.
    fn requesting_home(&self, l1_node: NodeId, line: LineAddr) -> NodeId {
        self.org.home_node(l1_node, line)
    }

    /// Handles a protocol message addressed to this L2.
    pub fn handle(&mut self, msg: ProtocolMsg, now: u64, out: &mut Vec<Outgoing>) {
        match msg.kind {
            MsgKind::GetS | MsgKind::GetM => self.handle_l1_request(msg, now, out),
            MsgKind::WbL1 => self.handle_l1_writeback(msg, now),
            MsgKind::InvAckL1 { dirty } => self.handle_l1_inv_ack(msg, dirty, now, out),
            MsgKind::DirInfo { acks, data_coming } => {
                self.handle_dir_info(msg, acks, data_coming, now, out)
            }
            MsgKind::FwdGetS => self.handle_fwd_gets(msg, now, out),
            MsgKind::FwdGetM | MsgKind::InvL2 => self.handle_remote_inv(msg, now, out),
            MsgKind::BcastGetS => self.handle_bcast_gets(msg, now, out),
            MsgKind::BcastGetM => self.handle_bcast_getm(msg, now, out),
            MsgKind::OwnerData => self.handle_data(msg, MoesiState::S, ResponseSource::Remote, now, out),
            MsgKind::OwnerDataM => self.handle_data(msg, MoesiState::M, ResponseSource::Remote, now, out),
            MsgKind::MemData => self.handle_mem_data(msg, now, out),
            MsgKind::AckNoData | MsgKind::InvAckL2 => self.handle_global_ack(msg, now, out),
            MsgKind::IvrMigrate {
                state,
                last_access,
                hop,
            } => self.handle_ivr(msg, state, last_access, hop, now, out),
            other => panic!("L2 controller received unexpected message kind {other:?}"),
        }
    }

    // ---------------------------------------------------------------- L1 side

    fn handle_l1_request(&mut self, msg: ProtocolMsg, now: u64, out: &mut Vec<Outgoing>) {
        if let Some(mshr) = self.mshrs.get_mut(&msg.addr) {
            mshr.waiting.push(msg);
            return;
        }
        let is_write = msg.kind == MsgKind::GetM;
        let requester = msg.requester;
        self.stats.l2_accesses += 1;
        self.stats.l2_tag_probes += 1;
        let set = self.set_of(msg.addr);
        let resident = self
            .array
            .lookup_mut(set, msg.addr, now)
            .map(|e| (e.meta.state, e.meta.sharers, e.meta.l1_owner))
            .filter(|(s, _, _)| s.is_valid());

        match resident {
            Some((state, sharers, l1_owner)) => {
                self.stats.l2_hits += 1;
                if !is_write {
                    self.serve_local_read_hit(msg, state, l1_owner, now, out);
                } else {
                    self.serve_local_write_hit(msg, state, sharers, now, out);
                }
                let _ = requester;
            }
            None => {
                self.stats.l2_misses += 1;
                self.start_global_fetch(msg, is_write, now, out);
            }
        }
    }

    fn serve_local_read_hit(
        &mut self,
        msg: ProtocolMsg,
        _state: MoesiState,
        l1_owner: Option<NodeId>,
        _now: u64,
        out: &mut Vec<Outgoing>,
    ) {
        let set = self.set_of(msg.addr);
        if let Some(owner) = l1_owner.filter(|&o| o != msg.requester) {
            // Another L1 in the domain holds a modified copy: recall it
            // before granting the shared copy.
            let mut mshr = Mshr::new(TxnKind::Read, msg.requester, msg.issued_at);
            mshr.data_received = true;
            mshr.acks_needed = 1;
            self.mshrs.insert(msg.addr, mshr);
            self.stats.invalidations += 1;
            if let Some(entry) = self.array.peek_mut(set, msg.addr) {
                entry.meta.l1_owner = None;
                entry.meta.sharers.remove(owner);
            }
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg::derived(&msg, MsgKind::InvL1, Agent::l2(self.node), Agent::l1(owner)),
            ));
            return;
        }
        if let Some(entry) = self.array.peek_mut(set, msg.addr) {
            entry.meta.sharers.insert(msg.requester);
        }
        self.stats.l2_data_reads += 1;
        out.push(Outgoing::after(
            self.lat(),
            ProtocolMsg::derived(
                &msg,
                MsgKind::DataS(ResponseSource::Home),
                Agent::l2(self.node),
                Agent::l1(msg.requester),
            ),
        ));
    }

    fn serve_local_write_hit(
        &mut self,
        msg: ProtocolMsg,
        state: MoesiState,
        sharers: SharerSet,
        now: u64,
        out: &mut Vec<Outgoing>,
    ) {
        let mut mshr = Mshr::new(TxnKind::Write, msg.requester, msg.issued_at);
        mshr.data_received = true;
        mshr.install_state = Some(MoesiState::M);
        // Invalidate other L1 copies inside the domain.
        for l1 in sharers.iter().filter(|&s| s != msg.requester) {
            mshr.acks_needed += 1;
            self.stats.invalidations += 1;
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg::derived(&msg, MsgKind::InvL1, Agent::l2(self.node), Agent::l1(l1)),
            ));
        }
        // Other clusters / tiles may hold copies when the line is not
        // exclusively ours.
        let needs_global = !self.org.is_chip_wide_shared()
            && matches!(state, MoesiState::S | MoesiState::O);
        if needs_global {
            if self.org.uses_vms() {
                mshr.vms_mode = true;
                mshr.acks_needed += (self.org.num_clusters() - 1) as u32;
                self.stats.broadcasts += 1;
                out.push(Outgoing::after(
                    self.lat(),
                    ProtocolMsg::derived(
                        &msg,
                        MsgKind::BcastGetM,
                        Agent::l2(self.node),
                        Agent::l2(self.node),
                    ),
                ));
            } else if self.org.uses_global_directory() {
                mshr.used_directory = true;
                mshr.dir_info_pending = true;
                let dir = self.memmap.controller_for(msg.addr);
                out.push(Outgoing::after(
                    self.lat(),
                    ProtocolMsg::derived(&msg, MsgKind::GblGetM, Agent::l2(self.node), Agent::dir(dir)),
                ));
            }
        }
        self.mshrs.insert(msg.addr, mshr);
        self.try_complete(msg.addr, now, out);
    }

    fn start_global_fetch(&mut self, msg: ProtocolMsg, is_write: bool, now: u64, out: &mut Vec<Outgoing>) {
        let kind = if is_write { TxnKind::Write } else { TxnKind::Read };
        let mut mshr = Mshr::new(kind, msg.requester, msg.issued_at);
        mshr.started_search_at = Some(now);
        mshr.install_state = Some(if is_write { MoesiState::M } else { MoesiState::S });
        if self.org.is_chip_wide_shared() {
            // The home L2 is the only on-chip copy: straight to memory.
            mshr.went_to_memory = true;
            let mem = self.memmap.controller_for(msg.addr);
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg::derived(&msg, MsgKind::MemRead, Agent::l2(self.node), Agent::mem(mem)),
            ));
        } else if self.org.uses_vms() {
            mshr.vms_mode = true;
            mshr.acks_needed = (self.org.num_clusters() - 1) as u32;
            self.stats.broadcasts += 1;
            let bkind = if is_write { MsgKind::BcastGetM } else { MsgKind::BcastGetS };
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg::derived(&msg, bkind, Agent::l2(self.node), Agent::l2(self.node)),
            ));
            // Section 3.4: "The request is sent to off-chip memory as well."
            // The DRAM fetch is speculative; it is cancelled if an on-chip
            // owner responds first.
            mshr.went_to_memory = true;
            let mem = self.memmap.controller_for(msg.addr);
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg::derived(&msg, MsgKind::MemRead, Agent::l2(self.node), Agent::mem(mem)),
            ));
        } else {
            // Private baseline and LOCO CC: indirection through the global
            // directory at the memory controller.
            mshr.used_directory = true;
            mshr.dir_info_pending = is_write;
            let dir = self.memmap.controller_for(msg.addr);
            let gkind = if is_write { MsgKind::GblGetM } else { MsgKind::GblGetS };
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg::derived(&msg, gkind, Agent::l2(self.node), Agent::dir(dir)),
            ));
        }
        self.mshrs.insert(msg.addr, mshr);
    }

    fn handle_l1_writeback(&mut self, msg: ProtocolMsg, now: u64) {
        let set = self.set_of(msg.addr);
        self.stats.l2_tag_probes += 1;
        // The data write is charged only when the line is still resident —
        // a writeback racing an L2 eviction probes the tags and deposits
        // nothing.
        if let Some(entry) = self.array.lookup_mut(set, msg.addr, now) {
            self.stats.l2_data_writes += 1;
            entry.meta.sharers.remove(msg.src.node);
            if entry.meta.l1_owner == Some(msg.src.node) {
                entry.meta.l1_owner = None;
            }
            // The dirty data now lives (only) in the L2.
            if !entry.meta.state.is_dirty() {
                entry.meta.state = MoesiState::M;
            }
        }
    }

    fn handle_l1_inv_ack(&mut self, msg: ProtocolMsg, _dirty: bool, now: u64, out: &mut Vec<Outgoing>) {
        let Some(mshr) = self.mshrs.get_mut(&msg.addr) else {
            // Fire-and-forget invalidation (e.g. inclusive-eviction back-inval).
            return;
        };
        mshr.acks_received += 1;
        if mshr.kind == TxnKind::RemoteInv {
            self.try_finish_remote_inv(msg.addr, now, out);
        } else {
            self.try_complete(msg.addr, now, out);
        }
    }

    fn handle_dir_info(
        &mut self,
        msg: ProtocolMsg,
        acks: u32,
        data_coming: bool,
        now: u64,
        out: &mut Vec<Outgoing>,
    ) {
        let Some(mshr) = self.mshrs.get_mut(&msg.addr) else {
            return;
        };
        mshr.dir_info_pending = false;
        mshr.acks_needed += acks;
        if !data_coming {
            // Upgrade: we already hold the data.
            mshr.data_received = true;
        }
        self.try_complete(msg.addr, now, out);
    }

    // ------------------------------------------------------------ remote side

    fn handle_fwd_gets(&mut self, msg: ProtocolMsg, now: u64, out: &mut Vec<Outgoing>) {
        // The directory believes we own this line; supply a shared copy to
        // the requesting home L2. If the line slipped out of our array in the
        // meantime we still respond with data (see module docs) to keep the
        // requester from stalling.
        let set = self.set_of(msg.addr);
        self.stats.l2_tag_probes += 1;
        if let Some(entry) = self.array.lookup_mut(set, msg.addr, now) {
            entry.meta.state = entry.meta.state.after_sharing();
        }
        self.stats.l2_data_reads += 1;
        let requester_home = self.requesting_home(msg.requester, msg.addr);
        out.push(Outgoing::after(
            self.lat(),
            ProtocolMsg::derived(
                &msg,
                MsgKind::OwnerData,
                Agent::l2(self.node),
                Agent::l2(requester_home),
            ),
        ));
    }

    fn handle_remote_inv(&mut self, msg: ProtocolMsg, now: u64, out: &mut Vec<Outgoing>) {
        // FwdGetM (we are the owner) or InvL2 (we are a sharer): invalidate
        // the domain's copy, collecting local L1 acks first, then acknowledge
        // to the requesting home L2 (with data iff we owned the line).
        self.stats.l2_tag_probes += 1;
        let with_data = msg.kind == MsgKind::FwdGetM;
        let requester_home = self.requesting_home(msg.requester, msg.addr);
        self.remote_invalidate(msg, Agent::l2(requester_home), with_data, now, out);
    }

    fn handle_bcast_gets(&mut self, msg: ProtocolMsg, now: u64, out: &mut Vec<Outgoing>) {
        let set = self.set_of(msg.addr);
        self.stats.l2_tag_probes += 1;
        let reply_kind = match self.array.lookup_mut(set, msg.addr, now) {
            Some(entry) if entry.meta.state.is_owner() => {
                entry.meta.state = entry.meta.state.after_sharing();
                self.stats.l2_data_reads += 1;
                MsgKind::OwnerData
            }
            _ => MsgKind::AckNoData,
        };
        out.push(Outgoing::after(
            self.lat(),
            ProtocolMsg::derived(&msg, reply_kind, Agent::l2(self.node), msg.src),
        ));
    }

    fn handle_bcast_getm(&mut self, msg: ProtocolMsg, now: u64, out: &mut Vec<Outgoing>) {
        let set = self.set_of(msg.addr);
        self.stats.l2_tag_probes += 1;
        if self.array.peek(set, msg.addr).is_none() {
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg::derived(&msg, MsgKind::AckNoData, Agent::l2(self.node), msg.src),
            ));
            return;
        }
        let was_owner = self
            .array
            .peek(set, msg.addr)
            .map(|e| e.meta.state.is_owner())
            .unwrap_or(false);
        self.remote_invalidate(msg, msg.src, was_owner, now, out);
    }

    /// Invalidate the domain's copy of `msg.addr`, collecting local L1 acks,
    /// then send the acknowledgement (`OwnerDataM` if `with_data`, else
    /// `InvAckL2`) to `reply_to`.
    fn remote_invalidate(
        &mut self,
        msg: ProtocolMsg,
        reply_to: Agent,
        with_data: bool,
        _now: u64,
        out: &mut Vec<Outgoing>,
    ) {
        let set = self.set_of(msg.addr);
        let sharers = self
            .array
            .peek(set, msg.addr)
            .map(|e| e.meta.sharers)
            .unwrap_or_default();
        // Drop the line from the array immediately; in-flight local requests
        // for it will simply miss and re-fetch.
        self.array.invalidate(set, msg.addr);
        if sharers.is_empty() || self.mshrs.contains_key(&msg.addr) {
            // No local L1 copies to chase (or the line is already in a local
            // transaction — answer immediately to avoid cross-cluster
            // deadlock; the local transaction will re-establish coherence
            // when it completes).
            if with_data {
                self.stats.l2_data_reads += 1;
            }
            let kind = if with_data { MsgKind::OwnerDataM } else { MsgKind::InvAckL2 };
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg::derived(&msg, kind, Agent::l2(self.node), reply_to),
            ));
            return;
        }
        let mut mshr = Mshr::new(TxnKind::RemoteInv, msg.requester, msg.issued_at);
        mshr.reply_to = Some(reply_to);
        mshr.reply_with_data = with_data;
        mshr.acks_needed = sharers.len() as u32;
        for l1 in sharers.iter() {
            self.stats.invalidations += 1;
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg::derived(&msg, MsgKind::InvL1, Agent::l2(self.node), Agent::l1(l1)),
            ));
        }
        self.mshrs.insert(msg.addr, mshr);
    }

    fn try_finish_remote_inv(&mut self, addr: LineAddr, now: u64, out: &mut Vec<Outgoing>) {
        let done = {
            let mshr = self.mshrs.get(&addr).expect("remote-inv mshr present");
            mshr.acks_received >= mshr.acks_needed
        };
        if !done {
            return;
        }
        let mshr = self.mshrs.remove(&addr).expect("remote-inv mshr present");
        let reply_to = mshr.reply_to.expect("remote-inv has a reply target");
        if mshr.reply_with_data {
            self.stats.l2_data_reads += 1;
        }
        let kind = if mshr.reply_with_data {
            MsgKind::OwnerDataM
        } else {
            MsgKind::InvAckL2
        };
        out.push(Outgoing::after(
            1,
            ProtocolMsg {
                addr,
                kind,
                src: Agent::l2(self.node),
                dst: reply_to,
                requester: mshr.requester_l1,
                issued_at: mshr.issued_at,
            },
        ));
        self.replay_waiting(mshr.waiting, out);
        let _ = now;
    }

    // ------------------------------------------------------- data / ack side

    fn handle_data(
        &mut self,
        msg: ProtocolMsg,
        grant: MoesiState,
        source: ResponseSource,
        now: u64,
        out: &mut Vec<Outgoing>,
    ) {
        let Some(mshr) = self.mshrs.get_mut(&msg.addr) else {
            return;
        };
        if mshr.kind == TxnKind::RemoteInv {
            return;
        }
        if mshr.vms_mode {
            mshr.acks_received += 1;
        }
        if !mshr.data_received {
            mshr.data_received = true;
            mshr.source = source;
            if mshr.kind == TxnKind::Read {
                mshr.install_state = Some(grant);
            }
            // An on-chip owner answered: cancel the speculative DRAM fetch.
            if mshr.vms_mode && mshr.went_to_memory && source == ResponseSource::Remote {
                let mem = self.memmap.controller_for(msg.addr);
                out.push(Outgoing::after(
                    1,
                    ProtocolMsg::derived(&msg, MsgKind::MemCancel, Agent::l2(self.node), Agent::mem(mem)),
                ));
            }
        }
        self.try_complete(msg.addr, now, out);
    }

    fn handle_mem_data(&mut self, msg: ProtocolMsg, now: u64, out: &mut Vec<Outgoing>) {
        let Some(mshr) = self.mshrs.get_mut(&msg.addr) else {
            return;
        };
        if !mshr.data_received {
            mshr.data_received = true;
            mshr.source = ResponseSource::Memory;
            if mshr.kind == TxnKind::Read {
                mshr.install_state = Some(MoesiState::E);
            }
        }
        self.try_complete(msg.addr, now, out);
    }

    fn handle_global_ack(&mut self, msg: ProtocolMsg, now: u64, out: &mut Vec<Outgoing>) {
        let Some(mshr) = self.mshrs.get_mut(&msg.addr) else {
            return;
        };
        if mshr.kind == TxnKind::RemoteInv {
            return;
        }
        mshr.acks_received += 1;
        self.try_complete(msg.addr, now, out);
    }

    fn try_complete(&mut self, addr: LineAddr, now: u64, out: &mut Vec<Outgoing>) {
        let (done, need_memory) = {
            let Some(mshr) = self.mshrs.get(&addr) else {
                return;
            };
            if mshr.kind == TxnKind::RemoteInv {
                return;
            }
            let acks_done = mshr.acks_received >= mshr.acks_needed && !mshr.dir_info_pending;
            match mshr.kind {
                TxnKind::Read => {
                    if mshr.data_received {
                        (true, false)
                    } else if acks_done && mshr.vms_mode && !mshr.went_to_memory {
                        (false, true)
                    } else {
                        (false, false)
                    }
                }
                TxnKind::Write => {
                    if mshr.data_received && acks_done {
                        (true, false)
                    } else if acks_done && !mshr.data_received && mshr.vms_mode && !mshr.went_to_memory {
                        (false, true)
                    } else {
                        (false, false)
                    }
                }
                TxnKind::RemoteInv => (false, false),
            }
        };

        if need_memory {
            // The broadcast found no on-chip owner: fall back to DRAM.
            let mem = self.memmap.controller_for(addr);
            let mshr = self.mshrs.get_mut(&addr).expect("mshr present");
            mshr.went_to_memory = true;
            out.push(Outgoing::after(
                1,
                ProtocolMsg {
                    addr,
                    kind: MsgKind::MemRead,
                    src: Agent::l2(self.node),
                    dst: Agent::mem(mem),
                    requester: mshr.requester_l1,
                    issued_at: mshr.issued_at,
                },
            ));
            return;
        }
        if !done {
            return;
        }

        let mshr = self.mshrs.remove(&addr).expect("mshr present");
        let set = self.set_of(addr);
        // Install or update the line.
        let already_resident = self.array.peek(set, addr).is_some();
        if already_resident {
            let entry = self.array.peek_mut(set, addr).expect("resident entry");
            entry.last_access = now;
            if let Some(state) = mshr.install_state {
                entry.meta.state = state;
            }
            if mshr.kind == TxnKind::Write {
                entry.meta.sharers.clear();
                entry.meta.sharers.insert(mshr.requester_l1);
                entry.meta.l1_owner = Some(mshr.requester_l1);
            } else {
                entry.meta.sharers.insert(mshr.requester_l1);
            }
        } else {
            let mut meta = L2Meta::new(mshr.install_state.unwrap_or(MoesiState::S));
            meta.sharers.insert(mshr.requester_l1);
            if mshr.kind == TxnKind::Write {
                meta.l1_owner = Some(mshr.requester_l1);
                meta.state = MoesiState::M;
            }
            self.stats.l2_data_writes += 1;
            if let Eviction::Victim(victim) = self.array.insert(set, addr, meta, now) {
                self.handle_eviction(victim, 0, now, out);
            }
        }

        // Statistics: on-chip search delay (Figure 9) and remote hits.
        if let Some(start) = mshr.started_search_at {
            if mshr.source == ResponseSource::Remote {
                self.stats.search_delay_sum += now.saturating_sub(start);
                self.stats.search_delay_count += 1;
                self.stats.remote_hits += 1;
            }
        }

        // Grant to the requesting L1 (the data is read back out of the
        // array, or forwarded straight through on a miss fill).
        self.stats.l2_data_reads += 1;
        let grant = if mshr.kind == TxnKind::Write {
            MsgKind::DataM(mshr.source)
        } else {
            MsgKind::DataS(mshr.source)
        };
        out.push(Outgoing::after(
            self.lat(),
            ProtocolMsg {
                addr,
                kind: grant,
                src: Agent::l2(self.node),
                dst: Agent::l1(mshr.requester_l1),
                requester: mshr.requester_l1,
                issued_at: mshr.issued_at,
            },
        ));
        if mshr.used_directory {
            let dir = self.memmap.controller_for(addr);
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg {
                    addr,
                    kind: MsgKind::Unblock,
                    src: Agent::l2(self.node),
                    dst: Agent::dir(dir),
                    requester: mshr.requester_l1,
                    issued_at: mshr.issued_at,
                },
            ));
        }
        self.replay_waiting(mshr.waiting, out);
    }

    fn replay_waiting(&mut self, waiting: Vec<ProtocolMsg>, out: &mut Vec<Outgoing>) {
        for m in waiting {
            out.push(Outgoing::after(1, m));
        }
    }

    // -------------------------------------------------------------- evictions

    fn handle_eviction(&mut self, victim: Entry<L2Meta>, chain_hop: u8, now: u64, out: &mut Vec<Outgoing>) {
        // Inclusive L2: recall L1 copies (fire and forget).
        for l1 in victim.meta.sharers.iter() {
            self.stats.invalidations += 1;
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg {
                    addr: victim.addr,
                    kind: MsgKind::InvL1,
                    src: Agent::l2(self.node),
                    dst: Agent::l1(l1),
                    requester: l1,
                    issued_at: now,
                },
            ));
        }
        if self.org.uses_ivr() && victim.meta.state.is_valid() && chain_hop < self.cfg.ivr_threshold {
            // Inter-cluster victim replacement: migrate to the same-HNid home
            // node of a random other cluster (the victim's data is read out
            // of the array to travel with the migration).
            self.stats.ivr_migrations += 1;
            self.stats.l2_data_reads += 1;
            let my_cluster = self.org.cluster_of(self.node);
            let n = self.org.num_clusters();
            let mut target = self.rng.index(n);
            if target == my_cluster {
                target = (target + 1) % n;
            }
            let dst = self.org.home_in_cluster(target, victim.addr);
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg {
                    addr: victim.addr,
                    kind: MsgKind::IvrMigrate {
                        state: victim.meta.state,
                        last_access: self.quantize(victim.last_access),
                        hop: chain_hop,
                    },
                    src: Agent::l2(self.node),
                    dst: Agent::l2(dst),
                    requester: self.node,
                    issued_at: now,
                },
            ));
            return;
        }
        if self.org.uses_ivr() && chain_hop >= self.cfg.ivr_threshold {
            self.stats.ivr_writebacks += 1;
        }
        if victim.meta.state.is_dirty() {
            // The dirty victim is read out for the off-chip writeback.
            self.stats.l2_data_reads += 1;
            let mem = self.memmap.controller_for(victim.addr);
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg {
                    addr: victim.addr,
                    kind: MsgKind::MemWb,
                    src: Agent::l2(self.node),
                    dst: Agent::mem(mem),
                    requester: self.node,
                    issued_at: now,
                },
            ));
        }
        if self.org.uses_global_directory() {
            let dir = self.memmap.controller_for(victim.addr);
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg {
                    addr: victim.addr,
                    kind: MsgKind::PutL2,
                    src: Agent::l2(self.node),
                    dst: Agent::dir(dir),
                    requester: self.node,
                    issued_at: now,
                },
            ));
        }
    }

    // -------------------------------------------------------------------- IVR

    fn handle_ivr(
        &mut self,
        msg: ProtocolMsg,
        state: MoesiState,
        last_access: u64,
        hop: u8,
        now: u64,
        out: &mut Vec<Outgoing>,
    ) {
        let set = self.set_of(msg.addr);
        self.stats.l2_tag_probes += 1;
        // Already resident: merge ownership and drop the migrant.
        if let Some(entry) = self.array.peek_mut(set, msg.addr) {
            if state.is_owner() && !entry.meta.state.is_owner() {
                entry.meta.state = MoesiState::O;
            }
            self.stats.ivr_accepted += 1;
            return;
        }
        let accept = match self.array.would_evict(set) {
            None => true,
            Some(local_victim) => last_access > self.quantize(local_victim.last_access),
        };
        if accept {
            self.stats.ivr_accepted += 1;
            self.stats.l2_data_writes += 1;
            let meta = L2Meta::new(state);
            let displaced = self.array.insert(set, msg.addr, meta, now);
            // Preserve the migrant's age so it does not unfairly outlive
            // younger local lines.
            if let Some(entry) = self.array.peek_mut(set, msg.addr) {
                entry.last_access = last_access;
            }
            if let Eviction::Victim(victim) = displaced {
                // The displaced (older) local victim continues the chain.
                self.handle_eviction(victim, hop.saturating_add(1), now, out);
            }
        } else {
            self.stats.ivr_denied += 1;
            // Steer the migrant to another random cluster, or write it back
            // once the chain is exhausted.
            if hop.saturating_add(1) >= self.cfg.ivr_threshold {
                self.stats.ivr_writebacks += 1;
                if state.is_dirty() {
                    let mem = self.memmap.controller_for(msg.addr);
                    out.push(Outgoing::after(
                        self.lat(),
                        ProtocolMsg::derived(&msg, MsgKind::MemWb, Agent::l2(self.node), Agent::mem(mem)),
                    ));
                }
                return;
            }
            let my_cluster = self.org.cluster_of(self.node);
            let n = self.org.num_clusters();
            let mut target = self.rng.index(n);
            if target == my_cluster {
                target = (target + 1) % n;
            }
            let dst = self.org.home_in_cluster(target, msg.addr);
            self.stats.ivr_migrations += 1;
            out.push(Outgoing::after(
                self.lat(),
                ProtocolMsg::derived(
                    &msg,
                    MsgKind::IvrMigrate {
                        state,
                        last_access,
                        hop: hop.saturating_add(1),
                    },
                    Agent::l2(self.node),
                    Agent::l2(dst),
                ),
            ));
        }
    }

    /// Test-and-inspection helper: the MOESI state of `line` if resident.
    pub fn line_state(&self, line: LineAddr) -> Option<MoesiState> {
        let set = self.set_of(line);
        self.array.peek(set, line).map(|e| e.meta.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loco_noc::Mesh;

    fn mk(org: Organization, node: u16) -> L2Controller {
        let memmap = MemoryMap::asplos(org.mesh());
        L2Controller::new(NodeId(node), L2Config::default(), org, memmap)
    }

    fn gets(addr: u64, requester: u16, home: u16) -> ProtocolMsg {
        ProtocolMsg {
            addr: LineAddr(addr),
            kind: MsgKind::GetS,
            src: Agent::l1(NodeId(requester)),
            dst: Agent::l2(NodeId(home)),
            requester: NodeId(requester),
            issued_at: 0,
        }
    }

    fn getm(addr: u64, requester: u16, home: u16) -> ProtocolMsg {
        ProtocolMsg {
            kind: MsgKind::GetM,
            ..gets(addr, requester, home)
        }
    }

    #[test]
    fn shared_l2_miss_goes_to_memory_and_fill_grants_data() {
        let org = Organization::shared(Mesh::new(8, 8));
        let mut l2 = mk(org, 5);
        let mut out = Vec::new();
        l2.handle(gets(5, 9, 5), 0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.kind, MsgKind::MemRead);
        assert_eq!(out[0].msg.dst.unit, Unit::Mem);
        assert_eq!(l2.stats().l2_misses, 1);
        // Memory data arrives.
        let mut out = Vec::new();
        let memdata = ProtocolMsg {
            addr: LineAddr(5),
            kind: MsgKind::MemData,
            src: Agent::mem(NodeId(4)),
            dst: Agent::l2(NodeId(5)),
            requester: NodeId(9),
            issued_at: 0,
        };
        l2.handle(memdata, 210, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.kind, MsgKind::DataS(ResponseSource::Memory));
        assert_eq!(out[0].msg.dst, Agent::l1(NodeId(9)));
        assert_eq!(l2.line_state(LineAddr(5)), Some(MoesiState::E));
        // A second read now hits.
        let mut out = Vec::new();
        l2.handle(gets(5, 10, 5), 220, &mut out);
        assert_eq!(out[0].msg.kind, MsgKind::DataS(ResponseSource::Home));
        assert_eq!(l2.stats().l2_hits, 1);
    }

    use crate::msg::Unit;

    #[test]
    fn vms_miss_broadcasts_then_falls_back_to_memory() {
        let org = Organization::loco(
            Mesh::new(8, 8),
            crate::organization::OrganizationKind::LocoCcVms,
            crate::organization::ClusterShape::new(4, 4),
        );
        // Home of line 0 for requester 0 is node 0 itself.
        let mut l2 = mk(org, 0);
        let mut out = Vec::new();
        l2.handle(gets(0, 1, 0), 0, &mut out);
        // Section 3.4: the request is broadcast on the VMS *and* sent to
        // off-chip memory in parallel.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].msg.kind, MsgKind::BcastGetS);
        assert_eq!(out[1].msg.kind, MsgKind::MemRead);
        assert_eq!(l2.stats().broadcasts, 1);
        // Three remote home nodes reply "not owner": nothing more to do, the
        // controller is already waiting for the (uncancelled) DRAM response.
        let mut out = Vec::new();
        for i in 0..3 {
            let ack = ProtocolMsg {
                addr: LineAddr(0),
                kind: MsgKind::AckNoData,
                src: Agent::l2(NodeId(32 + i)),
                dst: Agent::l2(NodeId(0)),
                requester: NodeId(1),
                issued_at: 0,
            };
            l2.handle(ack, 10 + u64::from(i), &mut out);
        }
        assert!(out.is_empty());
        assert!(!out.iter().any(|o| o.msg.kind == MsgKind::MemCancel));
    }

    #[test]
    fn vms_miss_satisfied_by_remote_owner_records_search_delay() {
        let org = Organization::loco(
            Mesh::new(8, 8),
            crate::organization::OrganizationKind::LocoCcVms,
            crate::organization::ClusterShape::new(4, 4),
        );
        let mut l2 = mk(org, 0);
        let mut out = Vec::new();
        l2.handle(gets(0, 1, 0), 0, &mut out);
        let mut out = Vec::new();
        let data = ProtocolMsg {
            addr: LineAddr(0),
            kind: MsgKind::OwnerData,
            src: Agent::l2(NodeId(36)),
            dst: Agent::l2(NodeId(0)),
            requester: NodeId(1),
            issued_at: 0,
        };
        l2.handle(data, 25, &mut out);
        // The on-chip owner answered: the speculative DRAM fetch is cancelled
        // and the requesting L1 receives the data.
        assert!(out.iter().any(|o| o.msg.kind == MsgKind::MemCancel));
        assert!(out
            .iter()
            .any(|o| o.msg.kind == MsgKind::DataS(ResponseSource::Remote)));
        assert_eq!(l2.stats().remote_hits, 1);
        assert_eq!(l2.stats().search_delay_count, 1);
        assert_eq!(l2.stats().search_delay_sum, 25);
        assert_eq!(l2.line_state(LineAddr(0)), Some(MoesiState::S));
    }

    #[test]
    fn remote_broadcast_read_owner_replies_with_data() {
        let org = Organization::loco(
            Mesh::new(8, 8),
            crate::organization::OrganizationKind::LocoCcVms,
            crate::organization::ClusterShape::new(4, 4),
        );
        let mut l2 = mk(org, 0);
        // Fill the line via a miss + memory data so the node owns it (E).
        let mut out = Vec::new();
        l2.handle(gets(0, 1, 0), 0, &mut out);
        let mut out = Vec::new();
        for i in 0..3 {
            l2.handle(
                ProtocolMsg {
                    addr: LineAddr(0),
                    kind: MsgKind::AckNoData,
                    src: Agent::l2(NodeId(32 + i)),
                    dst: Agent::l2(NodeId(0)),
                    requester: NodeId(1),
                    issued_at: 0,
                },
                5,
                &mut out,
            );
        }
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(0),
                kind: MsgKind::MemData,
                src: Agent::mem(NodeId(4)),
                dst: Agent::l2(NodeId(0)),
                requester: NodeId(1),
                issued_at: 0,
            },
            210,
            &mut out,
        );
        assert_eq!(l2.line_state(LineAddr(0)), Some(MoesiState::E));
        // Now a broadcast read from another cluster's home node arrives.
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(0),
                kind: MsgKind::BcastGetS,
                src: Agent::l2(NodeId(36)),
                dst: Agent::l2(NodeId(0)),
                requester: NodeId(37),
                issued_at: 300,
            },
            300,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.kind, MsgKind::OwnerData);
        assert_eq!(out[0].msg.dst, Agent::l2(NodeId(36)));
        // Ownership downgraded to O.
        assert_eq!(l2.line_state(LineAddr(0)), Some(MoesiState::O));
    }

    #[test]
    fn remote_broadcast_read_non_owner_acks_without_data() {
        let org = Organization::loco(
            Mesh::new(8, 8),
            crate::organization::OrganizationKind::LocoCcVms,
            crate::organization::ClusterShape::new(4, 4),
        );
        let mut l2 = mk(org, 0);
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(16),
                kind: MsgKind::BcastGetS,
                src: Agent::l2(NodeId(36)),
                dst: Agent::l2(NodeId(0)),
                requester: NodeId(37),
                issued_at: 0,
            },
            0,
            &mut out,
        );
        assert_eq!(out[0].msg.kind, MsgKind::AckNoData);
    }

    #[test]
    fn write_hit_with_local_sharers_invalidates_them_before_granting() {
        let org = Organization::shared(Mesh::new(8, 8));
        let mut l2 = mk(org, 5);
        // Two readers share the line (via memory fill then a hit).
        let mut out = Vec::new();
        l2.handle(gets(5, 9, 5), 0, &mut out);
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(5),
                kind: MsgKind::MemData,
                src: Agent::mem(NodeId(4)),
                dst: Agent::l2(NodeId(5)),
                requester: NodeId(9),
                issued_at: 0,
            },
            200,
            &mut out,
        );
        let mut out = Vec::new();
        l2.handle(gets(5, 10, 5), 210, &mut out);
        // Now node 10 writes: node 9's copy must be invalidated first.
        let mut out = Vec::new();
        l2.handle(getm(5, 10, 5), 220, &mut out);
        let invs: Vec<_> = out
            .iter()
            .filter(|o| o.msg.kind == MsgKind::InvL1)
            .collect();
        assert_eq!(invs.len(), 1);
        assert_eq!(invs[0].msg.dst, Agent::l1(NodeId(9)));
        assert!(out.iter().all(|o| !matches!(o.msg.kind, MsgKind::DataM(_))));
        // The ack releases the grant.
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(5),
                kind: MsgKind::InvAckL1 { dirty: false },
                src: Agent::l1(NodeId(9)),
                dst: Agent::l2(NodeId(5)),
                requester: NodeId(10),
                issued_at: 220,
            },
            230,
            &mut out,
        );
        assert!(out.iter().any(|o| matches!(o.msg.kind, MsgKind::DataM(_))));
        assert_eq!(l2.line_state(LineAddr(5)), Some(MoesiState::M));
    }

    #[test]
    fn conflicting_request_waits_for_outstanding_mshr() {
        let org = Organization::shared(Mesh::new(8, 8));
        let mut l2 = mk(org, 5);
        let mut out = Vec::new();
        l2.handle(gets(5, 9, 5), 0, &mut out);
        // A second request for the same line while the first is outstanding.
        let mut out = Vec::new();
        l2.handle(gets(5, 10, 5), 1, &mut out);
        assert!(out.is_empty(), "second request must be queued, not serviced");
        // Memory data completes the first and replays the second.
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(5),
                kind: MsgKind::MemData,
                src: Agent::mem(NodeId(4)),
                dst: Agent::l2(NodeId(5)),
                requester: NodeId(9),
                issued_at: 0,
            },
            200,
            &mut out,
        );
        // One grant to node 9, plus the replayed request addressed to self.
        assert!(out.iter().any(|o| o.msg.dst == Agent::l1(NodeId(9))));
        assert!(out
            .iter()
            .any(|o| o.msg.kind == MsgKind::GetS && o.msg.dst == Agent::l2(NodeId(5))));
    }

    #[test]
    fn ivr_migration_accepted_when_set_has_room() {
        let org = Organization::loco(
            Mesh::new(8, 8),
            crate::organization::OrganizationKind::LocoCcVmsIvr,
            crate::organization::ClusterShape::new(4, 4),
        );
        let mut l2 = mk(org, 0);
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(0),
                kind: MsgKind::IvrMigrate {
                    state: MoesiState::O,
                    last_access: 100,
                    hop: 0,
                },
                src: Agent::l2(NodeId(36)),
                dst: Agent::l2(NodeId(0)),
                requester: NodeId(36),
                issued_at: 0,
            },
            500,
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(l2.stats().ivr_accepted, 1);
        assert_eq!(l2.line_state(LineAddr(0)), Some(MoesiState::O));
    }

    #[test]
    fn ivr_denied_migrant_is_resteered_and_eventually_written_back() {
        let org = Organization::loco(
            Mesh::new(8, 8),
            crate::organization::OrganizationKind::LocoCcVmsIvr,
            crate::organization::ClusterShape::new(4, 4),
        );
        let mut l2 = mk(org, 0);
        // Fill set 0 of the array with young lines so the migrant (old) is
        // denied. Set index uses bits above the 4 HNid bits: lines k*16*256
        // map to HNid 0, set 0... use addresses with hnid=0 and same set.
        let sets = l2.array.num_sets() as u64;
        for i in 0..8u64 {
            let line = LineAddr((i * sets) << 4); // hnid 0, set 0
            let meta = L2Meta::new(MoesiState::S);
            l2.array.insert(0, line, meta, 1_000_000 + i);
        }
        // An old migrant arrives with one hop left before the threshold.
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(99 * sets << 4),
                kind: MsgKind::IvrMigrate {
                    state: MoesiState::M,
                    last_access: 10,
                    hop: 2,
                },
                src: Agent::l2(NodeId(36)),
                dst: Agent::l2(NodeId(0)),
                requester: NodeId(36),
                issued_at: 0,
            },
            2_000_000,
            &mut out,
        );
        assert_eq!(l2.stats().ivr_denied, 1);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].msg.kind, MsgKind::IvrMigrate { hop: 3, .. }));
        // Another denial at the threshold forces the writeback.
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(98 * sets << 4),
                kind: MsgKind::IvrMigrate {
                    state: MoesiState::M,
                    last_access: 10,
                    hop: 3,
                },
                src: Agent::l2(NodeId(36)),
                dst: Agent::l2(NodeId(0)),
                requester: NodeId(36),
                issued_at: 0,
            },
            2_000_001,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg.kind, MsgKind::MemWb);
        assert_eq!(l2.stats().ivr_writebacks, 1);
    }

    #[test]
    fn directory_write_path_waits_for_dir_info_and_acks() {
        let org = Organization::loco(
            Mesh::new(8, 8),
            crate::organization::OrganizationKind::LocoCc,
            crate::organization::ClusterShape::new(4, 4),
        );
        let mut l2 = mk(org, 0);
        // Prime the line as shared (S) via a read fill from a remote owner.
        let mut out = Vec::new();
        l2.handle(gets(0, 1, 0), 0, &mut out);
        assert_eq!(out[0].msg.kind, MsgKind::GblGetS);
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(0),
                kind: MsgKind::OwnerData,
                src: Agent::l2(NodeId(36)),
                dst: Agent::l2(NodeId(0)),
                requester: NodeId(1),
                issued_at: 0,
            },
            30,
            &mut out,
        );
        assert_eq!(l2.line_state(LineAddr(0)), Some(MoesiState::S));
        // Unblock must have been sent to the directory.
        assert!(out.iter().any(|o| o.msg.kind == MsgKind::Unblock));
        // A write now needs the directory round trip.
        let mut out = Vec::new();
        l2.handle(getm(0, 1, 0), 40, &mut out);
        assert!(out.iter().any(|o| o.msg.kind == MsgKind::GblGetM));
        // DirInfo says: one remote sharer to invalidate, no data coming.
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(0),
                kind: MsgKind::DirInfo { acks: 1, data_coming: false },
                src: Agent::dir(NodeId(4)),
                dst: Agent::l2(NodeId(0)),
                requester: NodeId(1),
                issued_at: 40,
            },
            55,
            &mut out,
        );
        assert!(out.is_empty(), "must wait for the remote invalidation ack");
        let mut out = Vec::new();
        l2.handle(
            ProtocolMsg {
                addr: LineAddr(0),
                kind: MsgKind::InvAckL2,
                src: Agent::l2(NodeId(36)),
                dst: Agent::l2(NodeId(0)),
                requester: NodeId(1),
                issued_at: 40,
            },
            70,
            &mut out,
        );
        assert!(out.iter().any(|o| matches!(o.msg.kind, MsgKind::DataM(_))));
        assert_eq!(l2.line_state(LineAddr(0)), Some(MoesiState::M));
    }
}
