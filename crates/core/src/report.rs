//! Figure / table data structures and text rendering.
//!
//! Every experiment in [`crate::experiments`] returns a [`Figure`]: a set of
//! labelled series over a common x-axis (usually the benchmarks, plus an
//! `AVG` column), mirroring the bar charts of the paper. Figures render to
//! aligned text tables (for the `reproduce` binary and EXPERIMENTS.md) and
//! serialize to JSON.

use crate::json::{self, ParseError, Value};
use std::fmt;

/// One labelled series of a figure.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Series {
    /// Legend label (matches the paper's legends, e.g. "LOCO CC+VMS").
    pub label: String,
    /// One value per x-axis entry.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            label: label.into(),
            values,
        }
    }

    /// Arithmetic mean of the values (the paper's `AVG` bars).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }
}

/// A reproduced figure (or table) of the paper.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Figure {
    /// Identifier, e.g. "fig11a".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Unit of the y-axis (e.g. "cycles", "normalized runtime").
    pub y_label: String,
    /// X-axis labels (benchmarks, workloads, ...).
    pub x_labels: Vec<String>,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>, y_label: impl Into<String>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            y_label: y_label.into(),
            x_labels: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Appends a series.
    ///
    /// # Panics
    ///
    /// Panics if the series length does not match the x-axis.
    pub fn push_series(&mut self, series: Series) {
        assert_eq!(
            series.values.len(),
            self.x_labels.len(),
            "series '{}' length mismatch",
            series.label
        );
        self.series.push(series);
    }

    /// Appends an `AVG` column holding each series' mean.
    pub fn push_average_column(&mut self) {
        self.x_labels.push("AVG".to_string());
        for s in &mut self.series {
            let mean = if s.values.is_empty() {
                0.0
            } else {
                s.values.iter().sum::<f64>() / s.values.len() as f64
            };
            s.values.push(mean);
        }
    }

    /// The value of `series_label` in the `AVG` (or last) column.
    pub fn average_of(&self, series_label: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label == series_label)
            .and_then(|s| s.values.last().copied())
    }

    /// Renders the figure as an aligned text table.
    pub fn to_text_table(&self) -> String {
        let mut cols = vec![String::from("series")];
        cols.extend(self.x_labels.iter().cloned());
        let mut rows: Vec<Vec<String>> = vec![cols];
        for s in &self.series {
            let mut row = vec![s.label.clone()];
            row.extend(s.values.iter().map(|v| format!("{v:.3}")));
            rows.push(row);
        }
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = format!("# {} — {} [{}]\n", self.id, self.title, self.y_label);
        for (i, row) in rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}", w = w))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
            if i == 0 {
                out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
                out.push('\n');
            }
        }
        out
    }

    /// Serializes the figure to pretty JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// The figure as an in-tree JSON [`Value`] (for embedding into larger
    /// documents, e.g. the `reproduce` CLI's single-file campaign dump).
    pub fn to_json_value(&self) -> Value {
        let series = self
            .series
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("label".into(), Value::String(s.label.clone())),
                    (
                        "values".into(),
                        Value::Array(s.values.iter().map(|&v| Value::Number(v)).collect()),
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("id".into(), Value::String(self.id.clone())),
            ("title".into(), Value::String(self.title.clone())),
            ("y_label".into(), Value::String(self.y_label.clone())),
            (
                "x_labels".into(),
                Value::Array(
                    self.x_labels
                        .iter()
                        .map(|l| Value::String(l.clone()))
                        .collect(),
                ),
            ),
            ("series".into(), Value::Array(series)),
        ])
    }

    /// Deserializes a figure previously emitted by [`Figure::to_json`].
    pub fn from_json(text: &str) -> Result<Figure, ParseError> {
        let doc = json::parse(text)?;
        let field_err = |what: &str| ParseError {
            offset: 0,
            message: format!("figure document is missing or mistypes '{what}'"),
        };
        let string_of = |key: &str| -> Result<String, ParseError> {
            doc.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| field_err(key))
        };
        let x_labels = doc
            .get("x_labels")
            .and_then(Value::as_array)
            .ok_or_else(|| field_err("x_labels"))?
            .iter()
            .map(|v| v.as_str().map(str::to_string).ok_or_else(|| field_err("x_labels")))
            .collect::<Result<Vec<_>, _>>()?;
        let series = doc
            .get("series")
            .and_then(Value::as_array)
            .ok_or_else(|| field_err("series"))?
            .iter()
            .map(|s| {
                let label = s
                    .get("label")
                    .and_then(Value::as_str)
                    .ok_or_else(|| field_err("series.label"))?;
                let values = s
                    .get("values")
                    .and_then(Value::as_array)
                    .ok_or_else(|| field_err("series.values"))?
                    .iter()
                    .map(|v| v.as_f64().ok_or_else(|| field_err("series.values")))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Series::new(label, values))
            })
            .collect::<Result<Vec<_>, ParseError>>()?;
        // Re-establish the push_series invariant: every series matches the
        // x-axis length (a mismatched document must not build a Figure that
        // panics later in to_text_table).
        if let Some(bad) = series.iter().find(|s| s.values.len() != x_labels.len()) {
            return Err(ParseError {
                offset: 0,
                message: format!(
                    "series '{}' has {} values for {} x_labels",
                    bad.label,
                    bad.values.len(),
                    x_labels.len()
                ),
            });
        }
        Ok(Figure {
            id: string_of("id")?,
            title: string_of("title")?,
            y_label: string_of("y_label")?,
            x_labels,
            series,
        })
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut fig = Figure::new("fig99", "sample", "normalized runtime");
        fig.x_labels = vec!["lu".into(), "radix".into()];
        fig.push_series(Series::new("Shared Cache", vec![1.0, 1.0]));
        fig.push_series(Series::new("LOCO", vec![0.8, 0.9]));
        fig
    }

    #[test]
    fn average_column_appends_means() {
        let mut fig = sample();
        fig.push_average_column();
        assert_eq!(fig.x_labels.last().unwrap(), "AVG");
        assert!((fig.average_of("LOCO").unwrap() - 0.85).abs() < 1e-12);
        assert!((fig.average_of("Shared Cache").unwrap() - 1.0).abs() < 1e-12);
        assert!(fig.average_of("missing").is_none());
    }

    #[test]
    fn text_table_contains_all_cells() {
        let fig = sample();
        let t = fig.to_text_table();
        assert!(t.contains("fig99"));
        assert!(t.contains("lu"));
        assert!(t.contains("radix"));
        assert!(t.contains("LOCO"));
        assert!(t.contains("0.800"));
    }

    #[test]
    fn json_round_trips() {
        let fig = sample();
        let parsed = Figure::from_json(&fig.to_json()).unwrap();
        assert_eq!(parsed, fig);
    }

    #[test]
    fn json_round_trips_non_integral_values() {
        let mut fig = Figure::new("fig00", "precision", "ratio");
        fig.x_labels = vec!["a".into(), "b".into(), "c".into()];
        fig.push_series(Series::new("s", vec![1.0 / 3.0, 0.1, 123456.789]));
        let parsed = Figure::from_json(&fig.to_json()).unwrap();
        assert_eq!(parsed, fig);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(Figure::from_json("not json").is_err());
        assert!(Figure::from_json("{}").is_err());
        assert!(Figure::from_json(r#"{"id": 3}"#).is_err());
    }

    #[test]
    fn from_json_rejects_series_shorter_than_the_x_axis() {
        let doc = r#"{
            "id": "f", "title": "t", "y_label": "y",
            "x_labels": ["a", "b", "c"],
            "series": [{"label": "s", "values": [1.0]}]
        }"#;
        let err = Figure::from_json(doc).unwrap_err();
        assert!(err.message.contains("has 1 values for 3 x_labels"), "{err}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_length_panics() {
        let mut fig = sample();
        fig.push_series(Series::new("bad", vec![1.0]));
    }

    #[test]
    fn series_mean_handles_empty() {
        assert_eq!(Series::new("x", vec![]).mean(), 0.0);
        assert_eq!(Series::new("x", vec![2.0, 4.0]).mean(), 3.0);
    }
}
